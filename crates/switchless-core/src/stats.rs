//! Lock-free statistics shared between callers, workers and the scheduler.
//!
//! [`CallStats`] is the feedback channel of the ZC scheduler: callers bump
//! `fallback` on every non-switchless execution and the scheduler samples
//! the counter at micro-quantum boundaries to compute `F_i`. It also
//! powers the evaluation: switchless/regular/fallback mixes, enclave
//! transition counts and pool reallocations (the Fig. 8 latency spikes).

use crate::policy::wasted_cycles;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Shared counters for one switchless runtime instance.
///
/// All methods use relaxed atomics: counters are monotonically increasing
/// telemetry, never synchronisation points.
#[derive(Debug, Default)]
pub struct CallStats {
    issued: AtomicU64,
    switchless: AtomicU64,
    fallback: AtomicU64,
    regular: AtomicU64,
    cancelled: AtomicU64,
    pool_reallocs: AtomicU64,
    reply_truncations: AtomicU64,
    guard_violations: AtomicU64,
}

impl CallStats {
    /// New zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one call entering dispatch (before any routing decision).
    /// At quiescence every issued call resolves to exactly one terminal
    /// outcome: switchless, fallback, regular, or watchdog-cancelled
    /// (see [`CallStatsSnapshot::is_conserved`]).
    pub fn record_issued(&self) {
        self.issued.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one call executed switchlessly (no transition).
    pub fn record_switchless(&self) {
        self.switchless.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one switchless attempt cancelled by the caller-side
    /// watchdog (the call still completed, via the regular path, but is
    /// accounted here rather than as a fallback).
    pub fn record_cancelled(&self) {
        self.cancelled.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one call that attempted switchless execution but fell back
    /// to a regular ocall (one transition).
    pub fn record_fallback(&self) {
        self.fallback.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one call executed as a plain regular ocall (one transition,
    /// no switchless attempt).
    pub fn record_regular(&self) {
        self.regular.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one untrusted-pool reallocation (costs a real ocall).
    pub fn record_pool_realloc(&self) {
        self.pool_reallocs.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one host-written reply clamped to the caller-declared
    /// output capacity (the call still completed switchlessly).
    pub fn record_reply_truncation(&self) {
        self.reply_truncations.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one trusted-side guard violation (the call re-routed
    /// through the regular-ocall fallback; the lying worker slot was
    /// poisoned).
    pub fn record_guard_violation(&self) {
        self.guard_violations.fetch_add(1, Ordering::Relaxed);
    }

    /// Current fallback count.
    ///
    /// Prefer [`CallStats::snapshot`] for anything that combines or
    /// differences counters: mixing this getter with other individual
    /// reads produces torn totals (each read samples a different
    /// moment). The scheduler and bench call sites difference
    /// successive `snapshot()`s instead.
    #[must_use]
    pub fn fallbacks(&self) -> u64 {
        self.fallback.load(Ordering::Relaxed)
    }

    /// Single-pass snapshot: each counter is read exactly once, in one
    /// pass, and every derived total ([`CallStatsSnapshot::total_calls`],
    /// [`CallStatsSnapshot::transitions`], …) is computed from those
    /// same four readings — so totals are never torn across reads.
    /// Counters updated concurrently may still skew between each other
    /// by in-flight calls (relaxed ordering), which is inherent and
    /// harmless for monotonic telemetry.
    #[must_use]
    pub fn snapshot(&self) -> CallStatsSnapshot {
        CallStatsSnapshot {
            issued: self.issued.load(Ordering::Relaxed),
            switchless: self.switchless.load(Ordering::Relaxed),
            fallback: self.fallback.load(Ordering::Relaxed),
            regular: self.regular.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            pool_reallocs: self.pool_reallocs.load(Ordering::Relaxed),
            reply_truncations: self.reply_truncations.load(Ordering::Relaxed),
            guard_violations: self.guard_violations.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of [`CallStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CallStatsSnapshot {
    /// Calls that entered dispatch (0 for dispatchers that predate the
    /// supervision layer and never call `record_issued`).
    pub issued: u64,
    /// Calls executed switchlessly.
    pub switchless: u64,
    /// Calls that fell back to a regular ocall after a switchless attempt.
    pub fallback: u64,
    /// Calls executed as plain regular ocalls.
    pub regular: u64,
    /// Switchless attempts cancelled by the caller-side watchdog (each
    /// still completed via the regular path).
    pub cancelled: u64,
    /// Untrusted-pool reallocations (each cost one extra real ocall).
    pub pool_reallocs: u64,
    /// Host-written replies clamped to the caller-declared capacity
    /// (each call still completed switchlessly, minus excess bytes).
    pub reply_truncations: u64,
    /// Trusted-side guard violations detected (each call re-routed via
    /// fallback, so conservation still holds).
    pub guard_violations: u64,
}

impl CallStatsSnapshot {
    /// Total ocalls completed (every terminal outcome).
    #[must_use]
    pub fn total_calls(&self) -> u64 {
        self.switchless + self.fallback + self.regular + self.cancelled
    }

    /// Enclave transitions paid (fallback + regular + watchdog-cancelled
    /// calls + pool reallocations).
    #[must_use]
    pub fn transitions(&self) -> u64 {
        self.fallback + self.regular + self.cancelled + self.pool_reallocs
    }

    /// Conservation invariant of the supervision layer: every issued
    /// call resolved to exactly one terminal outcome
    /// (`issued = switchless + fallback + regular + cancelled`). Only
    /// meaningful at quiescence (no calls in flight) and for runtimes
    /// that record issuance.
    #[must_use]
    pub fn is_conserved(&self) -> bool {
        self.issued == self.switchless + self.fallback + self.regular + self.cancelled
    }

    /// Wasted cycles attributable to transitions over an interval with
    /// `workers` active workers: the paper's `U = F·T_es + M·T` with `F`
    /// taken as all transition-paying calls.
    #[must_use]
    pub fn wasted_cycles(&self, t_es_cycles: u64, workers: usize, interval_cycles: u64) -> u64 {
        wasted_cycles(self.transitions(), t_es_cycles, workers, interval_cycles)
    }

    /// Counter-wise difference `self - earlier` (saturating), for per-
    /// interval deltas.
    #[must_use]
    pub fn delta_since(&self, earlier: &CallStatsSnapshot) -> CallStatsSnapshot {
        CallStatsSnapshot {
            issued: self.issued.saturating_sub(earlier.issued),
            switchless: self.switchless.saturating_sub(earlier.switchless),
            fallback: self.fallback.saturating_sub(earlier.fallback),
            regular: self.regular.saturating_sub(earlier.regular),
            cancelled: self.cancelled.saturating_sub(earlier.cancelled),
            pool_reallocs: self.pool_reallocs.saturating_sub(earlier.pool_reallocs),
            reply_truncations: self
                .reply_truncations
                .saturating_sub(earlier.reply_truncations),
            guard_violations: self
                .guard_violations
                .saturating_sub(earlier.guard_violations),
        }
    }
}

/// Histogram of how long the runtime spent with each active worker count,
/// in cycles. Used for the paper's §V-B residency observation (zc ran with
/// 2 workers for 84.4 % of the OpenSSL benchmark).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkerResidency {
    cycles_at: Vec<u64>,
}

impl WorkerResidency {
    /// Residency histogram supporting worker counts `0..=max_workers`.
    #[must_use]
    pub fn new(max_workers: usize) -> Self {
        WorkerResidency {
            cycles_at: vec![0; max_workers + 1],
        }
    }

    /// Record `cycles` spent with `workers` active.
    pub fn record(&mut self, workers: usize, cycles: u64) {
        if workers >= self.cycles_at.len() {
            self.cycles_at.resize(workers + 1, 0);
        }
        self.cycles_at[workers] += cycles;
    }

    /// Total recorded cycles.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.cycles_at.iter().sum()
    }

    /// Fraction of time spent at each worker count (empty if nothing
    /// recorded).
    #[must_use]
    pub fn fractions(&self) -> Vec<f64> {
        let total = self.total_cycles();
        if total == 0 {
            return vec![0.0; self.cycles_at.len()];
        }
        self.cycles_at
            .iter()
            .map(|&c| c as f64 / total as f64)
            .collect()
    }

    /// Time-weighted mean worker count.
    #[must_use]
    pub fn mean_workers(&self) -> f64 {
        let total = self.total_cycles();
        if total == 0 {
            return 0.0;
        }
        self.cycles_at
            .iter()
            .enumerate()
            .map(|(w, &c)| w as f64 * c as f64)
            .sum::<f64>()
            / total as f64
    }

    /// Cycles recorded at each worker count.
    #[must_use]
    pub fn cycles(&self) -> &[u64] {
        &self.cycles_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = CallStats::new();
        s.record_switchless();
        s.record_switchless();
        s.record_fallback();
        s.record_regular();
        s.record_pool_realloc();
        let snap = s.snapshot();
        assert_eq!(snap.switchless, 2);
        assert_eq!(snap.fallback, 1);
        assert_eq!(snap.regular, 1);
        assert_eq!(snap.pool_reallocs, 1);
        assert_eq!(snap.total_calls(), 4);
        assert_eq!(snap.transitions(), 3);
    }

    #[test]
    fn issued_and_cancelled_conserve() {
        let s = CallStats::new();
        for _ in 0..5 {
            s.record_issued();
        }
        s.record_switchless();
        s.record_switchless();
        s.record_fallback();
        s.record_regular();
        s.record_cancelled();
        let snap = s.snapshot();
        assert_eq!(snap.issued, 5);
        assert_eq!(snap.cancelled, 1);
        assert!(snap.is_conserved(), "5 issued = 2 sl + 1 fb + 1 reg + 1 cx");
        assert_eq!(snap.total_calls(), 5);
        s.record_issued(); // in flight: conservation does not hold
        assert!(!s.snapshot().is_conserved());
    }

    #[test]
    fn cancelled_counts_as_a_transition() {
        let snap = CallStatsSnapshot {
            cancelled: 2,
            fallback: 1,
            ..CallStatsSnapshot::default()
        };
        assert_eq!(snap.transitions(), 3);
    }

    #[test]
    fn truncations_and_violations_are_side_counters() {
        // Neither counter participates in the conservation identity:
        // a truncated call completed switchlessly and a violated call
        // completed via fallback.
        let s = CallStats::new();
        s.record_issued();
        s.record_reply_truncation();
        s.record_switchless();
        s.record_issued();
        s.record_guard_violation();
        s.record_fallback();
        let snap = s.snapshot();
        assert_eq!(snap.reply_truncations, 1);
        assert_eq!(snap.guard_violations, 1);
        assert!(snap.is_conserved());
        assert_eq!(snap.total_calls(), 2);
        let d = snap.delta_since(&CallStatsSnapshot::default());
        assert_eq!((d.reply_truncations, d.guard_violations), (1, 1));
    }

    #[test]
    fn fallbacks_fast_path_matches_snapshot() {
        let s = CallStats::new();
        for _ in 0..5 {
            s.record_fallback();
        }
        assert_eq!(s.fallbacks(), 5);
        assert_eq!(s.snapshot().fallback, 5);
    }

    #[test]
    fn delta_since_is_saturating_per_counter() {
        let a = CallStatsSnapshot {
            switchless: 10,
            fallback: 3,
            regular: 1,
            ..CallStatsSnapshot::default()
        };
        let b = CallStatsSnapshot {
            switchless: 4,
            fallback: 5,
            regular: 0,
            ..CallStatsSnapshot::default()
        };
        let d = a.delta_since(&b);
        assert_eq!(d.switchless, 6);
        assert_eq!(d.fallback, 0, "negative deltas clamp to zero");
        assert_eq!(d.regular, 1);
    }

    #[test]
    fn snapshot_wasted_cycles_counts_all_transitions() {
        let snap = CallStatsSnapshot {
            switchless: 100,
            fallback: 2,
            regular: 3,
            pool_reallocs: 1,
            ..CallStatsSnapshot::default()
        };
        // (2+3+1) * 13_500 + 2 * 1_000
        assert_eq!(snap.wasted_cycles(13_500, 2, 1_000), 6 * 13_500 + 2_000);
    }

    #[test]
    fn residency_fractions_and_mean() {
        let mut r = WorkerResidency::new(4);
        r.record(0, 100);
        r.record(2, 300);
        r.record(2, 100);
        assert_eq!(r.total_cycles(), 500);
        let f = r.fractions();
        assert!((f[0] - 0.2).abs() < 1e-12);
        assert!((f[2] - 0.8).abs() < 1e-12);
        assert!((r.mean_workers() - 1.6).abs() < 1e-12);
    }

    #[test]
    fn residency_grows_on_demand() {
        let mut r = WorkerResidency::new(1);
        r.record(5, 10);
        assert_eq!(r.cycles().len(), 6);
        assert_eq!(r.cycles()[5], 10);
    }

    #[test]
    fn empty_residency_is_well_behaved() {
        let r = WorkerResidency::new(2);
        assert_eq!(r.total_cycles(), 0);
        assert_eq!(r.fractions(), vec![0.0, 0.0, 0.0]);
        assert_eq!(r.mean_workers(), 0.0);
    }

    #[test]
    fn stats_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CallStats>();
    }
}
