//! Ablation A1: the Intel `retries_before_fallback` pathology, directly.
//! Oversubscribed callers (6) vs workers (2) with long (200 k-cycle)
//! host calls: large rbf serializes callers behind the worker pool.
//!
//! Usage: `ablation_rbf [--quick]`

use zc_bench::experiments::ablations::{fallback_ablation, mechanism_comparison, rbf_sweep};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let ops = if quick { 500 } else { 5_000 };
    let t = rbf_sweep(&[0, 64, 1_000, 20_000, 200_000], 6, 2, ops, 200_000);
    t.emit(Some(std::path::Path::new("results/ablation_rbf.csv")));
    let t = fallback_ablation(6, ops);
    t.emit(Some(std::path::Path::new("results/ablation_fallback.csv")));
    let t = mechanism_comparison(if quick { 500 } else { 3_000 });
    t.emit(Some(std::path::Path::new(
        "results/ablation_mechanisms.csv",
    )));
}
