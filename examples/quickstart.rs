//! Quickstart: issue ocalls through all three mechanisms and compare.
//!
//! Builds a tiny "enclave application" that writes records through the
//! ocall layer, then runs it under (1) regular ocalls, (2) the Intel
//! static switchless baseline and (3) ZC-SWITCHLESS, printing the call
//! routing and enclave-transition counts of each.
//!
//! Run with: `cargo run --release --example quickstart`

use std::sync::Arc;
use switchless_core::{CpuSpec, IntelConfig, OcallDispatcher, OcallRequest, OcallTable, ZcConfig};
use zc_switchless_repro::sgx_sim::{Enclave, HostFs, RegularOcall};
use zc_switchless_repro::{intel_switchless::IntelSwitchless, zc_switchless::ZcRuntime};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The untrusted world: a host filesystem and the ocall table.
    let fs = HostFs::new();
    let mut table = OcallTable::new();
    let funcs = zc_switchless_repro::sgx_sim::hostfs::FsFuncs::register(&mut table, &fs);
    let table = Arc::new(table);

    // 2. The enclave (simulated: transition costs are injected).
    let enclave = Enclave::new(CpuSpec::paper_machine());

    // A small workload: open a log file and append 2000 records.
    let workload = |disp: &dyn OcallDispatcher| -> Result<(), Box<dyn std::error::Error>> {
        let mut out = Vec::new();
        let (fd, _) = disp.dispatch(
            &OcallRequest::new(funcs.fopen, &[1 /* write */]),
            b"/quickstart.log",
            &mut out,
        )?;
        for i in 0..2_000u64 {
            let record = format!("record {i}\n");
            disp.dispatch(
                &OcallRequest::new(funcs.fwrite, &[fd as u64]),
                record.as_bytes(),
                &mut out,
            )?;
        }
        disp.dispatch(
            &OcallRequest::new(funcs.fclose, &[fd as u64]),
            &[],
            &mut out,
        )?;
        Ok(())
    };

    // 3a. Regular ocalls: every call pays the enclave transition.
    let regular = RegularOcall::new(Arc::clone(&table), enclave.clone());
    let t0 = std::time::Instant::now();
    workload(&regular)?;
    println!(
        "regular : {:>6.2} ms, transitions={}, stats={:?}",
        t0.elapsed().as_secs_f64() * 1e3,
        enclave.ocalls(),
        regular.stats().snapshot()
    );

    // 3b. Intel switchless: fwrite statically marked, 2 workers.
    let intel = IntelSwitchless::start(
        IntelConfig::new(2, [funcs.fwrite]),
        Arc::clone(&table),
        enclave.clone(),
    )?;
    let t0 = std::time::Instant::now();
    workload(&intel)?;
    println!(
        "intel   : {:>6.2} ms, stats={:?}",
        t0.elapsed().as_secs_f64() * 1e3,
        intel.stats().snapshot()
    );
    intel.shutdown();

    // 3c. ZC-SWITCHLESS: nothing to configure.
    let zc = ZcRuntime::start(ZcConfig::default(), Arc::clone(&table), enclave.clone())?;
    let t0 = std::time::Instant::now();
    workload(&zc)?;
    println!(
        "zc      : {:>6.2} ms, stats={:?}, active workers={}",
        t0.elapsed().as_secs_f64() * 1e3,
        zc.stats().snapshot(),
        zc.active_workers()
    );
    zc.shutdown();

    println!(
        "\nlog file size: {} bytes",
        fs.file_size("/quickstart.log").unwrap_or(0)
    );
    Ok(())
}
