//! Property tests of the DES kernel: work conservation, determinism and
//! spin semantics under randomized workloads.

use proptest::prelude::*;
use zc_des::kernel::{Actor, Kernel, SpinTarget, Syscall, SyscallResult, Tid};

/// Plays a fixed syscall script.
struct Script {
    steps: Vec<Syscall>,
    i: usize,
}

impl Actor for Script {
    fn step(&mut self, _res: SyscallResult, _now: u64) -> Syscall {
        let s = self.steps.get(self.i).copied().unwrap_or(Syscall::Done);
        self.i += 1;
        s
    }
}

proptest! {
    /// Total busy time equals total submitted compute regardless of core
    /// count, quantum or arrival order (work conservation).
    #[test]
    fn work_is_conserved(
        works in prop::collection::vec(1u64..2_000_000, 1..12),
        cores in 1usize..8,
        quantum in 1_000u64..5_000_000,
    ) {
        let mut k = Kernel::new(cores, quantum, 140);
        for &w in &works {
            k.spawn(Box::new(Script { steps: vec![Syscall::Compute(w)], i: 0 }));
        }
        let end = k.run();
        let total: u64 = works.iter().sum();
        prop_assert_eq!(k.total_busy_cycles(), total);
        // Makespan bounds: at least the critical path, at most the serial
        // sum.
        let max = *works.iter().max().unwrap();
        prop_assert!(end >= max.max(total / cores as u64));
        prop_assert!(end <= total);
    }

    /// Per-thread busy time equals that thread's own submitted compute.
    #[test]
    fn per_thread_accounting_is_exact(
        works in prop::collection::vec(1u64..500_000, 1..8),
        cores in 1usize..5,
    ) {
        let mut k = Kernel::new(cores, 100_000, 140);
        let tids: Vec<Tid> = works
            .iter()
            .map(|&w| {
                k.spawn(Box::new(Script {
                    steps: vec![Syscall::Compute(w), Syscall::Sleep(1_000), Syscall::Compute(w)],
                    i: 0,
                }))
            })
            .collect();
        k.run();
        for (tid, &w) in tids.iter().zip(&works) {
            let (busy, idle) = k.thread_cycles(*tid);
            prop_assert_eq!(busy, 2 * w, "busy mismatch for {:?}", tid);
            prop_assert_eq!(idle, 1_000);
        }
    }

    /// Identical random scripts yield identical end times and accounting
    /// (determinism).
    #[test]
    fn random_scripts_are_deterministic(
        seedwork in prop::collection::vec((1u64..100_000, 0u64..3), 1..10),
        cores in 1usize..4,
    ) {
        let build = || {
            let mut k = Kernel::new(cores, 50_000, 140);
            let flag = k.new_flag(0);
            for (i, &(w, kind)) in seedwork.iter().enumerate() {
                let steps = match kind {
                    0 => vec![Syscall::Compute(w)],
                    1 => vec![Syscall::Compute(w), Syscall::SetFlag { flag, value: i as u64 }],
                    _ => vec![
                        Syscall::Compute(w / 2),
                        Syscall::Sleep(w / 2 + 1),
                        Syscall::Compute(w / 2),
                    ],
                };
                k.spawn(Box::new(Script { steps, i: 0 }));
            }
            let end = k.run();
            (end, k.total_busy_cycles(), k.steps())
        };
        prop_assert_eq!(build(), build());
    }

    /// A spinner with a timeout always times out within
    /// `budget × pause` busy cycles of its own, regardless of contention.
    #[test]
    fn spin_timeout_budget_is_exact_in_busy_time(
        budget in 1u64..5_000,
        contenders in 0usize..4,
    ) {
        let mut k = Kernel::new(1, 10_000, 140);
        let flag = k.new_flag(0);
        let spinner = k.spawn(Box::new(Script {
            steps: vec![Syscall::SpinUntil {
                flag,
                target: SpinTarget::Eq(1),
                timeout_pauses: Some(budget),
            }],
            i: 0,
        }));
        for _ in 0..contenders {
            k.spawn(Box::new(Script { steps: vec![Syscall::Compute(30_000)], i: 0 }));
        }
        k.run();
        let (busy, _) = k.thread_cycles(spinner);
        // The spinner burns exactly its pause budget on-CPU (plus at most
        // one pause of scheduling slop per on-core stint).
        let expected = budget * 140;
        prop_assert!(
            busy >= expected && busy <= expected + 140 * (contenders as u64 + 2),
            "busy {} vs expected {}",
            busy,
            expected
        );
    }
}

/// Doorbell (Ne-target) spinners wake on any value change.
#[test]
fn ne_spinner_wakes_on_any_change() {
    let mut k = Kernel::new(2, 1_000_000, 140);
    let flag = k.new_flag(7);
    let spinner = k.spawn(Box::new(Script {
        steps: vec![Syscall::SpinUntil {
            flag,
            target: SpinTarget::Ne(7),
            timeout_pauses: None,
        }],
        i: 0,
    }));
    k.spawn(Box::new(Script {
        steps: vec![Syscall::Compute(5_000), Syscall::SetFlag { flag, value: 9 }],
        i: 0,
    }));
    let end = k.run();
    assert_eq!(end, 5_140, "wake one pause after the change");
    assert_eq!(k.thread_cycles(spinner).0, 5_140);
}
