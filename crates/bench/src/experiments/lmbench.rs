//! Fig. 11 / Fig. 12: the dynamic lmbench benchmark.
//!
//! One reader thread (`read` of `/dev/zero`) and one writer thread
//! (`write` to `/dev/null`) under a three-phase load: per-period op
//! quotas double for a third of the run, stay constant, then halve
//! (paper: 3 × 20 s with τ = 0.5 s; we default to a 5×-compressed time
//! axis — 3 × 4 s with τ = 0.2 s — to bound simulation cost; shapes are
//! unaffected).

use super::fscommon::NamedMechanism;
use crate::table::{f2, Table};
use zc_des::ocall::intel::IntelSimConfig;
use zc_des::ocall::CallDesc;
use zc_des::workload::{Phase, PhaseMode, PhasedLoad};
use zc_des::{Mechanism, SimConfig, SimReport, WorkloadSpec, ZcSimParams};

/// Call class of the reader thread's `read`.
pub const CLASS_READ: usize = 0;
/// Call class of the writer thread's `write`.
pub const CLASS_WRITE: usize = 1;

/// Parameters of the dynamic benchmark.
#[derive(Debug, Clone, Copy)]
pub struct LmbenchParams {
    /// Duration of each of the three phases, in seconds.
    pub phase_secs: u64,
    /// Load period τ in milliseconds.
    pub tau_ms: u64,
    /// Ops per period at the start of the doubling phase.
    pub initial_ops: u64,
    /// Host-side duration of one `read`/`write` syscall, in cycles.
    pub host_cycles: u64,
}

impl Default for LmbenchParams {
    fn default() -> Self {
        LmbenchParams {
            phase_secs: 4,
            tau_ms: 200,
            initial_ops: 512,
            host_cycles: 3_000,
        }
    }
}

/// The reader's call.
#[must_use]
pub fn read_call(p: &LmbenchParams) -> CallDesc {
    CallDesc {
        class: CLASS_READ,
        host_cycles: p.host_cycles,
        ret_bytes: 8,
        ..CallDesc::default()
    }
}

/// The writer's call.
#[must_use]
pub fn write_call(p: &LmbenchParams) -> CallDesc {
    CallDesc {
        class: CLASS_WRITE,
        host_cycles: p.host_cycles.saturating_sub(200),
        payload_bytes: 8,
        ..CallDesc::default()
    }
}

fn phased(call: CallDesc, p: &LmbenchParams, freq_hz: u64) -> WorkloadSpec {
    let secs = |s: u64| freq_hz * s;
    WorkloadSpec::Phased(PhasedLoad {
        call,
        period_cycles: freq_hz / 1_000 * p.tau_ms,
        initial_ops: p.initial_ops,
        phases: vec![
            Phase {
                duration_cycles: secs(p.phase_secs),
                mode: PhaseMode::Doubling,
            },
            Phase {
                duration_cycles: secs(p.phase_secs),
                mode: PhaseMode::Constant,
            },
            Phase {
                duration_cycles: secs(p.phase_secs),
                mode: PhaseMode::Halving,
            },
        ],
    })
}

/// The paper's six Intel configurations (for one worker count) plus
/// `no_sl` and `zc`.
#[must_use]
pub fn configs(workers: usize) -> Vec<NamedMechanism> {
    vec![
        NamedMechanism {
            label: "no_sl".into(),
            mechanism: Mechanism::NoSl,
        },
        NamedMechanism {
            label: format!("i-read-{workers}"),
            mechanism: Mechanism::Intel(IntelSimConfig::new(workers, [CLASS_READ])),
        },
        NamedMechanism {
            label: format!("i-write-{workers}"),
            mechanism: Mechanism::Intel(IntelSimConfig::new(workers, [CLASS_WRITE])),
        },
        NamedMechanism {
            label: format!("i-all-{workers}"),
            mechanism: Mechanism::Intel(IntelSimConfig::new(workers, [CLASS_READ, CLASS_WRITE])),
        },
        NamedMechanism {
            label: "zc".into(),
            mechanism: Mechanism::Zc(ZcSimParams::default()),
        },
    ]
}

/// Run the dynamic benchmark under one mechanism, sampling every τ.
#[must_use]
pub fn run(p: &LmbenchParams, mech: &NamedMechanism) -> SimReport {
    let cpu = switchless_core::CpuSpec::paper_machine();
    let workloads = vec![
        phased(read_call(p), p, cpu.freq_hz),
        phased(write_call(p), p, cpu.freq_hz),
    ];
    let total = cpu.freq_hz * 3 * p.phase_secs;
    zc_des::run(
        &SimConfig::new(mech.mechanism.clone(), workloads, 2)
            .with_sampling(cpu.freq_hz / 1_000 * p.tau_ms)
            .with_deadline(total + total / 10),
    )
}

/// Mean over the middle (constant-load) third of a per-interval series.
fn plateau_mean(series: &[f64]) -> f64 {
    if series.is_empty() {
        return 0.0;
    }
    let third = series.len() / 3;
    let mid = &series[third..(2 * third).max(third + 1).min(series.len())];
    mid.iter().sum::<f64>() / mid.len() as f64
}

/// Run every configuration once, returning `(label, report)` pairs that
/// the figure tables and series derive from (one simulation per config).
#[must_use]
pub fn run_all(p: &LmbenchParams, workers: usize) -> Vec<(String, SimReport)> {
    configs(workers)
        .into_iter()
        .map(|mech| {
            let r = run(p, &mech);
            (mech.label, r)
        })
        .collect()
}

/// Fig. 11 summary: plateau throughput of reader/writer per config.
/// Full per-τ series go to `results/fig11_<label>.csv` via
/// [`series_table`].
#[must_use]
pub fn fig11(p: &LmbenchParams, reports: &[(String, SimReport)], workers: usize) -> Table {
    let mut table = Table::new(
        format!(
            "Fig 11: lmbench plateau throughput (ops/s), {workers} Intel workers, \
             3x{}s phases",
            p.phase_secs
        ),
        &["config", "reader (ops/s)", "writer (ops/s)"],
    );
    for (label, r) in reports {
        let freq = r.cpu.freq_hz;
        table.row(vec![
            label.clone(),
            f2(plateau_mean(&r.timeline.throughput_ops_per_sec(0, freq))),
            f2(plateau_mean(&r.timeline.throughput_ops_per_sec(1, freq))),
        ]);
    }
    table
}

/// Fig. 12 summary: plateau CPU usage per config.
#[must_use]
pub fn fig12(reports: &[(String, SimReport)], workers: usize) -> Table {
    let mut table = Table::new(
        format!("Fig 12: lmbench plateau %CPU, {workers} Intel workers"),
        &["config", "%cpu (plateau)", "%cpu (mean)"],
    );
    for (label, r) in reports {
        table.row(vec![
            label.clone(),
            f2(plateau_mean(&r.timeline.cpu_percent(r.cpu.logical_cpus))),
            f2(r.cpu_percent()),
        ]);
    }
    table
}

/// Per-τ series of one report as a table (`t`, reader tput, writer tput,
/// `%cpu`, active zc workers).
#[must_use]
pub fn series_table(label: &str, r: &SimReport) -> Table {
    let freq = r.cpu.freq_hz;
    let ts = r.timeline.interval_midpoints_secs(freq);
    let rd = r.timeline.throughput_ops_per_sec(0, freq);
    let wr = r.timeline.throughput_ops_per_sec(1, freq);
    let cpu = r.timeline.cpu_percent(r.cpu.logical_cpus);
    let mut table = Table::new(
        format!("lmbench series: {label}"),
        &["t (s)", "read ops/s", "write ops/s", "%cpu", "zc workers"],
    );
    for i in 0..ts.len() {
        table.row(vec![
            f2(ts[i]),
            f2(rd[i]),
            f2(wr[i]),
            f2(cpu[i]),
            r.timeline.samples[i + 1].active_workers.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> LmbenchParams {
        LmbenchParams {
            phase_secs: 1,
            tau_ms: 100,
            initial_ops: 64,
            host_cycles: 3_000,
        }
    }

    #[test]
    fn throughput_ramps_and_falls() {
        let mech = &configs(2)[4]; // zc
        assert_eq!(mech.label, "zc");
        let r = run(&quick(), mech);
        let tput = r.timeline.throughput_ops_per_sec(0, r.cpu.freq_hz);
        assert!(tput.len() >= 9, "periods sampled: {}", tput.len());
        let first = tput[1];
        let mid = tput[tput.len() / 2];
        let last = *tput.last().unwrap();
        assert!(mid > first, "load must ramp: first={first} mid={mid}");
        assert!(mid > last, "load must fall: mid={mid} last={last}");
    }

    #[test]
    fn misconfigured_write_only_hurts_the_reader() {
        let p = quick();
        let cfgs = configs(2);
        let find = |l: &str| cfgs.iter().find(|m| m.label == l).unwrap();
        let i_write = run(&p, find("i-write-2"));
        let i_all = run(&p, find("i-all-2"));
        // The reader's calls are never switchless under i-write.
        assert_eq!(
            i_write.counters.ops_per_class[CLASS_READ], i_write.counters.regular,
            "all reads regular under i-write"
        );
        assert!(
            i_all.counters.ops_per_caller[0] >= i_write.counters.ops_per_caller[0],
            "reader completes at least as many ops under i-all"
        );
    }

    #[test]
    fn run_finishes_within_deadline() {
        let p = quick();
        let r = run(&p, &configs(2)[0]);
        let total = r.cpu.freq_hz * 3 * p.phase_secs;
        assert!(r.duration_cycles <= total + total / 10 + 1);
        assert_eq!(r.counters.callers_live, 0, "both callers must finish");
    }

    #[test]
    fn plateau_mean_takes_middle_third() {
        let s = vec![0.0, 0.0, 0.0, 9.0, 9.0, 9.0, 1.0, 1.0, 1.0];
        assert!((plateau_mean(&s) - 9.0).abs() < 1e-9);
        assert_eq!(plateau_mean(&[]), 0.0);
    }
}
