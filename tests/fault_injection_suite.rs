//! Deterministic fault-injection suite for the switchless runtimes.
//!
//! Every test here runs on a **virtual clock** ([`Enclave::new_virtual`]):
//! scheduler quanta, cost-injection spins, retry backoffs and drain
//! timeouts all advance logical time instantly, so no test sleeps
//! wall-clock time and every failure is provoked at a scripted call
//! index ([`FaultPlan`]) rather than by racing timers. (The occasional
//! `Instant` deadline below is a *failure backstop* for a wedged run —
//! it is polled, never slept on.)
//!
//! Because the ZC scheduler free-runs through its quanta on virtual
//! time, tests do not assume a fixed scheduler phase: fault sites fire
//! on the n-th *serviced* call, so assertions key off the injector's
//! observability counters rather than absolute dispatch indices.
//!
//! Covered degradation paths:
//!
//! * ZC worker **crash** → buffer poisoned, caller re-routed to a
//!   regular ocall, worker quarantined for the rest of the run;
//! * ZC worker **stall** → call still completes switchlessly;
//! * forced **pool exhaustion** → bounded retry, then fallback;
//! * forced **transition failure** → bounded retry-with-backoff, then
//!   success or [`SwitchlessError::TransitionFailed`];
//! * **shutdown under load** → drain-with-timeout joins live workers;
//! * **hung worker** → drain timeout abandons exactly the wedged thread;
//! * Intel worker **crash** → rbf timeout cancels the submission and
//!   falls back;
//! * **clock skew** at dispatch → calls still complete, skew visible on
//!   the shared clock.

use sgx_sim::Enclave;
use std::sync::Arc;
use std::time::{Duration, Instant};
use switchless_core::{
    CallPath, CpuSpec, FaultInjector, FaultPlan, IntelConfig, OcallDispatcher, OcallRequest,
    OcallTable, SwitchlessError, ZcConfig, MAX_OCALL_ARGS,
};
use zc_switchless::ZcRuntime;

/// Failure backstop for bounded polls (never slept on).
const BACKSTOP: Duration = Duration::from_secs(60);

fn table() -> (Arc<OcallTable>, switchless_core::FuncId) {
    let mut t = OcallTable::new();
    let echo = t.register(
        "echo",
        |_: &[u64; MAX_OCALL_ARGS], pin: &[u8], pout: &mut Vec<u8>| {
            pout.extend_from_slice(pin);
            pin.len() as i64
        },
    );
    (Arc::new(t), echo)
}

/// Small machine: 4 logical CPUs -> 2 workers max.
fn zc_config() -> ZcConfig {
    let mut cpu = CpuSpec::paper_machine();
    cpu.logical_cpus = 4;
    ZcConfig::for_cpu(cpu)
        .with_quantum_ms(10)
        .with_initial_workers(2)
}

fn start_zc(plan: FaultPlan) -> (ZcRuntime, Arc<FaultInjector>, switchless_core::FuncId) {
    let (t, echo) = table();
    let cfg = zc_config();
    let faults = Arc::new(FaultInjector::new(plan));
    let rt =
        ZcRuntime::start_with_faults(cfg, t, Enclave::new_virtual(cfg.cpu), Arc::clone(&faults))
            .expect("zc runtime must start");
    (rt, faults, echo)
}

/// Dispatch `echo` calls until `stop` says the fault state of interest
/// has been reached, asserting every call round-trips its payload.
/// Returns the path of the final (triggering) call.
fn drive_until(
    rt: &ZcRuntime,
    echo: switchless_core::FuncId,
    what: &str,
    mut stop: impl FnMut() -> bool,
) -> CallPath {
    let deadline = Instant::now() + BACKSTOP;
    let mut out = Vec::new();
    let mut i = 0u64;
    loop {
        assert!(
            Instant::now() < deadline,
            "backstop expired waiting for {what}"
        );
        let payload = vec![i as u8; 16];
        let (ret, path) = rt
            .dispatch(&OcallRequest::new(echo, &[]), &payload, &mut out)
            .unwrap();
        assert_eq!(ret, 16, "call {i} returned wrong length");
        assert_eq!(out, payload, "call {i} corrupted payload");
        i += 1;
        if stop() {
            return path;
        }
    }
}

#[test]
fn zc_worker_crash_is_quarantined_and_calls_complete() {
    // Crash the worker servicing the first *serviced* switchless call.
    let (rt, faults, echo) = start_zc(FaultPlan::new().crash_worker_at(0));
    let path = drive_until(&rt, echo, "injected crash", || faults.counts().crashes == 1);
    assert_eq!(
        path,
        CallPath::Fallback,
        "the crash victim must be re-routed to a regular ocall"
    );
    assert_eq!(
        rt.poisoned_workers(),
        1,
        "crashed worker must be quarantined"
    );
    // The surviving worker keeps serving switchless calls afterwards.
    let switchless_before = rt.stats().snapshot().switchless;
    drive_until(&rt, echo, "a post-crash switchless call", || {
        rt.stats().snapshot().switchless > switchless_before
    });
    assert_eq!(rt.poisoned_workers(), 1, "no further quarantine");
    let report = rt.shutdown_with_timeout(Duration::from_secs(5));
    // The crashed worker's thread exited on its own: nothing is abandoned.
    assert!(
        report.is_clean(),
        "crashed (exited) worker must not block drain: {report:?}"
    );
}

#[test]
fn zc_worker_stall_delays_but_completes_switchlessly() {
    // Stall the first serviced call for a full modelled second.
    const STALL: u64 = 3_800_000_000;
    let (rt, faults, echo) = start_zc(FaultPlan::new().stall_worker_at(0, STALL));
    let clock = rt.clock();
    let before = clock.now_cycles();
    let path = drive_until(&rt, echo, "injected stall", || faults.counts().stalls == 1);
    assert_eq!(
        path,
        CallPath::Switchless,
        "a stall is a delay, not a failure"
    );
    assert!(
        clock.now_cycles() - before >= STALL,
        "the stall must be charged to the modelled clock"
    );
    assert_eq!(rt.poisoned_workers(), 0, "stalls do not poison workers");
    rt.shutdown();
}

#[test]
fn zc_pool_exhaustion_retries_then_falls_back() {
    // First 2 allocations fail: the first *claimed* call's bounded retry
    // (budget 3) absorbs both and the call still goes switchless.
    let (rt, faults, echo) = start_zc(FaultPlan::new().exhaust_pool_first(2));
    let path = drive_until(&rt, echo, "both injected exhaustions", || {
        faults.counts().pool_exhaustions == 2
    });
    assert_eq!(
        path,
        CallPath::Switchless,
        "2 failures fit inside the retry budget"
    );
    rt.shutdown();
}

#[test]
fn zc_persistent_pool_exhaustion_degrades_to_fallback() {
    // A large exhaustion window: the first claimed call burns its whole
    // retry budget (1 attempt + 3 retries) and degrades to a regular
    // ocall; later calls keep completing.
    let (rt, faults, echo) = start_zc(FaultPlan::new().exhaust_pool_first(100));
    let path = drive_until(&rt, echo, "a burnt retry budget", || {
        faults.counts().pool_exhaustions >= 4
    });
    assert_eq!(
        faults.counts().pool_exhaustions,
        4,
        "one claimed call consumes exactly 1 + 3 forced allocations"
    );
    assert_eq!(
        path,
        CallPath::Fallback,
        "persistent exhaustion must degrade, not hang"
    );
    // Keep going: the runtime stays usable while the window drains.
    drive_until(&rt, echo, "the exhaustion window to drain", || {
        faults.counts().pool_exhaustions == 100
    });
    rt.shutdown();
}

#[test]
fn zc_transition_failures_recover_within_retry_budget() {
    // Fail the first 2 transitions; force the fallback path with an
    // oversized payload (always TooLarge for the worker pool). The very
    // first dispatch is the first transition anywhere in the runtime.
    let (rt, faults, echo) = start_zc(FaultPlan::new().fail_transitions_first(2));
    let big = vec![9u8; rt.config().pool_bytes + 1];
    let mut out = Vec::new();
    let (ret, path) = rt
        .dispatch(&OcallRequest::new(echo, &[]), &big, &mut out)
        .unwrap();
    assert_eq!(ret, big.len() as i64);
    assert_eq!(out, big);
    assert_eq!(path, CallPath::Fallback);
    assert_eq!(
        faults.counts().transition_failures,
        2,
        "both injected failures absorbed by the retry budget"
    );
    rt.shutdown();
}

#[test]
fn zc_exhausted_transition_retries_surface_as_error() {
    // More failures than any retry budget: the fallback path must give up
    // with TransitionFailed instead of retrying forever.
    let (rt, _faults, echo) = start_zc(FaultPlan::new().fail_transitions_first(1_000));
    let big = vec![7u8; rt.config().pool_bytes + 1];
    let mut out = Vec::new();
    let err = rt
        .dispatch(&OcallRequest::new(echo, &[]), &big, &mut out)
        .unwrap_err();
    assert_eq!(err, SwitchlessError::TransitionFailed { attempts: 4 });
    rt.shutdown();
}

#[test]
fn zc_shutdown_under_load_drains_cleanly() {
    let (rt, _faults, echo) = start_zc(FaultPlan::new());
    let rt = Arc::new(rt);
    // Four caller threads hammer the runtime while the main thread shuts
    // it down mid-load.
    let mut handles = Vec::new();
    for c in 0..4u8 {
        let rt = Arc::clone(&rt);
        handles.push(std::thread::spawn(move || {
            let mut out = Vec::new();
            let mut completed = 0u32;
            for i in 0..2_000u32 {
                let payload = vec![c.wrapping_add(i as u8); 8];
                match rt.dispatch(&OcallRequest::new(echo, &[]), &payload, &mut out) {
                    Ok((ret, _)) => {
                        assert_eq!(ret, 8);
                        assert_eq!(out, payload);
                        completed += 1;
                    }
                    Err(SwitchlessError::RuntimeStopped) => break,
                    Err(e) => panic!("unexpected dispatch error under shutdown: {e}"),
                }
            }
            completed
        }));
    }
    // Let some calls land, then pull the plug while callers are active.
    let deadline = Instant::now() + BACKSTOP;
    while rt.stats().snapshot().total_calls() < 50 {
        assert!(Instant::now() < deadline, "no load built up");
        std::thread::yield_now();
    }
    let report = rt.shutdown_with_timeout(Duration::from_secs(10));
    assert!(report.is_clean(), "healthy workers must drain: {report:?}");
    assert_eq!(report.drained, rt.config().max_workers());
    for h in handles {
        let completed = h.join().unwrap();
        assert!(
            completed > 0,
            "every caller must have completed calls before the stop"
        );
    }
}

#[test]
fn zc_hung_worker_is_abandoned_by_drain_timeout() {
    // Wedge the worker servicing the first serviced call forever. The
    // caller is re-routed (a hang poisons the buffer before parking);
    // shutdown's drain must abandon exactly that thread and join the
    // healthy one — and say so on the telemetry trace, not just in the
    // drain report.
    let (t, echo) = table();
    let cfg = zc_config();
    let hub = zc_telemetry::Telemetry::new();
    let faults = Arc::new(FaultInjector::new(FaultPlan::new().hang_worker_at(0)));
    let rt = ZcRuntime::start_with_telemetry(
        cfg,
        t,
        Enclave::new_virtual(cfg.cpu),
        Arc::clone(&hub),
        Some(Arc::clone(&faults)),
    )
    .expect("zc runtime must start");
    let path = drive_until(&rt, echo, "injected hang", || faults.counts().hangs == 1);
    assert_eq!(
        path,
        CallPath::Fallback,
        "caller of the hung worker must be re-routed"
    );
    assert_eq!(rt.poisoned_workers(), 1);
    // Virtual clock: this 200 ms drain budget costs no wall time.
    let report = rt.shutdown_with_timeout(Duration::from_millis(200));
    assert_eq!(
        report.abandoned, 1,
        "exactly the wedged thread is abandoned"
    );
    assert_eq!(report.drained, rt.config().max_workers() - 1);
    let abandoned: Vec<_> = hub
        .tracer()
        .drain()
        .into_iter()
        .filter(|ev| matches!(ev.event, zc_telemetry::Event::WorkerAbandoned { .. }))
        .collect();
    assert_eq!(
        abandoned.len(),
        1,
        "exactly one worker_abandoned event must be traced: {abandoned:?}"
    );
}

#[test]
fn intel_worker_crash_degrades_to_fallback() {
    use intel_switchless::IntelSwitchless;
    let (t, echo) = table();
    // One worker, finite rbf: the only worker dies before accepting the
    // first submission, so the caller's rbf window expires, the
    // submission is cancelled and the call falls back. Every later call
    // degrades the same way — the runtime never hangs.
    let cfg = IntelConfig::new(1, [echo]).with_retries_before_fallback(64);
    let faults = Arc::new(FaultInjector::new(FaultPlan::new().crash_worker_at(0)));
    let rt = IntelSwitchless::start_with_faults(
        cfg,
        t,
        Enclave::new_virtual(CpuSpec::paper_machine()),
        Arc::clone(&faults),
    )
    .unwrap();
    let mut out = Vec::new();
    for i in 0..10u8 {
        let payload = vec![i; 12];
        let (ret, path) = rt
            .dispatch(&OcallRequest::new(echo, &[]), &payload, &mut out)
            .unwrap();
        assert_eq!(ret, 12);
        assert_eq!(out, payload);
        assert_eq!(
            path,
            CallPath::Fallback,
            "call {i}: dead worker means fallback"
        );
    }
    assert_eq!(faults.counts().crashes, 1);
    let report = rt.shutdown_with_timeout(Duration::from_secs(5));
    assert!(
        report.is_clean(),
        "crashed (exited) worker must not block drain: {report:?}"
    );
}

#[test]
fn intel_worker_stall_still_completes_switchlessly() {
    use intel_switchless::IntelSwitchless;
    let (t, echo) = table();
    let cfg = IntelConfig::new(1, [echo]).with_retries_before_fallback(u32::MAX);
    let faults = Arc::new(FaultInjector::new(
        FaultPlan::new().stall_worker_at(0, 1_000_000),
    ));
    let rt = IntelSwitchless::start_with_faults(
        cfg,
        t,
        Enclave::new_virtual(CpuSpec::paper_machine()),
        Arc::clone(&faults),
    )
    .unwrap();
    let mut out = Vec::new();
    let (ret, path) = rt
        .dispatch(&OcallRequest::new(echo, &[]), b"slow", &mut out)
        .unwrap();
    assert_eq!(ret, 4);
    assert_eq!(out, b"slow");
    assert_eq!(
        path,
        CallPath::Switchless,
        "a stalled worker still serves the call"
    );
    assert_eq!(faults.counts().stalls, 1);
    rt.shutdown();
}

#[test]
fn clock_skew_does_not_break_dispatch() {
    // Skew the clock forward ~1 modelled second on every dispatch; calls
    // must still complete and the skew must be visible on the clock.
    const SKEW: u64 = 3_800_000_000;
    let (rt, faults, echo) = start_zc(FaultPlan::new().skew_clock(1, SKEW));
    let clock = rt.clock();
    let before = clock.now_cycles();
    let mut out = Vec::new();
    for i in 0..10u8 {
        let payload = vec![i; 16];
        let (ret, _) = rt
            .dispatch(&OcallRequest::new(echo, &[]), &payload, &mut out)
            .unwrap();
        assert_eq!(ret, 16);
        assert_eq!(out, payload);
    }
    assert_eq!(faults.counts().clock_skews, 10);
    assert!(
        clock.now_cycles() - before >= 10 * SKEW,
        "injected skew must move the shared clock"
    );
    // Statistics stayed coherent despite the skew.
    assert_eq!(rt.stats().snapshot().total_calls(), 10);
    rt.shutdown();
}

#[test]
fn virtual_clock_steps_scheduler_quanta_instantly() {
    // A 10 ms quantum with its configuration micro-quanta takes ~10+ ms
    // of *modelled* time per decision; on the virtual clock dozens of
    // decisions complete in well under a second of wall time.
    let (t, echo) = table();
    let mut cpu = CpuSpec::paper_machine();
    cpu.logical_cpus = 4;
    let cfg = ZcConfig::for_cpu(cpu)
        .with_quantum_ms(10)
        .with_initial_workers(1);
    let rt = ZcRuntime::start(cfg, t, Enclave::new_virtual(cpu)).unwrap();
    let mut out = Vec::new();
    let deadline = Instant::now() + BACKSTOP;
    while rt.scheduler_decisions() < 10 {
        assert!(
            Instant::now() < deadline,
            "scheduler failed to step virtually"
        );
        let _ = rt
            .dispatch(&OcallRequest::new(echo, &[]), b"tick", &mut out)
            .unwrap();
    }
    assert!(rt.scheduler_decisions() >= 10);
    // 10 decisions require at least 10 quanta of modelled time.
    assert!(
        rt.clock().now_secs() >= 0.1,
        "modelled time must have advanced"
    );
    rt.shutdown();
}
