//! Offline stand-in for `criterion`.
//!
//! Provides the small slice of the criterion API the bench targets use
//! (`Criterion`, `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Throughput`, `criterion_group!`, `criterion_main!`)
//! backed by a plain wall-clock sampler: warm up briefly, then time
//! `sample_size` samples and print mean / min / max ns per iteration
//! (plus derived throughput when declared). No statistics, plots or
//! baseline storage — enough for `cargo bench` to produce comparable
//! numbers offline.

use std::time::{Duration, Instant};

/// Top-level harness configuration (sample count, per-benchmark time).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the wall-clock budget each benchmark aims to spend measuring.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let (sample_size, measurement_time) = (self.sample_size, self.measurement_time);
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
            measurement_time,
            throughput: None,
        }
    }
}

/// Declared units of work per iteration, used to derive throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Abstract elements processed per iteration.
    Elements(u64),
}

/// Identifier for a parameterised benchmark: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a displayable parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// A named set of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Overrides the measurement budget for this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark closure.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), |b| f(b));
        self
    }

    /// Runs one benchmark closure with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), |b| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility; reports are printed as
    /// each benchmark finishes).
    pub fn finish(&mut self) {}

    fn run(&self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
        };
        f(&mut b);
        let full = format!("{}/{}", self.name, id);
        if b.samples.is_empty() {
            println!("{full:<50} (no samples)");
            return;
        }
        let mean = b.samples.iter().sum::<f64>() / b.samples.len() as f64;
        let min = b.samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = b.samples.iter().cloned().fold(0.0f64, f64::max);
        let thr = match self.throughput {
            Some(Throughput::Bytes(n)) if mean > 0.0 => {
                format!(
                    "  {:>10.1} MiB/s",
                    n as f64 / mean * 1e9 / (1024.0 * 1024.0)
                )
            }
            Some(Throughput::Elements(n)) if mean > 0.0 => {
                format!("  {:>10.1} Melem/s", n as f64 / mean * 1e9 / 1e6)
            }
            _ => String::new(),
        };
        println!("{full:<50} {mean:>12.1} ns/iter  [{min:.1} .. {max:.1}]{thr}");
    }
}

/// Timer handed to benchmark closures.
pub struct Bencher {
    /// Mean ns/iteration per sample.
    samples: Vec<f64>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher {
    /// Times `routine`, storing per-iteration samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: how many iterations fit in ~1/10 of a sample budget.
        let calib_start = Instant::now();
        let mut calib_iters = 0u64;
        while calib_start.elapsed() < Duration::from_millis(5) && calib_iters < 1_000_000 {
            std::hint::black_box(routine());
            calib_iters += 1;
        }
        let per_iter = calib_start.elapsed().as_nanos() as f64 / calib_iters as f64;
        let budget = self.measurement_time.as_nanos() as f64 / self.sample_size as f64;
        let iters_per_sample = ((budget / per_iter.max(1.0)) as u64).clamp(1, 10_000_000);

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                std::hint::black_box(routine());
            }
            self.samples
                .push(start.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

/// Re-export for code importing `criterion::black_box`.
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30));
        let mut group = c.benchmark_group("shim");
        let mut count = 0u64;
        group.throughput(Throughput::Bytes(64));
        group.bench_function("counter", |b| {
            b.iter(|| {
                count += 1;
                count
            })
        });
        group.bench_with_input(BenchmarkId::new("with_input", 7), &7u32, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
        assert!(count > 0);
    }

    criterion_group! {
        name = smoke;
        config = Criterion::default().sample_size(2).measurement_time(Duration::from_millis(10));
        targets = smoke_target
    }

    fn smoke_target(c: &mut Criterion) {
        c.benchmark_group("g")
            .bench_function("f", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn group_macro_expands() {
        smoke();
    }
}
