//! Property-based tests over the core invariants (proptest).

use proptest::prelude::*;
use std::sync::Arc;
use switchless_core::policy::{
    choose_workers_weighted, wasted_cycles, MicroQuantumReport, PolicyParams, PolicyStep,
    SchedulerPolicy,
};
use switchless_core::{
    CpuSpec, FaultInjector, FaultPlan, OcallDispatcher, OcallRequest, OcallTable, WorkerState,
    ZcConfig, MAX_OCALL_ARGS,
};
use zc_switchless_repro::sgx_sim::hostfs::{HostFs, OpenMode, Whence};
use zc_switchless_repro::sgx_sim::tlibc::{memcpy_vanilla, memcpy_zc};
use zc_switchless_repro::sgx_sim::Enclave;
use zc_switchless_repro::zc_switchless::ZcRuntime;
use zc_switchless_repro::zc_workloads::crypto::{cbc, Aes256};

proptest! {
    /// The argmin the policy picks is really the minimum of the weighted
    /// objective, with ties broken towards fewer workers.
    #[test]
    fn policy_argmin_matches_brute_force(
        fallbacks in prop::collection::vec(0u64..10_000, 1..9),
        t_es in 1_000u64..50_000,
        mq in 10_000u64..1_000_000,
        weight in 1u64..32,
    ) {
        let reports: Vec<MicroQuantumReport> = fallbacks
            .iter()
            .enumerate()
            .map(|(w, &f)| MicroQuantumReport { workers: w, fallbacks: f })
            .collect();
        let chosen = choose_workers_weighted(&reports, t_es, mq, weight);
        let u = |r: &MicroQuantumReport| wasted_cycles(r.fallbacks * weight, t_es, r.workers, mq);
        let best = reports.iter().map(u).min().unwrap();
        prop_assert_eq!(u(&reports[chosen]), best, "chosen count must achieve the minimum");
        // Tie-break: nothing strictly smaller with fewer workers.
        for r in &reports[..chosen] {
            prop_assert!(u(r) > best, "a smaller worker count with equal waste must win");
        }
    }

    /// The scheduler phase machine follows schedule, probe 0..=N, schedule
    /// forever, regardless of the fallback inputs.
    #[test]
    fn policy_phase_sequence_is_invariant(
        fallback_feed in prop::collection::vec(0u64..100_000, 30),
        max_workers in 1usize..6,
        initial in 0usize..8,
    ) {
        let params = PolicyParams {
            t_es_cycles: 13_500,
            quantum_cycles: 38_000_000,
            mu_inverse: 100,
            max_workers,
            fallback_weight: 8,
        };
        let mut policy = SchedulerPolicy::new(params, initial);
        let mut i = 0;
        let mut feed = fallback_feed.into_iter().cycle();
        // One full cycle: schedule + (max+1) probes + schedule.
        loop {
            let step = policy.next(feed.next().unwrap());
            prop_assert!(step.workers() <= max_workers);
            i += 1;
            if i > 3 * (max_workers + 2) {
                break;
            }
        }
        prop_assert!(policy.decisions() >= 2, "several configuration phases must complete");
    }

    /// Both memcpy implementations agree with the source for arbitrary
    /// contents, lengths and alignment phases.
    #[test]
    fn memcpy_implementations_agree(
        data in prop::collection::vec(any::<u8>(), 0..2048),
        dphase in 0usize..8,
        sphase in 0usize..8,
    ) {
        let n = data.len();
        let mut src_buf = vec![0u8; n + 16];
        let soff = (8 - (src_buf.as_ptr() as usize) % 8) % 8 + sphase;
        src_buf[soff..soff + n].copy_from_slice(&data);
        let mut d1 = vec![0u8; n + 16];
        let doff = (8 - (d1.as_ptr() as usize) % 8) % 8 + dphase;
        let mut d2 = d1.clone();
        let doff2 = (8 - (d2.as_ptr() as usize) % 8) % 8 + dphase;
        memcpy_vanilla(&mut d1[doff..doff + n], &src_buf[soff..soff + n]);
        memcpy_zc(&mut d2[doff2..doff2 + n], &src_buf[soff..soff + n]);
        prop_assert_eq!(&d1[doff..doff + n], &data[..]);
        prop_assert_eq!(&d2[doff2..doff2 + n], &data[..]);
    }

    /// AES-256-CBC round-trips arbitrary plaintexts under arbitrary keys.
    #[test]
    fn cbc_roundtrip(
        key in prop::array::uniform32(any::<u8>()),
        iv in prop::array::uniform16(any::<u8>()),
        pt in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let aes = Aes256::new(&key);
        let ct = cbc::encrypt(&aes, &iv, &pt);
        prop_assert_eq!(ct.len() % 16, 0);
        prop_assert!(ct.len() > pt.len());
        let back = cbc::decrypt(&aes, &iv, &ct).unwrap();
        prop_assert_eq!(back, pt);
    }

    /// The host filesystem behaves like a byte-array oracle under random
    /// write/seek sequences.
    #[test]
    fn hostfs_matches_vec_oracle(ops in prop::collection::vec((0u8..3, 0usize..200, any::<u8>()), 1..40)) {
        let fs = HostFs::new();
        let fd = fs.open("/oracle", OpenMode::ReadWrite).unwrap();
        let mut oracle: Vec<u8> = Vec::new();
        let mut pos: usize = 0;
        for (kind, arg, byte) in ops {
            match kind {
                0 => {
                    // write `arg % 32 + 1` bytes of `byte`.
                    let n = arg % 32 + 1;
                    let data = vec![byte; n];
                    fs.write(fd, &data).unwrap();
                    if pos > oracle.len() {
                        oracle.resize(pos, 0);
                    }
                    let overlap = (oracle.len().saturating_sub(pos)).min(n);
                    oracle[pos..pos + overlap].copy_from_slice(&data[..overlap]);
                    oracle.extend_from_slice(&data[overlap..]);
                    pos += n;
                }
                1 => {
                    // absolute seek within a sane range.
                    pos = arg;
                    fs.seek(fd, arg as i64, Whence::Set).unwrap();
                }
                _ => {
                    // read up to `arg % 16` bytes and compare.
                    let n = arg % 16;
                    let mut got = Vec::new();
                    fs.read(fd, n, &mut got).unwrap();
                    let start = pos.min(oracle.len());
                    let end = (pos + n).min(oracle.len());
                    prop_assert_eq!(&got[..], &oracle[start..end]);
                    pos = end.max(pos);
                }
            }
        }
        prop_assert_eq!(fs.file_contents("/oracle").unwrap(), oracle);
    }

    /// One full policy cycle is exactly: a scheduling quantum, then
    /// `N/2 + 1` configuration micro-quanta probing `0, 1, …, N/2`
    /// workers in order (each lasting `µQ` cycles), then a scheduling
    /// quantum whose worker count is the weighted argmin of the probed
    /// fallback counts — for arbitrary machine shapes and fallback feeds.
    #[test]
    fn policy_cycle_is_schedule_probes_argmin_schedule(
        max_workers in 1usize..8,
        initial in 0usize..8,
        weight in 1u64..16,
        feed in prop::collection::vec(0u64..50_000, 16),
    ) {
        let params = PolicyParams {
            t_es_cycles: 13_500,
            quantum_cycles: 38_000_000,
            mu_inverse: 100,
            max_workers,
            fallback_weight: weight,
        };
        let mut policy = SchedulerPolicy::new(params, initial);
        let first = policy.next(0);
        prop_assert_eq!(first, PolicyStep::Schedule {
            workers: initial.min(max_workers),
            duration_cycles: params.quantum_cycles,
        });
        let mut feed_iter = feed.into_iter().cycle();
        // Finish the scheduling quantum (its fallback count is ignored)
        // and walk the configuration phase.
        let mut step = policy.next(feed_iter.next().unwrap());
        let mut probed = Vec::new();
        let mut fed = Vec::new();
        let decision = loop {
            match step {
                PolicyStep::Probe { workers, duration_cycles } => {
                    prop_assert_eq!(
                        duration_cycles,
                        params.micro_quantum_cycles(),
                        "every probe lasts exactly one micro-quantum"
                    );
                    probed.push(workers);
                    let f = feed_iter.next().unwrap();
                    fed.push(f);
                    step = policy.next(f);
                }
                PolicyStep::Schedule { workers, duration_cycles } => {
                    prop_assert_eq!(duration_cycles, params.quantum_cycles);
                    break workers;
                }
            }
        };
        // Exactly N/2 + 1 probes, in ascending order 0..=N/2.
        prop_assert_eq!(&probed, &(0..=max_workers).collect::<Vec<_>>());
        // The decision is the weighted argmin over exactly the fed
        // fallback counts.
        let reports: Vec<MicroQuantumReport> = fed
            .iter()
            .enumerate()
            .map(|(w, &f)| MicroQuantumReport { workers: w, fallbacks: f })
            .collect();
        let expect = choose_workers_weighted(
            &reports,
            params.t_es_cycles,
            params.micro_quantum_cycles(),
            weight,
        );
        prop_assert_eq!(decision, expect);
        prop_assert_eq!(policy.current_workers(), expect);
        prop_assert_eq!(policy.decisions(), 1);
    }

    /// Under arbitrary scripted faults (crashes, stalls, pool exhaustion,
    /// transition failures) the worker status words only ever take legal
    /// edges of the UNUSED → RESERVED → PROCESSING → WAITING → UNUSED
    /// state machine (plus PAUSED/EXIT), and every call still completes
    /// with an intact payload.
    #[test]
    fn worker_transitions_stay_legal_under_faults(
        kind in 0u8..3,
        at in 0u64..4,
        exhaust in 0u64..6,
        trans_fail in 0u64..3,
        calls in 10u64..40,
    ) {
        let mut plan = FaultPlan::new()
            .exhaust_pool_first(exhaust)
            .fail_transitions_first(trans_fail);
        plan = match kind {
            1 => plan.crash_worker_at(at),
            2 => plan.stall_worker_at(at, 500_000),
            _ => plan,
        };
        let mut t = OcallTable::new();
        let echo = t.register(
            "echo",
            |_: &[u64; MAX_OCALL_ARGS], pin: &[u8], pout: &mut Vec<u8>| {
                pout.extend_from_slice(pin);
                pin.len() as i64
            },
        );
        let mut cpu = CpuSpec::paper_machine();
        cpu.logical_cpus = 4;
        let cfg = ZcConfig::for_cpu(cpu).with_quantum_ms(10).with_initial_workers(2);
        let rt = ZcRuntime::start_with_faults(
            cfg,
            Arc::new(t),
            Enclave::new_virtual(cpu),
            Arc::new(FaultInjector::new(plan)),
        )
        .unwrap();
        let log = rt.install_transition_log();
        let mut out = Vec::new();
        for i in 0..calls {
            let payload = vec![(i % 251) as u8; 8];
            // `trans_fail < 4` stays inside the retry budget, so every
            // call must succeed (switchlessly or via fallback).
            let (ret, _) = rt
                .dispatch(&OcallRequest::new(echo, &[]), &payload, &mut out)
                .unwrap();
            prop_assert_eq!(ret, 8);
            prop_assert_eq!(&out, &payload);
        }
        rt.shutdown();
        prop_assert!(!log.edges().is_empty(), "workers must have recorded transitions");
        let illegal = log.illegal_edges();
        prop_assert!(illegal.is_empty(), "illegal state-machine edges observed: {illegal:?}");
    }

    /// Random walks over the worker state machine: any sequence of legal
    /// transitions keeps the state consistent, and `can_transition` is
    /// antisymmetric on the happy path.
    #[test]
    fn worker_state_machine_random_walk(choices in prop::collection::vec(0usize..6, 1..100)) {
        let mut state = WorkerState::Unused;
        let mut visited = vec![state];
        for c in choices {
            let next = WorkerState::ALL[c];
            if state.can_transition(next) {
                state = next;
                visited.push(state);
            }
        }
        // EXIT is terminal: once reached, it must be last.
        if let Some(first_exit) = visited.iter().position(|s| *s == WorkerState::Exit) {
            prop_assert_eq!(first_exit, visited.len() - 1);
        }
        // A caller-owned state can only be reached from the previous
        // stage of the handoff.
        for w in visited.windows(2) {
            prop_assert!(w[0].can_transition(w[1]));
        }
    }
}

/// DES determinism under randomized workload mixes: two identical runs
/// produce identical reports (no hidden host-time dependence).
#[test]
fn des_randomized_workloads_are_deterministic() {
    use zc_des::ocall::CallDesc;
    use zc_des::{Mechanism, SimConfig, WorkloadSpec, ZcSimParams};

    let mut seed = 0x1234_5678u64;
    let mut rand = move || {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        seed >> 33
    };
    for _ in 0..5 {
        let pattern: Vec<CallDesc> = (0..(rand() % 6 + 1))
            .map(|_| CallDesc {
                class: (rand() % 3) as usize,
                pre_compute_cycles: rand() % 5_000,
                host_cycles: rand() % 20_000,
                payload_bytes: rand() % 4_096,
                ret_bytes: rand() % 1_024,
                non_idempotent: false,
            })
            .collect();
        let callers = (rand() % 4 + 1) as usize;
        let workloads = vec![
            WorkloadSpec::ClosedLoop {
                pattern,
                total_ops: rand() % 2_000 + 100,
            };
            callers
        ];
        let cfg = SimConfig::new(Mechanism::Zc(ZcSimParams::default()), workloads, 3);
        let a = zc_des::run(&cfg);
        let b = zc_des::run(&cfg);
        assert_eq!(a.duration_cycles, b.duration_cycles);
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.total_busy_cycles, b.total_busy_cycles);
        assert_eq!(
            a.counters.total_calls(),
            a.counters.ops_per_caller.iter().sum::<u64>(),
            "per-caller ops must add up"
        );
    }
}
