//! Property tests of the histogram percentile estimators: the log₂
//! buckets lose precision but must never lose *bracketing* — every
//! histogram-derived percentile bounds the exact sample percentile
//! within one bucket — and the windowed estimator must track a step
//! change in the observed load once the old windows age out.

use proptest::prelude::*;
use switchless_core::policy::ConvergenceTracker;
use switchless_core::rand::SplitMix64;
use zc_telemetry::quantile::{
    bucket_index, bucket_lower, bucket_upper, nearest_rank, percentile_bounds,
};
use zc_telemetry::{Quantiles, WindowedQuantiles, HIST_BUCKETS};

/// Exact nearest-rank percentile of a sample set.
fn exact_percentile(samples: &[u64], q: f64) -> u64 {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = nearest_rank(sorted.len() as u64, q);
    sorted[(rank as usize).saturating_sub(1)]
}

/// Histogram of a sample set in the telemetry-wide bucket geometry.
fn histogram(samples: &[u64]) -> [u64; HIST_BUCKETS] {
    let mut counts = [0u64; HIST_BUCKETS];
    for &s in samples {
        counts[bucket_index(s)] += 1;
    }
    counts
}

/// Minimal two-state MMPP-shaped sample stream: calm dwells draw near
/// `low`, burst dwells near `high`, dwell lengths random — the bursty
/// input of the overload experiments, kept self-contained so this
/// crate needs no dev-dependency on the DES arrival module.
fn mmpp_samples(seed: u64, n: usize, low: u64, high: u64) -> Vec<u64> {
    let mut rng = SplitMix64::new(seed);
    let mut bursting = false;
    let mut dwell = 4 + rng.next_below(8);
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        if dwell == 0 {
            bursting = !bursting;
            dwell = 4 + rng.next_below(8);
        }
        dwell -= 1;
        let base = if bursting { high } else { low };
        out.push(base + rng.next_below(base.max(2)));
    }
    out
}

proptest! {
    /// For arbitrary sample sets, each derived p50/p99/p99.9 brackets
    /// the exact nearest-rank percentile within one log₂ bucket: the
    /// returned bounds are precisely the edges of the bucket holding
    /// the exact value.
    #[test]
    fn percentiles_bracket_exact_within_one_bucket(
        samples in prop::collection::vec(0u64..1u64 << 50, 1..200),
    ) {
        let counts = histogram(&samples);
        for q in [0.50, 0.99, 0.999] {
            let exact = exact_percentile(&samples, q);
            let (lo, hi) = percentile_bounds(&counts, q).expect("non-empty histogram");
            prop_assert!(lo <= exact && exact <= hi,
                "q={}: exact {} outside [{}, {}]", q, exact, lo, hi);
            let b = bucket_index(exact);
            prop_assert_eq!(lo, bucket_lower(b));
            prop_assert_eq!(hi, bucket_upper(b));
        }
    }

    /// Derived quantiles are monotone: p50 <= p99 <= p99.9 on any
    /// histogram.
    #[test]
    fn quantiles_are_monotone(
        samples in prop::collection::vec(0u64..1u64 << 50, 1..200),
    ) {
        let q = Quantiles::from_counts(&histogram(&samples));
        prop_assert!(q.p50 <= q.p99);
        prop_assert!(q.p99 <= q.p999);
    }

    /// The windowed estimator tracks a step change in the load: before
    /// the shift its p50 sits in the low-value bucket; once the shift's
    /// windows displace the old ones, its p50 sits in the high-value
    /// bucket (a whole-history histogram would stay biased forever).
    #[test]
    fn windowed_estimator_tracks_step_change(
        low in 1u64..4096,
        shift in 8u32..20,
        per_window in 1usize..40,
        windows in 2usize..6,
    ) {
        let high = low << shift;
        prop_assert!(bucket_index(high) > bucket_index(low));
        let mut est = WindowedQuantiles::new(windows);
        for _ in 0..windows {
            for _ in 0..per_window {
                est.record(low);
            }
            est.roll();
        }
        // Settled on the old load.
        prop_assert_eq!(est.percentile(0.50), Some(bucket_upper(bucket_index(low))));
        // Step change: the load jumps to `high`.
        for _ in 0..windows {
            for _ in 0..per_window {
                est.record(high);
            }
            est.roll();
        }
        // Every low window has aged out; the estimate has converged.
        // (The open current window is empty, so `windows - 1` sealed
        // high windows remain in history.)
        prop_assert_eq!(est.count(), ((windows - 1) * per_window) as u64);
        prop_assert_eq!(est.percentile(0.50), Some(bucket_upper(bucket_index(high))));
        prop_assert_eq!(est.quantiles().p999, bucket_upper(bucket_index(high)));
    }

    /// Bracketing survives bursty MMPP-shaped input: bimodal samples
    /// concentrated in two far-apart bucket clusters (the overload
    /// experiments' arrival shape) still have every derived percentile
    /// bounding the exact one within its bucket, and the tail
    /// percentile must sit in the burst cluster — a bursty tail is
    /// precisely what a log₂ histogram must never smooth away.
    #[test]
    fn percentiles_bracket_exact_on_bursty_mmpp_input(
        seed in any::<u64>(),
        low in 1u64..2048,
        shift in 6u32..14,
    ) {
        let high = low << shift;
        let samples = mmpp_samples(seed, 300, low, high);
        let counts = histogram(&samples);
        for q in [0.50, 0.99, 0.999] {
            let exact = exact_percentile(&samples, q);
            let (lo, hi) = percentile_bounds(&counts, q).expect("non-empty histogram");
            prop_assert!(lo <= exact && exact <= hi,
                "q={}: exact {} outside [{}, {}]", q, exact, lo, hi);
            let b = bucket_index(exact);
            prop_assert_eq!(lo, bucket_lower(b));
            prop_assert_eq!(hi, bucket_upper(b));
        }
        let qs = Quantiles::from_counts(&counts);
        prop_assert!(qs.p50 <= qs.p99 && qs.p99 <= qs.p999);
        if samples.iter().any(|&s| s >= high) {
            prop_assert!(qs.p999 >= bucket_lower(bucket_index(high)),
                "p999 {} must reach the burst cluster at {}", qs.p999, high);
        }
    }

    /// The convergence tracker follows MMPP-modulated load: argmin
    /// decisions alternate between a calm and a burst worker count on
    /// random dwells of ≥ 2 decisions, so every state flip must yield
    /// exactly one convergence record between those two counts, and the
    /// tracker must end settled.
    #[test]
    fn convergence_tracker_follows_mmpp_load_states(
        seed in any::<u64>(),
        burst_workers in 2usize..32,
        dwell in 2u64..6,
    ) {
        let mut rng = SplitMix64::new(seed);
        let mut tracker = ConvergenceTracker::new();
        let mut bursting = false;
        let mut records = Vec::new();
        let mut now = 0u64;
        const DWELLS: usize = 12;
        for _ in 0..DWELLS {
            let workers = if bursting { burst_workers } else { 1 };
            for _ in 0..dwell + rng.next_below(3) {
                now += 100 + rng.next_below(50);
                if let Some(rec) = tracker.observe(workers, now) {
                    records.push(rec);
                }
            }
            bursting = !bursting;
        }
        // The first dwell sets the baseline; each of the 11 subsequent
        // flips re-settles (dwells are ≥ 2 decisions long).
        prop_assert_eq!(records.len(), DWELLS - 1);
        for (i, rec) in records.iter().enumerate() {
            let (from, to) = if i % 2 == 0 {
                (1u32, burst_workers as u32)
            } else {
                (burst_workers as u32, 1u32)
            };
            prop_assert_eq!(rec.from_workers, from);
            prop_assert_eq!(rec.to_workers, to);
            prop_assert!(rec.settle_cycles > 0);
            prop_assert!(rec.decisions >= 2);
        }
        prop_assert!(!tracker.shifting());
        // 12 dwells starting calm: the last dwell is a burst one.
        prop_assert_eq!(tracker.settled_workers(), Some(burst_workers));
    }
}
