//! Cycle clock and cost injection for the modelled CPU.
//!
//! The clock maps host wall-clock time onto cycles of the *modelled*
//! machine (`CpuSpec::freq_hz`). Injected costs — enclave transitions,
//! `pause` instructions — are realised as calibrated busy-spins so they
//! consume real CPU exactly like the hardware they stand in for.

use std::sync::Arc;
use std::time::Instant;
use switchless_core::cpu::CpuSpec;

/// Clock measuring elapsed cycles of the modelled CPU and providing
/// cost-injection spins.
///
/// Cheap to clone ([`Arc`] inside); all methods take `&self` and are
/// thread-safe.
///
/// # Example
///
/// ```
/// use sgx_sim::CycleClock;
/// use switchless_core::CpuSpec;
///
/// let clock = CycleClock::new(CpuSpec::paper_machine());
/// let t0 = clock.now_cycles();
/// clock.spin_cycles(10_000); // burn ~10k modelled cycles (~2.6 us)
/// assert!(clock.now_cycles() - t0 >= 10_000);
/// ```
#[derive(Debug, Clone)]
pub struct CycleClock {
    inner: Arc<Inner>,
}

#[derive(Debug)]
struct Inner {
    spec: CpuSpec,
    epoch: Instant,
}

impl CycleClock {
    /// New clock for the given machine model; cycle zero is "now".
    #[must_use]
    pub fn new(spec: CpuSpec) -> Self {
        CycleClock {
            inner: Arc::new(Inner {
                spec,
                epoch: Instant::now(),
            }),
        }
    }

    /// Machine model this clock measures.
    #[must_use]
    pub fn spec(&self) -> &CpuSpec {
        &self.inner.spec
    }

    /// Cycles of the modelled CPU elapsed since clock creation.
    #[must_use]
    pub fn now_cycles(&self) -> u64 {
        let ns = self.inner.epoch.elapsed().as_nanos();
        // cycles = ns * freq / 1e9, in u128 to avoid overflow.
        (ns * u128::from(self.inner.spec.freq_hz) / 1_000_000_000) as u64
    }

    /// Busy-spin until `cycles` modelled cycles have elapsed, consuming
    /// host CPU for the whole duration (cost injection).
    pub fn spin_cycles(&self, cycles: u64) {
        let start = Instant::now();
        let target_ns = u128::from(cycles) * 1_000_000_000 / u128::from(self.inner.spec.freq_hz);
        while start.elapsed().as_nanos() < target_ns {
            std::hint::spin_loop();
        }
    }

    /// One modelled `asm("pause")`: spins for `CpuSpec::pause_cycles`.
    pub fn pause(&self) {
        self.spin_cycles(self.inner.spec.pause_cycles);
    }

    /// One enclave transition round trip: spins for
    /// `CpuSpec::t_es_cycles` (the paper's `T_es` ≈ 13 500 cycles).
    pub fn enclave_transition(&self) {
        self.spin_cycles(self.inner.spec.t_es_cycles);
    }

    /// Elapsed seconds of the modelled machine since clock creation.
    #[must_use]
    pub fn now_secs(&self) -> f64 {
        self.inner.spec.cycles_to_secs(self.now_cycles())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_advance_monotonically() {
        let clock = CycleClock::new(CpuSpec::paper_machine());
        let a = clock.now_cycles();
        let b = clock.now_cycles();
        assert!(b >= a);
    }

    #[test]
    fn spin_consumes_at_least_requested_cycles() {
        let clock = CycleClock::new(CpuSpec::paper_machine());
        let t0 = clock.now_cycles();
        clock.spin_cycles(100_000); // ~26 us
        let dt = clock.now_cycles() - t0;
        assert!(dt >= 100_000, "spun only {dt} cycles");
        // Sanity bound: should not be wildly more (allow generous 100x
        // slack for CI preemption).
        assert!(dt < 10_000_000, "spun {dt} cycles, far over target");
    }

    #[test]
    fn pause_is_short() {
        let clock = CycleClock::new(CpuSpec::paper_machine());
        let t0 = clock.now_cycles();
        for _ in 0..10 {
            clock.pause();
        }
        assert!(clock.now_cycles() - t0 >= 10 * 140);
    }

    #[test]
    fn transition_costs_t_es() {
        let clock = CycleClock::new(CpuSpec::paper_machine());
        let t0 = clock.now_cycles();
        clock.enclave_transition();
        assert!(clock.now_cycles() - t0 >= 13_500);
    }

    #[test]
    fn clones_share_the_epoch() {
        let clock = CycleClock::new(CpuSpec::paper_machine());
        let c2 = clock.clone();
        clock.spin_cycles(50_000);
        assert!(c2.now_cycles() >= 50_000);
    }

    #[test]
    fn now_secs_tracks_cycles() {
        let clock = CycleClock::new(CpuSpec::paper_machine());
        clock.spin_cycles(38_000); // 10 us modelled
        assert!(clock.now_secs() >= 9e-6);
    }
}
