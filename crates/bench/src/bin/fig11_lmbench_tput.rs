//! Fig. 11: dynamic lmbench read/write throughput (plateau summary to
//! stdout, per-τ series to `results/fig11_<config>.csv`). Each
//! configuration is simulated once; Fig. 12's CPU series come from the
//! same runs (see fig12_lmbench_cpu).
//!
//! Usage: `fig11_lmbench_tput [--quick]`

use zc_bench::experiments::lmbench::{fig11, run_all, series_table, LmbenchParams};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let p = if quick {
        LmbenchParams {
            phase_secs: 1,
            ..LmbenchParams::default()
        }
    } else {
        LmbenchParams::default()
    };
    for workers in [2usize, 4] {
        let reports = run_all(&p, workers);
        let t = fig11(&p, &reports, workers);
        t.emit(Some(std::path::Path::new(&format!(
            "results/fig11_lmbench_tput_{workers}w.csv"
        ))));
        for (label, r) in &reports {
            let s = series_table(label, r);
            let path = format!("results/fig11_series_{label}.csv");
            if let Some(dir) = std::path::Path::new(&path).parent() {
                let _ = std::fs::create_dir_all(dir);
            }
            let _ = std::fs::write(&path, s.to_csv());
            eprintln!("wrote {path}");
        }
    }
}
