//! Cross-crate integration tests: real workloads over real switchless
//! runtimes, exercising the full stack (workload → dispatcher → worker
//! threads → host filesystem) under every mechanism.

use std::sync::Arc;
use switchless_core::{
    CallPath, CpuSpec, IntelConfig, OcallDispatcher, OcallRequest, OcallTable, ZcConfig,
};
use zc_switchless_repro::intel_switchless::IntelSwitchless;
use zc_switchless_repro::sgx_sim::hostfs::FsFuncs;
use zc_switchless_repro::sgx_sim::{Enclave, HostFs};
use zc_switchless_repro::zc_switchless::ZcRuntime;
use zc_switchless_repro::zc_workloads::crypto::{self, Aes256};
use zc_switchless_repro::zc_workloads::{EnclaveIo, KissDb};

/// Small machine model so tests stay snappy on any host.
fn test_cpu() -> CpuSpec {
    let mut cpu = CpuSpec::paper_machine();
    cpu.logical_cpus = 4; // max 2 zc workers
    cpu
}

fn fixture() -> (HostFs, Arc<OcallTable>, FsFuncs, Enclave) {
    let fs = HostFs::new();
    let mut table = OcallTable::new();
    let funcs = FsFuncs::register(&mut table, &fs);
    (fs, Arc::new(table), funcs, Enclave::new(test_cpu()))
}

#[test]
fn kissdb_works_identically_under_all_mechanisms() {
    // The same workload must produce byte-identical database files no
    // matter which dispatcher carries the ocalls.
    let reference = {
        let (fs, table, funcs, enclave) = fixture();
        let disp = zc_switchless_repro::sgx_sim::RegularOcall::new(table, enclave);
        let io = EnclaveIo::new(&disp, funcs);
        let mut db = KissDb::open(io, "/db", 64, 8, 8).unwrap();
        for i in 0..300u64 {
            db.put(&i.to_le_bytes(), &(i * 3).to_le_bytes()).unwrap();
        }
        db.close().unwrap();
        fs.file_contents("/db").unwrap()
    };

    // Intel switchless.
    {
        let (fs, table, funcs, enclave) = fixture();
        let rt = IntelSwitchless::start(
            IntelConfig::new(1, [funcs.fseeko, funcs.fwrite]),
            table,
            enclave,
        )
        .unwrap();
        let io = EnclaveIo::new(&rt, funcs);
        let mut db = KissDb::open(io, "/db", 64, 8, 8).unwrap();
        for i in 0..300u64 {
            db.put(&i.to_le_bytes(), &(i * 3).to_le_bytes()).unwrap();
        }
        db.close().unwrap();
        assert_eq!(
            fs.file_contents("/db").unwrap(),
            reference,
            "intel-switchless run must produce an identical database"
        );
        rt.shutdown();
    }

    // ZC-SWITCHLESS.
    {
        let (fs, table, funcs, enclave) = fixture();
        let cfg = ZcConfig::for_cpu(test_cpu()).with_quantum_ms(5);
        let rt = ZcRuntime::start(cfg, table, enclave).unwrap();
        let io = EnclaveIo::new(&rt, funcs);
        let mut db = KissDb::open(io, "/db", 64, 8, 8).unwrap();
        for i in 0..300u64 {
            db.put(&i.to_le_bytes(), &(i * 3).to_le_bytes()).unwrap();
        }
        db.close().unwrap();
        assert_eq!(
            fs.file_contents("/db").unwrap(),
            reference,
            "zc-switchless run must produce an identical database"
        );
        rt.shutdown();
    }
}

#[test]
fn crypto_pipeline_round_trips_over_zc() {
    let (fs, table, funcs, enclave) = fixture();
    let plaintext: Vec<u8> = (0..100_000u32).map(|i| (i % 251) as u8).collect();
    fs.put_file("/plain", plaintext.clone());
    let cfg = ZcConfig::for_cpu(test_cpu()).with_quantum_ms(5);
    let rt = ZcRuntime::start(cfg, table, enclave).unwrap();
    let io = EnclaveIo::new(&rt, funcs);
    let aes = Aes256::new(&[3u8; crypto::KEY_SIZE]);
    let iv = [9u8; crypto::BLOCK];
    crypto::encrypt_file(&io, &aes, &iv, "/plain", "/ct", 4096).unwrap();
    crypto::decrypt_file(&io, &aes, &iv, "/ct", "/pt").unwrap();
    assert_eq!(fs.file_contents("/pt").unwrap(), plaintext);
    let snap = rt.stats().snapshot();
    assert!(snap.total_calls() > 50, "pipeline must issue many ocalls");
    rt.shutdown();
}

#[test]
fn concurrent_mixed_workload_over_zc_is_correct() {
    // Two threads: one kissdb writer, one crypto encryptor, sharing one
    // ZC runtime — the adaptive scheduler must not corrupt either.
    let (fs, table, funcs, enclave) = fixture();
    fs.put_file("/plain", vec![7u8; 50_000]);
    let cfg = ZcConfig::for_cpu(test_cpu()).with_quantum_ms(5);
    let rt = Arc::new(ZcRuntime::start(cfg, table, enclave).unwrap());

    std::thread::scope(|s| {
        let rt_db = Arc::clone(&rt);
        let db_thread = s.spawn(move || {
            let io = EnclaveIo::new(rt_db.as_ref(), funcs);
            let mut db = KissDb::open(io, "/db", 32, 8, 8).unwrap();
            for i in 0..500u64 {
                db.put(&i.to_le_bytes(), &(!i).to_le_bytes()).unwrap();
            }
            for i in (0..500u64).step_by(7) {
                assert_eq!(
                    db.get(&i.to_le_bytes()).unwrap(),
                    Some((!i).to_le_bytes().to_vec())
                );
            }
            db.close().unwrap();
        });
        let rt_enc = Arc::clone(&rt);
        let enc_thread = s.spawn(move || {
            let io = EnclaveIo::new(rt_enc.as_ref(), funcs);
            let aes = Aes256::new(&[1u8; crypto::KEY_SIZE]);
            let iv = [0u8; crypto::BLOCK];
            let (pin, _) = crypto::encrypt_file(&io, &aes, &iv, "/plain", "/ct", 2048).unwrap();
            assert_eq!(pin, 50_000);
        });
        db_thread.join().unwrap();
        enc_thread.join().unwrap();
    });
    rt.shutdown();
}

#[test]
fn fallback_paths_preserve_results() {
    // Force heavy fallback by limiting zc pools to the minimum; payload
    // integrity must hold on both the switchless and fallback paths.
    let (_fs, table, funcs, enclave) = fixture();
    let cfg = ZcConfig::for_cpu(test_cpu())
        .with_quantum_ms(5)
        .with_pool_bytes(0);
    let rt = ZcRuntime::start(cfg, table, enclave).unwrap();
    let mut out = Vec::new();
    let (fd, _) = rt
        .dispatch(
            &OcallRequest::new(funcs.fopen, &[1]),
            b"/fallbacks",
            &mut out,
        )
        .unwrap();
    let mut fallbacks = 0;
    for i in 0..200u32 {
        let payload = vec![i as u8; 512]; // larger than the 256 B pool
        let (ret, path) = rt
            .dispatch(
                &OcallRequest::new(funcs.fwrite, &[fd as u64]),
                &payload,
                &mut out,
            )
            .unwrap();
        assert_eq!(ret, 512);
        if path == CallPath::Fallback {
            fallbacks += 1;
        }
    }
    assert!(
        fallbacks > 0,
        "oversized payloads must exercise the fallback path"
    );
    rt.shutdown();
}

#[test]
fn intel_and_zc_stats_account_every_call() {
    let (_fs, table, funcs, enclave) = fixture();
    let intel = IntelSwitchless::start(
        IntelConfig::new(1, [funcs.fwrite]),
        Arc::clone(&table),
        enclave.clone(),
    )
    .unwrap();
    let mut out = Vec::new();
    let (fd, _) = intel
        .dispatch(&OcallRequest::new(funcs.fopen, &[1]), b"/a", &mut out)
        .unwrap();
    for _ in 0..50 {
        intel
            .dispatch(
                &OcallRequest::new(funcs.fwrite, &[fd as u64]),
                b"x",
                &mut out,
            )
            .unwrap();
    }
    intel
        .dispatch(
            &OcallRequest::new(funcs.fclose, &[fd as u64]),
            &[],
            &mut out,
        )
        .unwrap();
    let snap = intel.stats().snapshot();
    assert_eq!(snap.total_calls(), 52);
    assert_eq!(
        snap.regular, 2,
        "fopen/fclose are not switchless-configured"
    );
    intel.shutdown();
}
