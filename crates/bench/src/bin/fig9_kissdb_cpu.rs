//! Fig. 9: kissdb average %CPU for the same configurations as Fig. 8.
//!
//! Usage: `fig9_kissdb_cpu [--quick]`

use zc_bench::experiments::kissdb::fig9;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let keys: Vec<u64> = if quick {
        vec![500, 2_000]
    } else {
        vec![500, 1_000, 2_500, 5_000, 7_500, 10_000]
    };
    for workers in [2usize, 4] {
        let t = fig9(&keys, workers);
        t.emit(Some(std::path::Path::new(&format!(
            "results/fig9_kissdb_cpu_{workers}w.csv"
        ))));
    }
}
