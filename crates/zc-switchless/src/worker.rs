//! The ZC worker thread loop.
//!
//! A worker spins on its [`WorkerBuffer`] status word:
//!
//! * `PROCESSING` — a caller posted a request: invoke the host function,
//!   publish results, move to `WAITING`;
//! * `UNUSED` — idle: honour the scheduler command (`Deactivate` → park
//!   in `PAUSED`, `Exit` → terminate) or keep pause-spinning for work;
//! * `RESERVED` / `WAITING` — owned by a caller mid-handoff: spin.
//!
//! Idle spinning is the *deliberate* CPU cost the ZC scheduler manages:
//! for every active worker there is always exactly one busy-waiting
//! thread (paper §IV-A).

use crate::buffer::{SchedCommand, WorkerBuffer};
use crate::runtime::{Shared, YIELD_EVERY};
use switchless_core::{ByzantineFault, GuardKind, WorkerFault, WorkerState};

/// Body of worker thread `index` serving buffer `me` (passed explicitly
/// rather than read from the slot: a supervisor respawn swaps the slot
/// to a fresh buffer, and each thread generation must keep serving the
/// buffer it was spawned with). Returns when the worker reaches the
/// `EXIT` state.
pub(crate) fn worker_loop(shared: &Shared, index: usize, me: &WorkerBuffer) {
    me.set_thread(std::thread::current());
    let meter = shared
        .accounting
        .as_ref()
        .map(|acc| acc.register(format!("zc-worker-{index}")));
    let mut busy_since = shared.clock.now_cycles();
    let mut spins: u32 = 0;

    loop {
        // Both shared words are host-writable: garbage in either is a
        // guard violation, never a panic — count it, quarantine the
        // buffer and retire the thread (the supervisor respawns the
        // slot; callers re-route around the poison).
        let state = match me.state() {
            Ok(s) => s,
            Err(v) => {
                report_own_violation(shared, me, index, v.kind);
                break;
            }
        };
        match state {
            WorkerState::Processing => {
                spins = 0;
                if !execute(shared, me, index) {
                    // Injected crash: the thread dies abruptly. The buffer
                    // stays POISONED in PROCESSING, so it can never be
                    // claimed again — the quarantine the caller re-routes
                    // around.
                    break;
                }
            }
            WorkerState::Unused => match me.sched_command() {
                Err(v) => {
                    report_own_violation(shared, me, index, v.kind);
                    break;
                }
                Ok(SchedCommand::Exit) => {
                    if me.try_transition(WorkerState::Unused, WorkerState::Exit) {
                        break;
                    }
                }
                Ok(SchedCommand::Deactivate) => {
                    if me.try_transition(WorkerState::Unused, WorkerState::Paused) {
                        // Account the spin time up to here as busy, the
                        // parked time as idle.
                        let now = shared.clock.now_cycles();
                        if let Some(m) = &meter {
                            m.add_busy(now.saturating_sub(busy_since));
                        }
                        let parked_at = now;
                        park_until_released(me);
                        busy_since = shared.clock.now_cycles();
                        if let Some(m) = &meter {
                            m.add_idle(busy_since.saturating_sub(parked_at));
                        }
                        if me.state() == Ok(WorkerState::Exit) {
                            // Final cleanup happened inside the park loop.
                            if let Some(m) = &meter {
                                m.add_busy(0);
                            }
                            return;
                        }
                    }
                }
                Ok(SchedCommand::Run) => {
                    shared.clock.pause();
                    spins = spins.wrapping_add(1);
                    if spins.is_multiple_of(YIELD_EVERY) {
                        std::thread::yield_now();
                    }
                }
            },
            WorkerState::Reserved | WorkerState::Waiting => {
                if me.is_poisoned() {
                    // The caller quarantined this buffer mid-handoff
                    // (e.g. a guard rejected our reply) and will never
                    // release it — retire instead of spinning forever.
                    break;
                }
                // Caller-owned interim states: stay hot.
                shared.clock.pause();
                spins = spins.wrapping_add(1);
                if spins.is_multiple_of(YIELD_EVERY) {
                    std::thread::yield_now();
                }
            }
            WorkerState::Paused => {
                // Only reachable on a spurious unpark race; re-park.
                park_until_released(me);
                if me.state() == Ok(WorkerState::Exit) {
                    break;
                }
            }
            WorkerState::Exit => break,
        }
    }
    if let Some(m) = &meter {
        m.add_busy(shared.clock.now_cycles().saturating_sub(busy_since));
    }
}

/// Park while `PAUSED`. Returns when the scheduler reactivates the worker
/// (state left `PAUSED`) or after self-transitioning to `EXIT` on an exit
/// command.
fn park_until_released(me: &WorkerBuffer) {
    loop {
        let cmd = match me.sched_command() {
            Ok(c) => c,
            Err(_) => {
                // Garbage on the command word while parked: quarantine
                // and self-retire (PAUSED -> EXIT is a legal edge). The
                // worker loop sees EXIT and terminates the thread.
                me.poison();
                let _ = me.try_transition(WorkerState::Paused, WorkerState::Exit);
                return;
            }
        };
        if cmd == SchedCommand::Exit {
            // Either we win PAUSED -> EXIT, or the scheduler already
            // moved us out of PAUSED (reactivation raced the shutdown).
            if me.try_transition(WorkerState::Paused, WorkerState::Exit)
                || me.state() == Ok(WorkerState::Exit)
            {
                return;
            }
        }
        if me.state() != Ok(WorkerState::Paused) {
            return; // reactivated (or the status word was corrupted —
                    // the worker loop's guard handles that)
        }
        std::thread::park();
    }
}

/// A worker detected garbage on one of its *own* shared words: count
/// and trace the violation, then quarantine the buffer so no caller
/// claims it again. The thread retires right after. The failure is also
/// charged to the supervisor ledger (with no blacklist culprit — the
/// worker cannot know which call shape the host was attacking) so the
/// quarantined slot is respawned instead of being lost forever.
fn report_own_violation(shared: &Shared, me: &WorkerBuffer, index: usize, kind: GuardKind) {
    #[cfg(not(feature = "telemetry"))]
    let _ = kind;
    shared.stats.record_guard_violation();
    #[cfg(feature = "telemetry")]
    shared.telemetry_event(
        zc_telemetry::Origin::Worker(index as u32),
        zc_telemetry::Event::GuardViolation {
            worker: index as u32,
            kind,
        },
    );
    me.poison();
    if let Some(sup) = &shared.supervisor {
        sup.lock().record_failure(
            index,
            switchless_core::FailureKind::Crash,
            None,
            shared.clock.now_cycles(),
        );
    }
}

/// Execute the posted request and publish results
/// (`PROCESSING -> WAITING`). Returns `false` if the worker thread must
/// retire: an injected crash (the caller's request was *not* invoked),
/// a torn request slot, or a Byzantine status corruption that leaves the
/// caller to detect the lie and quarantine the buffer.
fn execute(shared: &Shared, me: &WorkerBuffer, index: usize) -> bool {
    #[cfg(not(feature = "telemetry"))]
    let _ = index;
    #[cfg(feature = "telemetry")]
    macro_rules! trace_fault {
        ($kind:ident) => {
            shared.telemetry_event(
                zc_telemetry::Origin::Worker(index as u32),
                zc_telemetry::Event::Fault {
                    kind: zc_telemetry::FaultKind::$kind,
                },
            )
        };
    }
    if let Some(faults) = &shared.faults {
        match faults.on_worker_call() {
            WorkerFault::None => {}
            WorkerFault::Stall(cycles) => {
                #[cfg(feature = "telemetry")]
                trace_fault!(WorkerStall);
                shared.clock.spin_cycles(cycles);
            }
            WorkerFault::Crash => {
                #[cfg(feature = "telemetry")]
                trace_fault!(WorkerCrash);
                // Poison *before* touching the slot: the request has not
                // been invoked yet, so the caller re-executing it through
                // the fallback path is side-effect-safe.
                me.poison();
                return false;
            }
            WorkerFault::Hang => {
                #[cfg(feature = "telemetry")]
                trace_fault!(WorkerHang);
                me.poison();
                // Wedge forever: unparks (e.g. from shutdown) just re-park.
                // Shutdown must abandon this thread via its drain timeout.
                loop {
                    std::thread::park();
                }
            }
        }
    }
    if me.is_poisoned() {
        // The caller-side watchdog cancelled this call (e.g. after an
        // injected stall outlived the deadline) and re-routed it to a
        // regular ocall. The request must NOT be invoked here too —
        // retire the thread instead; the supervisor respawns the slot.
        return false;
    }
    // Byzantine adversary: a hostile host corrupting the shared words /
    // reply metadata this worker is about to publish. The *trusted* side
    // (caller guard) must detect every one of these lies.
    let byz = shared
        .faults
        .as_ref()
        .map_or(ByzantineFault::None, |f| f.on_byzantine());
    if byz == ByzantineFault::TornRequest {
        // The host overwrites the posted request while we own the slot.
        me.with_slot(|slot| slot.request = None);
    }
    let torn = me.with_pool(|pool| {
        me.with_slot(|slot| {
            // A PROCESSING slot without a request is host interference
            // (torn overwrite), not a protocol bug: handled gracefully,
            // never a panic.
            let Some(req) = slot.request.take() else {
                return true;
            };
            let (off, len) = slot.payload_in;
            let payload_in = pool.slice(off, len);
            #[cfg(feature = "telemetry")]
            let exec_start = shared.clock.now_cycles();
            // Contain host-function panics: an unwinding worker would
            // leave its caller spinning forever. The host side is
            // untrusted anyway — a crash there maps to an error return,
            // mirroring how a killed ocall surfaces in SGX.
            let ret = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                shared
                    .table
                    .invoke(&req, payload_in, &mut slot.payload_out)
                    .unwrap_or(-1)
            }))
            .unwrap_or(-1);
            #[cfg(feature = "telemetry")]
            {
                slot.exec_cycles = shared.clock.now_cycles().saturating_sub(exec_start);
            }
            slot.reply.ret = ret;
            let actual = slot.payload_out.len() as u32;
            // An honest worker declares exactly the bytes present and
            // echoes the request's sequence tag; the Byzantine variants
            // lie about one of the two.
            slot.reply.payload_len = match byz {
                ByzantineFault::OversizeReplyLen => actual.wrapping_add(1),
                // An empty reply cannot be undersold; the +1 lie still
                // mismatches and is caught as an oversize violation.
                ByzantineFault::UndersizeReplyLen => actual.checked_sub(1).unwrap_or(1),
                _ => actual,
            };
            slot.reply.seq = match byz {
                ByzantineFault::StaleSeqReplay => req.seq.wrapping_sub(1),
                _ => req.seq,
            };
            false
        })
    });
    if torn {
        report_own_violation(shared, me, index, GuardKind::TornRequest);
        return false;
    }
    if byz == ByzantineFault::FlipStatus {
        // The host scribbles garbage on the status word instead of the
        // legal PROCESSING -> WAITING edge. Retire *without* poisoning:
        // the spinning caller must read the garbage itself, emit the
        // violation and quarantine the slot.
        me.host_write_status(0xEE);
        return false;
    }
    if byz == ByzantineFault::GarbageCommand {
        // The host scribbles on the scheduler-command word. The reply
        // itself is honest — this worker detects the garbage on its next
        // idle iteration and self-quarantines.
        me.host_write_sched_cmd(0xEE);
    }
    let ok = me.try_transition(WorkerState::Processing, WorkerState::Waiting);
    debug_assert!(ok, "PROCESSING -> WAITING must not be contended");
    true
}
