//! Property test: under *arbitrary* Byzantine corruption schedules the
//! ZC runtime never panics, never returns corrupted results, and never
//! loses a call — every rejected switchless attempt completes through
//! the fallback path, so the call ledger stays conserved.

use proptest::prelude::*;
use std::sync::Arc;
use switchless_core::{
    CpuSpec, FaultInjector, FaultPlan, OcallDispatcher, OcallRequest, OcallTable, ZcConfig,
    MAX_OCALL_ARGS,
};
use zc_switchless::ZcRuntime;

const CALLS: usize = 40;

/// Build a plan from `(site, kind)` pairs; `kind` indexes the six
/// corruption behaviours. Later entries for the same site lose to the
/// earlier one via the injector's fixed precedence, which is fine — the
/// property is about survival, not exact counts.
fn plan_from(schedule: &[(u64, usize)]) -> FaultPlan {
    let mut plan = FaultPlan::new();
    for &(site, kind) in schedule {
        plan = match kind {
            0 => plan.flip_status_at(site),
            1 => plan.garbage_command_at(site),
            2 => plan.oversize_reply_at(site),
            3 => plan.undersize_reply_at(site),
            4 => plan.stale_seq_at(site),
            _ => plan.torn_request_at(site),
        };
    }
    plan
}

proptest! {
    /// Forty checksummed calls against a host lying per an arbitrary
    /// schedule: every call returns the honest checksum and the stats
    /// ledger conserves (`issued == switchless + fallback + regular +
    /// cancelled`). Corrupted slots are quarantined, not respawned
    /// (supervision stays off), so the run also exercises the
    /// all-workers-poisoned degraded mode.
    #[test]
    fn arbitrary_corruption_never_loses_or_corrupts_calls(
        schedule in prop::collection::vec((0u64..30, 0usize..6), 0..12),
    ) {
        let mut cpu = CpuSpec::paper_machine();
        cpu.logical_cpus = 4;
        let mut table = OcallTable::new();
        let sum = table.register(
            "sum",
            |_: &[u64; MAX_OCALL_ARGS], pin: &[u8], pout: &mut Vec<u8>| {
                let s: u64 = pin.iter().map(|&b| u64::from(b)).sum();
                pout.extend_from_slice(&s.to_le_bytes());
                s as i64
            },
        );
        let faults = Arc::new(FaultInjector::new(plan_from(&schedule)));
        let rt = ZcRuntime::start_with_faults(
            ZcConfig::for_cpu(cpu),
            Arc::new(table),
            sgx_sim::Enclave::new(cpu),
            Arc::clone(&faults),
        )
        .unwrap();

        let mut out = Vec::new();
        for i in 0..CALLS {
            let byte = (i % 251 + 1) as u8;
            let len = 1 + i % 17;
            let payload = vec![byte; len];
            let expect = u64::from(byte) * len as u64;
            let (ret, _path) = rt
                .dispatch(&OcallRequest::new(sum, &[]), &payload, &mut out)
                .unwrap();
            prop_assert_eq!(ret, expect as i64, "call {} returned a corrupted checksum", i);
            prop_assert_eq!(&out[..], &expect.to_le_bytes()[..], "call {} reply bytes", i);
        }

        let snap = rt.stats().snapshot();
        prop_assert_eq!(snap.issued, CALLS as u64);
        prop_assert!(
            snap.is_conserved(),
            "call ledger lost calls under corruption: {:?}",
            snap
        );
        // Every *detected* lie must have routed somewhere countable:
        // violations never exceed the corruptions actually injected.
        prop_assert!(snap.guard_violations <= faults.counts().byzantine_total());
        rt.shutdown();
    }
}
