//! Adversarial soak of the ZC runtime against a Byzantine (lying) host.
//!
//! A seeded corruption schedule drives all six corruption kinds through
//! one worker slot while a single caller keeps issuing checksummed
//! ocalls. The trusted-side guards must detect every lie, re-route the
//! affected call through the regular fallback (no call lost, no wrong
//! bytes returned), quarantine the slot for the supervisor to respawn —
//! and the whole run must be deterministic: the same schedule yields a
//! byte-identical canonical guard-violation trace on every run.

#![cfg(feature = "telemetry")]

use std::sync::Arc;
use std::time::{Duration, Instant};
use switchless_core::{
    CallPath, CpuSpec, FaultInjector, FaultPlan, OcallDispatcher, OcallRequest, OcallTable,
    SuperviseParams, ZcConfig, MAX_OCALL_ARGS,
};
use zc_switchless::ZcRuntime;
use zc_telemetry::export::canonical_jsonl;
use zc_telemetry::Telemetry;

/// Two logical CPUs → exactly one ZC worker: every corruption lands on
/// slot 0 and every claim resolves to slot 0, so worker indices in the
/// trace cannot race across runs.
fn soak_cpu() -> CpuSpec {
    let mut cpu = CpuSpec::paper_machine();
    cpu.logical_cpus = 2;
    cpu
}

/// A 10 s quantum keeps the scheduler effectively static for the whole
/// soak (its command-word writes would otherwise race the
/// `GarbageCommand` self-detection window); supervision respawns
/// quarantined slots on the next poll with no backoff, a poison
/// threshold high enough that the deliberately-hostile shapes are never
/// blacklisted, and a watchdog that cannot fire (guard detection, not
/// the deadline, must drive every recovery here).
fn soak_config() -> ZcConfig {
    let cpu = soak_cpu();
    ZcConfig::for_cpu(cpu)
        .with_quantum_ms(10_000)
        .with_supervise_params(
            SuperviseParams::for_cpu(cpu)
                .with_watchdog_cycles(u64::MAX / 2)
                .with_poison_threshold(1_000)
                .with_backoff_cycles(1, 1)
                .with_probation_cycles(1),
        )
}

/// One corruption of each kind, on six consecutive switchless
/// executions (site indices advance only when a worker actually
/// services a call).
fn seeded_plan() -> FaultPlan {
    FaultPlan::new()
        .flip_status_at(0)
        .garbage_command_at(1)
        .oversize_reply_at(2)
        .undersize_reply_at(3)
        .stale_seq_at(4)
        .torn_request_at(5)
}

fn checksum_table() -> (Arc<OcallTable>, switchless_core::FuncId) {
    let mut t = OcallTable::new();
    let sum = t.register(
        "sum",
        |_: &[u64; MAX_OCALL_ARGS], pin: &[u8], pout: &mut Vec<u8>| {
            let s: u64 = pin.iter().map(|&b| u64::from(b)).sum();
            pout.extend_from_slice(&s.to_le_bytes());
            s as i64
        },
    );
    (Arc::new(t), sum)
}

fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(60);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Run the seeded soak once; returns the canonical (timestamp-free)
/// JSONL trace of its guard-violation events.
fn run_soak() -> String {
    let (table, sum) = checksum_table();
    let faults = Arc::new(FaultInjector::new(seeded_plan()));
    let hub = Telemetry::with_capacity(4096);
    let rt = ZcRuntime::start_with_telemetry(
        soak_config(),
        table,
        sgx_sim::Enclave::new(soak_cpu()),
        Arc::clone(&hub),
        Some(Arc::clone(&faults)),
    )
    .unwrap();

    // Calls 0-5 each eat one corruption site; 6-9 prove the recovered
    // slot serves honestly again. The first six re-route through the
    // fallback except `GarbageCommand` (call 1), whose reply is honest —
    // the lie is on the command word and the worker itself detects it
    // right after release.
    let expected_paths = [
        CallPath::Fallback,   // FlipStatus, caller-detected
        CallPath::Switchless, // GarbageCommand, worker-detected after release
        CallPath::Fallback,   // OversizeReplyLen
        CallPath::Fallback,   // UndersizeReplyLen
        CallPath::Fallback,   // StaleSeqReplay
        CallPath::Fallback,   // TornRequest, worker-detected mid-call
        CallPath::Switchless,
        CallPath::Switchless,
        CallPath::Switchless,
        CallPath::Switchless,
    ];
    let mut out = Vec::new();
    for (i, &expect_path) in expected_paths.iter().enumerate() {
        // Distinct payload lengths per call: corrupted shapes land in
        // different blacklist buckets and checksums differ call-to-call.
        let len = 1 << (i % 6);
        let byte = (i + 1) as u8;
        let payload = vec![byte; len];
        let expect: u64 = u64::from(byte) * len as u64;
        let (ret, path) = rt
            .dispatch(&OcallRequest::new(sum, &[]), &payload, &mut out)
            .unwrap();
        assert_eq!(ret, expect as i64, "call {i}: checksum corrupted");
        assert_eq!(out, expect.to_le_bytes(), "call {i}: reply bytes corrupted");
        assert_eq!(path, expect_path, "call {i}: unexpected routing");
        // Serialise the soak: every injected corruption must be
        // detected and its slot respawned before the next call, so both
        // the trace admission order and the claimed worker are
        // deterministic run-to-run.
        wait_until("corruption detected and slot respawned", || {
            rt.stats().snapshot().guard_violations == faults.counts().byzantine_total()
                && rt.poisoned_workers() == 0
        });
    }

    let snap = rt.stats().snapshot();
    assert_eq!(snap.issued, 10);
    assert!(snap.is_conserved(), "calls lost under corruption: {snap:?}");
    assert_eq!(snap.guard_violations, 6, "{snap:?}");
    assert_eq!(snap.reply_truncations, 0, "{snap:?}");
    let counts = faults.counts();
    assert_eq!(counts.byzantine_total(), 6);
    assert_eq!(
        (
            counts.flipped_status,
            counts.garbage_commands,
            counts.oversize_replies
        ),
        (1, 1, 1)
    );
    assert_eq!(
        (
            counts.undersize_replies,
            counts.stale_replays,
            counts.torn_requests
        ),
        (1, 1, 1)
    );
    let sup = rt.supervisor_state().expect("supervision is on");
    assert!(sup.respawns() >= 6, "every quarantined slot must respawn");
    rt.shutdown();

    let events = hub.tracer().drain();
    canonical_jsonl(&events, |e| e.event.kind_name() == "guard_violation")
}

#[test]
fn seeded_byzantine_soak_detects_every_corruption_deterministically() {
    let trace = run_soak();
    // One violation event per injected corruption, in injection order.
    let guards: Vec<&str> = trace
        .lines()
        .map(|l| {
            let start = l.find("\"guard\":\"").expect("guard field") + 9;
            &l[start..start + l[start..].find('"').expect("closing quote")]
        })
        .collect();
    assert_eq!(
        guards,
        vec![
            "bad_status_word",
            "bad_command_word",
            "oversized_reply",
            "undersized_reply",
            "stale_sequence",
            "torn_request",
        ],
        "full trace:\n{trace}"
    );
    // Same seed, same trace: a second full run must be byte-identical.
    let rerun = run_soak();
    assert_eq!(trace, rerun, "canonical guard trace must be reproducible");
}
