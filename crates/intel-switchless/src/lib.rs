//! Reimplementation of the Intel SGX SDK switchless-call library.
//!
//! Mirrors the mechanism described in the Intel SGX developer reference
//! and the ZC-SWITCHLESS paper (§II–III):
//!
//! * Functions must be *statically* marked switchless at build time
//!   ([`switchless_core::IntelConfig::switchless_funcs`]); all others always pay a regular
//!   enclave transition.
//! * A fixed pool of `num_uworkers` untrusted **worker threads** polls a
//!   shared [`TaskPool`] for submitted calls.
//! * A caller submits a task, then busy-waits up to
//!   `retries_before_fallback` (`rbf`) pauses for a worker to *accept*
//!   it; if none does, the caller cancels the task and falls back to a
//!   regular ocall.
//! * An idle worker polls for `retries_before_sleep` (`rbs`) pauses, then
//!   goes to sleep; task submission wakes sleeping workers.
//!
//! The SDK defaults (`rbf = rbs = 20 000` pauses ≈ 2.8 M cycles) are the
//! pathology the paper's §III-C identifies: with long host functions a
//! caller can wait ~200× the cost of the transition it was avoiding.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod pool;
mod prof;
pub mod runtime;

pub use pool::{SlotIdx, SlotState, TaskPool};
pub use runtime::IntelSwitchless;
