//! Criterion microbenchmarks of the real-thread ocall paths: regular
//! (transition-paying), Intel switchless and ZC switchless dispatch.
//!
//! Note: on hosts with fewer cores than the modelled machine the
//! switchless paths time-share with their worker threads; relative
//! numbers are still informative, absolute ones are not.

use criterion::{criterion_group, criterion_main, Criterion};
use sgx_sim::{Enclave, RegularOcall};
use std::sync::Arc;
use switchless_core::{
    CpuSpec, IntelConfig, OcallDispatcher, OcallRequest, OcallTable, ZcConfig, MAX_OCALL_ARGS,
};

fn nop_table() -> (Arc<OcallTable>, switchless_core::FuncId) {
    let mut t = OcallTable::new();
    let nop = t.register(
        "nop",
        |_: &[u64; MAX_OCALL_ARGS], _: &[u8], _: &mut Vec<u8>| 0,
    );
    (Arc::new(t), nop)
}

fn bench_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("ocall_paths");
    group.sample_size(20);

    let (table, nop) = nop_table();
    let enclave = Enclave::new(CpuSpec::paper_machine());
    let req = OcallRequest::new(nop, &[]);

    // Regular: cost-injected transition (~3.55 us modelled).
    let regular = RegularOcall::new(Arc::clone(&table), enclave.clone());
    group.bench_function("regular_transition", |b| {
        let mut out = Vec::new();
        b.iter(|| regular.dispatch(&req, b"payload", &mut out).unwrap());
    });

    // Regular without cost injection: pure marshalling overhead.
    let free = RegularOcall::new(Arc::clone(&table), enclave.clone()).without_cost_injection();
    group.bench_function("marshalling_only", |b| {
        let mut out = Vec::new();
        b.iter(|| free.dispatch(&req, b"payload", &mut out).unwrap());
    });

    // Intel switchless with one dedicated worker.
    let intel = intel_switchless::IntelSwitchless::start(
        IntelConfig::new(1, [nop]),
        Arc::clone(&table),
        enclave.clone(),
    )
    .unwrap();
    group.bench_function("intel_switchless", |b| {
        let mut out = Vec::new();
        b.iter(|| intel.dispatch(&req, b"payload", &mut out).unwrap());
    });

    // ZC switchless.
    let zc = zc_switchless::ZcRuntime::start(
        ZcConfig::default().with_quantum_ms(1000), // hold workers steady
        Arc::clone(&table),
        enclave,
    )
    .unwrap();
    group.bench_function("zc_switchless", |b| {
        let mut out = Vec::new();
        b.iter(|| zc.dispatch(&req, b"payload", &mut out).unwrap());
    });

    group.finish();
    intel.shutdown();
    zc.shutdown();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(3));
    targets = bench_paths
}
criterion_main!(benches);
