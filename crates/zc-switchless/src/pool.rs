//! Preallocated untrusted request pools (paper §IV-B).
//!
//! Callers allocate switchless-request payload space from their worker's
//! pool instead of ocall-ing `malloc` for every request — "using
//! preallocated memory pools prevents callers from performing ocalls to
//! allocate untrusted memory for each switchless request, which would
//! defeat the purpose of using a switchless system."
//!
//! When a pool is full it is *freed and reallocated via an ocall*: the
//! caller pays one enclave transition, the pool resets, and allocation
//! proceeds. These reallocations are the latency spikes visible in the
//! paper's Fig. 8.

use std::fmt;

/// Bump-allocated untrusted memory pool for one worker buffer.
pub struct RequestPool {
    buf: Vec<u8>,
    bump: usize,
    reallocs: u64,
}

impl fmt::Debug for RequestPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RequestPool")
            .field("capacity", &self.buf.len())
            .field("bump", &self.bump)
            .field("reallocs", &self.reallocs)
            .finish()
    }
}

/// Outcome of a pool allocation attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolAlloc {
    /// Space reserved at the contained offset.
    Fit {
        /// Offset of the reserved range.
        offset: usize,
    },
    /// The pool was full and has been reset; the allocation now sits at
    /// offset 0 and the caller owes one reallocation ocall.
    AfterRealloc,
    /// The request exceeds the pool capacity outright.
    TooLarge,
}

impl RequestPool {
    /// Pool of `capacity` bytes (minimum 64).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        RequestPool {
            buf: vec![0u8; capacity.max(64)],
            bump: 0,
            reallocs: 0,
        }
    }

    /// Pool capacity in bytes.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.buf.len()
    }

    /// Bytes currently bump-allocated.
    #[must_use]
    pub fn used(&self) -> usize {
        self.bump
    }

    /// Number of full-pool reallocations so far.
    #[must_use]
    pub fn reallocs(&self) -> u64 {
        self.reallocs
    }

    /// Reserve `len` bytes.
    ///
    /// Returns [`PoolAlloc::AfterRealloc`] when the pool had to be freed
    /// and reallocated — the caller must charge one enclave transition
    /// (and record it) before using the space at offset 0.
    pub fn alloc(&mut self, len: usize) -> PoolAlloc {
        if len > self.buf.len() {
            return PoolAlloc::TooLarge;
        }
        if self.bump + len <= self.buf.len() {
            let offset = self.bump;
            self.bump += len;
            PoolAlloc::Fit { offset }
        } else {
            // Full: free + reallocate (modelled as a reset; the real
            // system performs an ocall to do this).
            self.reallocs += 1;
            self.bump = len;
            PoolAlloc::AfterRealloc
        }
    }

    /// Write `data` at `offset` (previously returned by
    /// [`alloc`](RequestPool::alloc)) using the provided copy function
    /// (the boundary `memcpy`).
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the pool.
    pub fn write_with(&mut self, offset: usize, data: &[u8], copy: impl FnOnce(&mut [u8], &[u8])) {
        copy(&mut self.buf[offset..offset + data.len()], data);
    }

    /// Read `len` bytes at `offset`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the pool.
    #[must_use]
    pub fn slice(&self, offset: usize, len: usize) -> &[u8] {
        &self.buf[offset..offset + len]
    }
}

impl Default for RequestPool {
    fn default() -> Self {
        RequestPool::new(64 * 1024)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bump_allocation_is_disjoint() {
        let mut p = RequestPool::new(100);
        let PoolAlloc::Fit { offset: a } = p.alloc(40) else {
            panic!("first alloc must fit")
        };
        let PoolAlloc::Fit { offset: b } = p.alloc(40) else {
            panic!("second alloc must fit")
        };
        assert_eq!(a, 0);
        assert_eq!(b, 40);
        assert_eq!(p.used(), 80);
    }

    #[test]
    fn exhaustion_triggers_realloc_and_resets() {
        let mut p = RequestPool::new(100);
        assert!(matches!(p.alloc(80), PoolAlloc::Fit { .. }));
        assert_eq!(p.alloc(40), PoolAlloc::AfterRealloc);
        assert_eq!(p.reallocs(), 1);
        assert_eq!(p.used(), 40, "post-realloc allocation sits at the start");
        // Next small alloc fits again without realloc.
        assert!(matches!(p.alloc(10), PoolAlloc::Fit { offset: 40 }));
    }

    #[test]
    fn oversized_requests_are_rejected() {
        let mut p = RequestPool::new(64);
        assert_eq!(p.alloc(65), PoolAlloc::TooLarge);
        assert_eq!(p.reallocs(), 0, "rejection is not a realloc");
    }

    #[test]
    fn write_and_read_back() {
        let mut p = RequestPool::new(64);
        let PoolAlloc::Fit { offset } = p.alloc(5) else {
            panic!()
        };
        p.write_with(offset, b"hello", |d, s| d.copy_from_slice(s));
        assert_eq!(p.slice(offset, 5), b"hello");
    }

    #[test]
    fn minimum_capacity_is_enforced() {
        let p = RequestPool::new(0);
        assert_eq!(p.capacity(), 64);
    }

    #[test]
    fn zero_length_alloc_always_fits() {
        let mut p = RequestPool::new(64);
        assert!(matches!(p.alloc(64), PoolAlloc::Fit { .. }));
        assert!(matches!(p.alloc(0), PoolAlloc::Fit { offset: 64 }));
    }
}
