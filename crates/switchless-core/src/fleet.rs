//! Pure multi-enclave fleet scheduling: one worker budget, M tenants.
//!
//! ROADMAP item 4 generalises the single-enclave runtime to M enclaves
//! (*tenants*) sharing one untrusted worker budget. Each tenant is a
//! **bulkhead fault domain**: it keeps its own supervisor, guards,
//! overload gate and recovery journal, and this module decides — purely,
//! deterministically — how many workers each tenant's shard may run.
//!
//! The allocator extends the paper's wasted-cycle objective across
//! pools. For an assignment `(m_1, …, m_M)` the global waste is
//!
//! ```text
//! U = Σ_t w_t · F_t(m_t) · T_es  +  (Σ_t m_t) · T
//! ```
//!
//! where `F_t(m)` is tenant `t`'s observed fallback count at `m`
//! workers (its shard's configuration-phase probe vector), `w_t` its
//! provisioned weight, and `T` the scheduling interval. [`allocate`]
//! minimises this greedily: starting from the fairness floor it gives
//! each next worker to the tenant whose marginal fallback saving most
//! exceeds the worker's interval cost. Because each additional worker
//! can only reduce a tenant's fallbacks by a diminishing amount in the
//! probe vectors the paper's scheduler produces, the greedy choice is
//! exact for concave savings and never worse than one worker per tenant
//! otherwise.
//!
//! Three robustness rules sit on top of the argmin:
//!
//! * **Fairness floor** — every tenant with nonzero offered load gets at
//!   least one worker (bounded by the budget), however noisy its
//!   neighbours: a starved shard would otherwise pay `T_es` on *every*
//!   call forever.
//! * **Verdict caps** — a [`TenantVerdict`] lattice folds each shard's
//!   supervision/guard/overload/recovery signals into one ordered
//!   judgement; misbehaving tenants are capped (fair share when
//!   [`TenantVerdict::Suspect`], the floor when
//!   [`TenantVerdict::Faulty`]) so their demand cannot pull budget away
//!   from well-behaved shards. The cap charges the *offending* shard
//!   only — other tenants' allocations are computed as if the faulty
//!   tenant simply demanded less.
//! * **Anti-starvation escalation** — a stateful [`FleetAllocator`]
//!   watches for tenants pinned at the floor with unmet demand for
//!   [`FleetParams::starvation_intervals`] consecutive decisions and
//!   escalates their effective weight (doubling per escalation) until
//!   the argmin lifts them above the floor, so a low-weight tenant can
//!   be delayed but never starved indefinitely.
//!
//! [`FleetSnapshot`] extends the runtime conservation contracts
//! (`offered == completed + shed + abandoned + refused`) to the fleet:
//! it proves the identity per tenant *and* globally, and flags any
//! cross-tenant leakage (global totals drifting from the per-tenant
//! sums) as a hard error.

use crate::policy::PolicyParams;
use serde::{Deserialize, Serialize};

/// Default consecutive floor-pinned intervals before anti-starvation
/// escalation kicks in.
pub const DEFAULT_STARVATION_INTERVALS: u32 = 3;

/// Default worker crashes per interval that mark a tenant
/// [`TenantVerdict::Suspect`].
pub const DEFAULT_CRASH_SUSPECT_THRESHOLD: u64 = 3;

/// Cap on anti-starvation weight doublings (2^16 ≫ any sane weight
/// ratio; the cap only bounds the shift).
const MAX_ESCALATION: u32 = 16;

/// Parameters of the fleet allocator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetParams {
    /// Shared machine constants (`T_es`, interval `T = quantum_cycles`,
    /// per-shard worker ceiling, fallback weight). One machine hosts
    /// the whole fleet, so these are fleet-wide.
    pub policy: PolicyParams,
    /// Global worker budget shared by all shards (the machine's
    /// busy-wait capacity, e.g. `N/2` cores).
    pub budget: usize,
    /// Consecutive decisions a tenant may sit at the floor with unmet
    /// demand before its effective weight escalates.
    pub starvation_intervals: u32,
    /// Worker crashes in one interval that mark a tenant
    /// [`TenantVerdict::Suspect`].
    pub crash_suspect_threshold: u64,
}

impl FleetParams {
    /// Fleet parameters for a machine (`budget` workers shared by all
    /// tenants) with default robustness thresholds.
    #[must_use]
    pub fn new(policy: PolicyParams, budget: usize) -> Self {
        FleetParams {
            policy,
            budget: budget.max(1),
            starvation_intervals: DEFAULT_STARVATION_INTERVALS,
            crash_suspect_threshold: DEFAULT_CRASH_SUSPECT_THRESHOLD,
        }
    }

    /// Builder-style override of the starvation-escalation threshold.
    #[must_use]
    pub fn with_starvation_intervals(mut self, n: u32) -> Self {
        self.starvation_intervals = n.max(1);
        self
    }

    /// Builder-style override of the crash-suspicion threshold.
    #[must_use]
    pub fn with_crash_suspect_threshold(mut self, n: u64) -> Self {
        self.crash_suspect_threshold = n.max(1);
        self
    }
}

/// Ordered verdict on one tenant's behaviour, derived from its shard's
/// robustness planes. Forms a join-semilattice under
/// [`TenantVerdict::join`] (worst evidence wins), so independent signal
/// sources can be combined without ordering concerns.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub enum TenantVerdict {
    /// No adverse signals; full access to the shared budget.
    #[default]
    Healthy,
    /// Overloaded but honest (breaker open / brownout active): its own
    /// admission gate is already shedding; allocation is not capped.
    Degraded,
    /// Crash-looping (workers or whole enclave): capped at its weighted
    /// fair share so respawn churn cannot annex surplus budget.
    Suspect,
    /// Byzantine evidence (guard violations): capped at the floor —
    /// blast-radius containment while its shard-local guards and
    /// supervisor deal with the hostile host.
    Faulty,
}

impl TenantVerdict {
    /// All verdicts in lattice order.
    pub const ALL: [TenantVerdict; 4] = [
        TenantVerdict::Healthy,
        TenantVerdict::Degraded,
        TenantVerdict::Suspect,
        TenantVerdict::Faulty,
    ];

    /// Least upper bound: the worse of the two verdicts.
    #[must_use]
    pub fn join(self, other: TenantVerdict) -> TenantVerdict {
        self.max(other)
    }

    /// Stable lowercase name used by exporters and reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TenantVerdict::Healthy => "healthy",
            TenantVerdict::Degraded => "degraded",
            TenantVerdict::Suspect => "suspect",
            TenantVerdict::Faulty => "faulty",
        }
    }
}

/// Per-interval robustness signals from one tenant's shard, gathered
/// from its supervisor, guards, overload gate and recovery plane.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantSignals {
    /// Trusted-side guard violations (Byzantine evidence).
    pub guard_violations: u64,
    /// Worker crashes/hangs charged by the shard supervisor.
    pub worker_crashes: u64,
    /// Whole-enclave losses handled by the recovery plane.
    pub enclave_crashes: u64,
    /// The shard's fallback-storm circuit breaker is open.
    pub breaker_open: bool,
    /// The shard's brownout ladder is above level 0.
    pub brownout_level: u8,
}

impl TenantSignals {
    /// Fold the signals into one verdict (worst evidence wins).
    #[must_use]
    pub fn verdict(&self, params: &FleetParams) -> TenantVerdict {
        let mut v = TenantVerdict::Healthy;
        if self.breaker_open || self.brownout_level > 0 {
            v = v.join(TenantVerdict::Degraded);
        }
        if self.enclave_crashes > 0 || self.worker_crashes >= params.crash_suspect_threshold {
            v = v.join(TenantVerdict::Suspect);
        }
        if self.guard_violations > 0 {
            v = v.join(TenantVerdict::Faulty);
        }
        v
    }
}

/// One tenant's demand as seen by the allocator at a decision point.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantDemand {
    /// Provisioned weight (≥ 1; scales the tenant's fallback pain in
    /// the global objective).
    pub weight: u64,
    /// Calls the tenant offered in the last interval. A tenant with
    /// zero offered load has no floor claim and receives workers only
    /// if its probe vector still shows fallback savings.
    pub offered: u64,
    /// Observed fallback counts `F_t(m)` by worker count `m` (index),
    /// from the shard's latest configuration-phase probes. Missing
    /// entries extend with the last value (more workers cannot save
    /// more than the last probe showed).
    pub probes: Vec<u64>,
    /// The tenant's current behaviour verdict.
    pub verdict: TenantVerdict,
}

impl TenantDemand {
    /// Demand for a healthy tenant.
    #[must_use]
    pub fn new(weight: u64, offered: u64, probes: Vec<u64>) -> Self {
        TenantDemand {
            weight: weight.max(1),
            offered,
            probes,
            verdict: TenantVerdict::Healthy,
        }
    }

    /// Builder-style verdict override.
    #[must_use]
    pub fn with_verdict(mut self, verdict: TenantVerdict) -> Self {
        self.verdict = verdict;
        self
    }

    /// `F_t(m)`: fallbacks expected at `m` workers (probe vector with
    /// last-value extension; 0 when no probes exist).
    #[must_use]
    pub fn fallbacks_at(&self, m: usize) -> u64 {
        self.probes
            .get(m)
            .or(self.probes.last())
            .copied()
            .unwrap_or(0)
    }
}

/// The record of one fleet decision: assignment, caps, verdicts and the
/// global cost, kept for observability (mirrors the per-shard
/// `DecisionRecord`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetDecision {
    /// Workers assigned per tenant.
    pub assigned: Vec<usize>,
    /// Effective per-tenant caps after verdict containment.
    pub caps: Vec<usize>,
    /// Verdict each tenant was judged under.
    pub verdicts: Vec<TenantVerdict>,
    /// Tenants whose weight was escalated by the anti-starvation rule.
    pub escalated: Vec<bool>,
    /// Global wasted-cycle cost `U` of the assignment.
    pub cost: u64,
}

/// Global waste `U = Σ_t w_t·fw·F_t(m_t)·T_es + (Σ m_t)·T` of an
/// assignment (`fw` = the policy fallback weight; saturating).
#[must_use]
pub fn fleet_cost(demands: &[TenantDemand], assigned: &[usize], params: &FleetParams) -> u64 {
    let mut u = 0u64;
    let mut total_workers = 0u64;
    for (t, d) in demands.iter().enumerate() {
        let m = assigned.get(t).copied().unwrap_or(0);
        total_workers += m as u64;
        u = u.saturating_add(
            d.weight
                .saturating_mul(params.policy.fallback_weight.max(1))
                .saturating_mul(d.fallbacks_at(m))
                .saturating_mul(params.policy.t_es_cycles),
        );
    }
    u.saturating_add(total_workers.saturating_mul(params.policy.quantum_cycles))
}

/// Effective worker cap for one tenant under its verdict.
///
/// `Faulty` tenants are contained at the floor (1 if they offered load,
/// else 0); `Suspect` tenants at their weighted fair share; everyone
/// else at the shard ceiling (`policy.max_workers`).
#[must_use]
pub fn verdict_cap(demand: &TenantDemand, weight_sum: u64, params: &FleetParams) -> usize {
    let floor = usize::from(demand.offered > 0);
    let shard_max = params.policy.max_workers.max(1);
    match demand.verdict {
        TenantVerdict::Faulty => floor.min(shard_max),
        TenantVerdict::Suspect => {
            let fair = (params.budget as u64).saturating_mul(demand.weight) / weight_sum.max(1);
            (fair as usize).max(floor).min(shard_max)
        }
        TenantVerdict::Healthy | TenantVerdict::Degraded => shard_max,
    }
}

/// Deterministic global worker assignment.
///
/// Guarantees, for any input:
///
/// * `Σ assigned ≤ params.budget` and `assigned[t] ≤ cap(t)` always;
/// * **floor**: if the budget covers every tenant with nonzero offered
///   load, each such tenant gets ≥ 1 worker (with a short budget, the
///   floors go to the lowest tenant ids — deterministic, and the fleet
///   runtimes size budgets ≥ tenant count);
/// * **determinism**: the output is a pure function of the inputs; ties
///   break towards the lower tenant id.
#[must_use]
pub fn allocate(demands: &[TenantDemand], params: &FleetParams) -> Vec<usize> {
    let n = demands.len();
    let mut assigned = vec![0usize; n];
    if n == 0 {
        return assigned;
    }
    let weight_sum: u64 = demands.iter().map(|d| d.weight.max(1)).sum();
    let caps: Vec<usize> = demands
        .iter()
        .map(|d| verdict_cap(d, weight_sum, params))
        .collect();

    // Fairness floors first, in tenant-id order while the budget lasts.
    let mut left = params.budget;
    for (t, d) in demands.iter().enumerate() {
        if d.offered > 0 && caps[t] > 0 && left > 0 {
            assigned[t] = 1;
            left -= 1;
        }
    }

    // Greedy argmin: hand each remaining worker to the tenant whose
    // marginal fallback saving most exceeds the worker's interval cost.
    let fw = params.policy.fallback_weight.max(1);
    while left > 0 {
        let mut best: Option<(u64, usize)> = None; // (net gain, tenant)
        for (t, d) in demands.iter().enumerate() {
            if assigned[t] >= caps[t] {
                continue;
            }
            let saved = d
                .fallbacks_at(assigned[t])
                .saturating_sub(d.fallbacks_at(assigned[t] + 1));
            let benefit = d
                .weight
                .saturating_mul(fw)
                .saturating_mul(saved)
                .saturating_mul(params.policy.t_es_cycles);
            let Some(net) = benefit.checked_sub(params.policy.quantum_cycles) else {
                continue; // the worker costs more than it saves
            };
            if net == 0 {
                continue;
            }
            // Strict improvement only; ties break to the lower id by
            // visiting tenants in id order and requiring a strict win.
            if best.is_none_or(|(g, _)| net > g) {
                best = Some((net, t));
            }
        }
        match best {
            Some((_, t)) => {
                assigned[t] += 1;
                left -= 1;
            }
            None => break, // no worker pays for itself any more
        }
    }
    assigned
}

/// Stateful allocator adding the anti-starvation escalation rule on top
/// of [`allocate`]. One instance per fleet; call
/// [`FleetAllocator::decide`] once per scheduling interval.
#[derive(Debug, Clone)]
pub struct FleetAllocator {
    params: FleetParams,
    /// Consecutive intervals each tenant sat at the floor with unmet
    /// demand.
    starved: Vec<u32>,
    /// Current escalation level per tenant (weight is scaled by
    /// `2^level`).
    escalation: Vec<u32>,
    decisions: u64,
    last: Option<FleetDecision>,
}

impl FleetAllocator {
    /// Allocator for `tenants` tenants.
    #[must_use]
    pub fn new(params: FleetParams, tenants: usize) -> Self {
        FleetAllocator {
            params,
            starved: vec![0; tenants],
            escalation: vec![0; tenants],
            decisions: 0,
            last: None,
        }
    }

    /// The fleet parameters this allocator runs under.
    #[must_use]
    pub fn params(&self) -> &FleetParams {
        &self.params
    }

    /// Decisions taken so far.
    #[must_use]
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// The most recent decision, if any.
    #[must_use]
    pub fn last_decision(&self) -> Option<&FleetDecision> {
        self.last.as_ref()
    }

    /// Run one fleet decision over the tenants' current demands.
    ///
    /// `demands.len()` must equal the tenant count given at
    /// construction (excess state is ignored, missing state grows).
    pub fn decide(&mut self, demands: &[TenantDemand]) -> FleetDecision {
        let n = demands.len();
        self.starved.resize(n, 0);
        self.escalation.resize(n, 0);

        // Apply escalation boosts to the effective weights.
        let boosted: Vec<TenantDemand> = demands
            .iter()
            .zip(&self.escalation)
            .map(|(d, &e)| {
                let mut b = d.clone();
                b.weight = d
                    .weight
                    .max(1)
                    .saturating_mul(1u64 << e.min(MAX_ESCALATION));
                b
            })
            .collect();
        let assigned = allocate(&boosted, &self.params);

        // Update starvation ledgers: a tenant is starving when it is
        // pinned at its floor while its probe vector says more workers
        // would still save fallbacks. Faulty tenants are contained, not
        // starved — containment must not escalate into extra budget.
        let weight_sum: u64 = boosted.iter().map(|d| d.weight.max(1)).sum();
        let mut escalated = vec![false; n];
        for (t, d) in demands.iter().enumerate() {
            let floor = usize::from(d.offered > 0);
            let unmet = d.fallbacks_at(assigned[t]) > d.fallbacks_at(assigned[t] + 1)
                || (assigned[t] == 0 && d.offered > 0);
            let starving =
                d.verdict < TenantVerdict::Faulty && d.offered > 0 && assigned[t] <= floor && unmet;
            if starving {
                self.starved[t] = self.starved[t].saturating_add(1);
                if self.starved[t] >= self.params.starvation_intervals {
                    self.escalation[t] = (self.escalation[t] + 1).min(MAX_ESCALATION);
                    self.starved[t] = 0;
                }
            } else {
                self.starved[t] = 0;
                // Gradual decay avoids hard oscillation between the
                // boosted and unboosted assignments.
                self.escalation[t] = self.escalation[t].saturating_sub(1);
            }
            escalated[t] = self.escalation[t] > 0;
        }

        let decision = FleetDecision {
            caps: boosted
                .iter()
                .map(|d| verdict_cap(d, weight_sum, &self.params))
                .collect(),
            verdicts: demands.iter().map(|d| d.verdict).collect(),
            cost: fleet_cost(demands, &assigned, &self.params),
            assigned,
            escalated,
        };
        self.decisions += 1;
        self.last = Some(decision.clone());
        decision
    }
}

/// One tenant's call accounting, in the vocabulary of the runtime
/// conservation contracts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TenantUsage {
    /// Calls the tenant's workload put on offer.
    pub offered: u64,
    /// Calls that completed on some path.
    pub completed: u64,
    /// Calls shed by admission control or client-side deadlines.
    pub shed: u64,
    /// Offered calls abandoned un-issued.
    pub abandoned: u64,
    /// Non-idempotent calls refused by post-crash reconciliation.
    pub refused: u64,
    /// Guard violations charged to this tenant's shard.
    pub guard_violations: u64,
}

impl TenantUsage {
    /// Exact per-tenant conservation:
    /// `offered == completed + shed + abandoned + refused`.
    #[must_use]
    pub fn conserves(&self) -> bool {
        self.offered == self.completed + self.shed + self.abandoned + self.refused
    }

    /// Accumulate another usage record into this one (saturating).
    pub fn absorb(&mut self, other: &TenantUsage) {
        self.offered = self.offered.saturating_add(other.offered);
        self.completed = self.completed.saturating_add(other.completed);
        self.shed = self.shed.saturating_add(other.shed);
        self.abandoned = self.abandoned.saturating_add(other.abandoned);
        self.refused = self.refused.saturating_add(other.refused);
        self.guard_violations = self.guard_violations.saturating_add(other.guard_violations);
    }
}

/// A fleet-accounting violation found by [`FleetSnapshot::check`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetAccountingError {
    /// One tenant's own books do not balance.
    TenantImbalance {
        /// Offending tenant index.
        tenant: usize,
        /// Its offered count.
        offered: u64,
        /// `completed + shed + abandoned + refused`.
        accounted: u64,
    },
    /// The global totals drifted from the per-tenant sums: calls leaked
    /// across a bulkhead (charged to the wrong tenant or double/never
    /// counted).
    CrossTenantLeak {
        /// Name of the leaking field.
        field: &'static str,
        /// Sum over tenants.
        tenant_sum: u64,
        /// Independently accumulated global total.
        global: u64,
    },
}

impl std::fmt::Display for FleetAccountingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FleetAccountingError::TenantImbalance {
                tenant,
                offered,
                accounted,
            } => write!(
                f,
                "tenant {tenant} books do not balance: offered {offered} != accounted {accounted}"
            ),
            FleetAccountingError::CrossTenantLeak {
                field,
                tenant_sum,
                global,
            } => write!(
                f,
                "cross-tenant leak in {field}: per-tenant sum {tenant_sum} != global {global}"
            ),
        }
    }
}

/// The fleet-wide conservation snapshot: per-tenant books plus the
/// independently accumulated global totals.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FleetSnapshot {
    /// One usage record per tenant, by tenant index.
    pub tenants: Vec<TenantUsage>,
    /// Global totals accumulated independently of the per-tenant books
    /// (when the producer has no independent global counters, use
    /// [`FleetSnapshot::from_tenants`], which sums — the leak check is
    /// then vacuous but the conservation checks still bite).
    pub global: TenantUsage,
}

impl FleetSnapshot {
    /// Snapshot whose global totals are the per-tenant sums.
    #[must_use]
    pub fn from_tenants(tenants: Vec<TenantUsage>) -> Self {
        let mut global = TenantUsage::default();
        for t in &tenants {
            global.absorb(t);
        }
        FleetSnapshot { tenants, global }
    }

    /// `Σ per-tenant` of every field.
    #[must_use]
    pub fn tenant_sum(&self) -> TenantUsage {
        let mut sum = TenantUsage::default();
        for t in &self.tenants {
            sum.absorb(t);
        }
        sum
    }

    /// Do all books balance — each tenant, the global totals, and no
    /// cross-tenant leakage?
    #[must_use]
    pub fn conserves(&self) -> bool {
        self.check().is_ok()
    }

    /// Check every fleet accounting invariant, returning the first
    /// violation: per-tenant conservation, global conservation, and
    /// field-by-field agreement between the per-tenant sums and the
    /// global totals (cross-tenant leak detection).
    pub fn check(&self) -> Result<(), FleetAccountingError> {
        for (i, t) in self.tenants.iter().enumerate() {
            if !t.conserves() {
                return Err(FleetAccountingError::TenantImbalance {
                    tenant: i,
                    offered: t.offered,
                    accounted: t.completed + t.shed + t.abandoned + t.refused,
                });
            }
        }
        let sum = self.tenant_sum();
        for (field, s, g) in [
            ("offered", sum.offered, self.global.offered),
            ("completed", sum.completed, self.global.completed),
            ("shed", sum.shed, self.global.shed),
            ("abandoned", sum.abandoned, self.global.abandoned),
            ("refused", sum.refused, self.global.refused),
            (
                "guard_violations",
                sum.guard_violations,
                self.global.guard_violations,
            ),
        ] {
            if s != g {
                return Err(FleetAccountingError::CrossTenantLeak {
                    field,
                    tenant_sum: s,
                    global: g,
                });
            }
        }
        if !self.global.conserves() {
            return Err(FleetAccountingError::TenantImbalance {
                tenant: usize::MAX,
                offered: self.global.offered,
                accounted: self.global.completed
                    + self.global.shed
                    + self.global.abandoned
                    + self.global.refused,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::CpuSpec;

    fn params(budget: usize) -> FleetParams {
        FleetParams::new(PolicyParams::from_cpu(&CpuSpec::paper_machine()), budget)
    }

    /// A probe vector where each worker saves `saving` fallbacks until
    /// the count hits zero.
    fn linear_probes(start: u64, saving: u64, len: usize) -> Vec<u64> {
        (0..len as u64)
            .map(|m| start.saturating_sub(m * saving))
            .collect()
    }

    #[test]
    fn verdict_lattice_is_ordered_join() {
        use TenantVerdict::*;
        assert!(Healthy < Degraded && Degraded < Suspect && Suspect < Faulty);
        for a in TenantVerdict::ALL {
            for b in TenantVerdict::ALL {
                assert_eq!(a.join(b), b.join(a), "commutative");
                assert_eq!(a.join(a), a, "idempotent");
                assert!(a.join(b) >= a && a.join(b) >= b, "upper bound");
            }
        }
    }

    #[test]
    fn signals_fold_to_worst_evidence() {
        let p = params(4);
        let mut s = TenantSignals::default();
        assert_eq!(s.verdict(&p), TenantVerdict::Healthy);
        s.brownout_level = 2;
        assert_eq!(s.verdict(&p), TenantVerdict::Degraded);
        s.enclave_crashes = 1;
        assert_eq!(s.verdict(&p), TenantVerdict::Suspect);
        s.guard_violations = 1;
        assert_eq!(s.verdict(&p), TenantVerdict::Faulty);
    }

    #[test]
    fn floor_holds_for_every_offered_tenant() {
        // Tenant 1 has overwhelming demand; tenant 0 still gets one.
        let demands = vec![
            TenantDemand::new(1, 10, vec![1, 0]),
            TenantDemand::new(100, 1_000_000, linear_probes(100_000, 20_000, 5)),
        ];
        let a = allocate(&demands, &params(4));
        assert!(a[0] >= 1, "floored tenant starved: {a:?}");
        assert!(a[1] >= 1);
        assert!(a.iter().sum::<usize>() <= 4);
    }

    #[test]
    fn idle_tenants_release_their_floor() {
        let demands = vec![
            TenantDemand::new(1, 0, vec![]),
            TenantDemand::new(1, 100, linear_probes(10_000, 5_000, 3)),
        ];
        let a = allocate(&demands, &params(2));
        assert_eq!(a[0], 0, "no offered load, no floor claim");
        assert!(a[1] >= 1);
    }

    #[test]
    fn greedy_matches_brute_force_on_small_fleets() {
        // Exhaustive check: concave savings, 2 tenants, budget 4.
        let p = params(4);
        let demands = vec![
            TenantDemand::new(2, 500, linear_probes(6_000, 2_500, 5)),
            TenantDemand::new(1, 500, linear_probes(9_000, 3_000, 5)),
        ];
        let greedy = allocate(&demands, &p);
        let mut best = (u64::MAX, vec![]);
        for m0 in 0..=4usize {
            for m1 in 0..=(4 - m0) {
                // Respect the floor the greedy allocator guarantees.
                if m0 == 0 || m1 == 0 {
                    continue;
                }
                let cost = fleet_cost(&demands, &[m0, m1], &p);
                if cost < best.0 {
                    best = (cost, vec![m0, m1]);
                }
            }
        }
        assert_eq!(
            fleet_cost(&demands, &greedy, &p),
            best.0,
            "greedy {greedy:?} vs brute {best:?}"
        );
    }

    #[test]
    fn faulty_tenant_is_contained_at_floor() {
        let storm = linear_probes(1_000_000, 100_000, 5);
        let honest = linear_probes(1_000, 400, 5);
        let p = params(4);
        let byz = vec![
            TenantDemand::new(1, 1_000_000, storm.clone()).with_verdict(TenantVerdict::Faulty),
            TenantDemand::new(1, 1_000, honest.clone()),
        ];
        let a = allocate(&byz, &p);
        assert_eq!(a[0], 1, "faulty tenant pinned to the floor");
        // The honest tenant's allocation matches what it would get if
        // the faulty tenant simply demanded nothing beyond its floor.
        let solo = vec![
            TenantDemand::new(1, 1_000_000, vec![0]),
            TenantDemand::new(1, 1_000, honest),
        ];
        assert_eq!(
            a[1],
            allocate(&solo, &p)[1],
            "containment charges only the offender"
        );
    }

    #[test]
    fn suspect_tenant_capped_at_fair_share() {
        let p = params(4);
        let demands = vec![
            TenantDemand::new(1, 100_000, linear_probes(1_000_000, 100_000, 5))
                .with_verdict(TenantVerdict::Suspect),
            TenantDemand::new(1, 100_000, linear_probes(1_000_000, 100_000, 5)),
        ];
        let a = allocate(&demands, &p);
        assert!(a[0] <= 2, "suspect capped at fair share (4·1/2): {a:?}");
    }

    #[test]
    fn allocation_is_deterministic() {
        let demands = vec![
            TenantDemand::new(3, 500, linear_probes(700, 300, 5)),
            TenantDemand::new(2, 400, linear_probes(700, 300, 5)),
            TenantDemand::new(1, 300, linear_probes(700, 300, 5)),
        ];
        let p = params(4);
        let a = allocate(&demands, &p);
        for _ in 0..10 {
            assert_eq!(allocate(&demands, &p), a);
        }
        // Exact ties break towards the lower tenant id.
        let tied = vec![
            TenantDemand::new(1, 100, linear_probes(700, 300, 5)),
            TenantDemand::new(1, 100, linear_probes(700, 300, 5)),
        ];
        let t = allocate(&tied, &params(3));
        assert!(t[0] >= t[1], "tie must favour the lower id: {t:?}");
    }

    #[test]
    fn starved_tenant_escalates_and_recovers() {
        // Tenant 1's weight dwarfs tenant 0's, and the budget holds the
        // floors plus one surplus worker; without escalation tenant 0
        // would sit at the floor forever while its probes keep showing
        // unmet savings.
        let mut alloc = FleetAllocator::new(params(3).with_starvation_intervals(2), 2);
        let demands = vec![
            TenantDemand::new(1, 10_000, linear_probes(5_000, 2_000, 3)),
            TenantDemand::new(64, 10_000, linear_probes(5_000, 2_000, 3)),
        ];
        let first = alloc.decide(&demands);
        assert_eq!(
            first.assigned,
            vec![1, 2],
            "surplus goes to the heavy tenant"
        );
        let mut lifted = false;
        for _ in 0..32 {
            let d = alloc.decide(&demands);
            if d.assigned[0] > 1 {
                assert!(d.escalated[0], "the lift must come from escalation");
                lifted = true;
                break;
            }
        }
        assert!(lifted, "anti-starvation never lifted tenant 0");
    }

    #[test]
    fn allocator_reports_decision_metadata() {
        let mut alloc = FleetAllocator::new(params(4), 2);
        let demands = vec![
            TenantDemand::new(1, 100, linear_probes(700, 300, 5)),
            TenantDemand::new(1, 0, vec![]).with_verdict(TenantVerdict::Faulty),
        ];
        let d = alloc.decide(&demands);
        assert_eq!(d.assigned.len(), 2);
        assert_eq!(d.verdicts[1], TenantVerdict::Faulty);
        assert_eq!(d.caps[1], 0, "faulty + idle = no workers at all");
        assert_eq!(alloc.decisions(), 1);
        assert_eq!(alloc.last_decision(), Some(&d));
        assert_eq!(d.cost, fleet_cost(&demands, &d.assigned, alloc.params()));
    }

    #[test]
    fn snapshot_balances_and_detects_leaks() {
        let t0 = TenantUsage {
            offered: 100,
            completed: 90,
            shed: 6,
            abandoned: 3,
            refused: 1,
            guard_violations: 0,
        };
        let t1 = TenantUsage {
            offered: 50,
            completed: 50,
            ..TenantUsage::default()
        };
        let snap = FleetSnapshot::from_tenants(vec![t0, t1]);
        assert!(snap.conserves());
        assert_eq!(snap.global.offered, 150);

        // A tenant whose books do not balance.
        let mut bad = snap.clone();
        bad.tenants[0].completed -= 1;
        bad.global.completed -= 1;
        assert!(matches!(
            bad.check(),
            Err(FleetAccountingError::TenantImbalance { tenant: 0, .. })
        ));

        // Books balance per tenant but a call leaked across a bulkhead:
        // tenant 1 charged with a completion tenant 0 offered.
        let mut leak = snap.clone();
        leak.tenants[0].completed -= 1;
        leak.tenants[0].shed += 1;
        leak.tenants[1].completed += 1;
        leak.tenants[1].offered += 1;
        assert!(matches!(
            leak.check(),
            Err(FleetAccountingError::CrossTenantLeak {
                field: "offered",
                ..
            })
        ));
    }

    #[test]
    fn budget_is_never_exceeded() {
        for budget in 1..8usize {
            let demands: Vec<TenantDemand> = (0..5)
                .map(|i| TenantDemand::new(i + 1, 1_000, linear_probes(10_000, 3_000, 4)))
                .collect();
            let a = allocate(&demands, &params(budget));
            assert!(a.iter().sum::<usize>() <= budget, "budget {budget}: {a:?}");
        }
    }
}
