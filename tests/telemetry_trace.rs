//! Telemetry tier-1 suite: trace determinism under fault injection and
//! end-to-end export validation.
//!
//! The determinism contract (DESIGN.md §8): full traces interleave
//! per-thread streams nondeterministically, and cycle timestamps vary
//! run to run even on a virtual clock — but the *causally ordered*
//! projection (fault injections, pool reallocations, drain outcomes,
//! with timestamps stripped) of a single-caller scripted-fault scenario
//! is byte-identical across same-seed runs. That is what
//! [`canonical_jsonl`] exports and what this suite pins down.
//!
//! [`canonical_jsonl`]: zc_telemetry::export::canonical_jsonl

use sgx_sim::Enclave;
use std::sync::Arc;
use std::time::{Duration, Instant};
use switchless_core::overload::OverloadParams;
use switchless_core::{
    CpuSpec, FaultInjector, FaultPlan, OcallDispatcher, OcallRequest, OcallTable, ShedReason,
    SwitchlessError, ZcConfig, MAX_OCALL_ARGS,
};
use zc_switchless::ZcRuntime;
use zc_telemetry::export::{canonical_jsonl, events_to_jsonl, to_chrome_trace, to_prometheus};
use zc_telemetry::{Event, RecordedEvent, Telemetry};

/// Failure backstop for bounded polls (never slept on).
const BACKSTOP: Duration = Duration::from_secs(60);

fn table() -> (Arc<OcallTable>, switchless_core::FuncId) {
    let mut t = OcallTable::new();
    let echo = t.register(
        "echo",
        |_: &[u64; MAX_OCALL_ARGS], pin: &[u8], pout: &mut Vec<u8>| {
            pout.extend_from_slice(pin);
            pin.len() as i64
        },
    );
    (Arc::new(t), echo)
}

/// Keep only the causally-deterministic event kinds.
fn causal(ev: &RecordedEvent) -> bool {
    matches!(
        ev.event,
        Event::Fault { .. } | Event::Drain { .. } | Event::PoolRealloc { .. }
    )
}

/// One scripted fault scenario: a single caller on a 1-worker machine
/// (2 logical CPUs), first 2 pool allocations forced to exhaustion and
/// the 3rd serviced call crashing the worker. Returns the canonical
/// trace projection.
fn faulted_run() -> String {
    let hub = Telemetry::new();
    let (t, echo) = table();
    let mut cpu = CpuSpec::paper_machine();
    cpu.logical_cpus = 2; // max_workers = 1: all worker events are Worker(0)
    let cfg = ZcConfig::for_cpu(cpu).with_quantum_ms(10);
    let plan = FaultPlan::new().crash_worker_at(3).exhaust_pool_first(2);
    let faults = Arc::new(FaultInjector::new(plan));
    let zc = ZcRuntime::start_with_telemetry(
        cfg,
        t,
        Enclave::new_virtual(cpu),
        Arc::clone(&hub),
        Some(Arc::clone(&faults)),
    )
    .expect("zc runtime must start");

    let mut out = Vec::new();
    let deadline = Instant::now() + BACKSTOP;
    loop {
        zc.dispatch(&OcallRequest::new(echo, &[1]), b"payload", &mut out)
            .expect("faulted calls still complete via fallback");
        let c = faults.counts();
        if c.crashes >= 1 && c.pool_exhaustions >= 2 {
            break;
        }
        assert!(Instant::now() < deadline, "faults never fired: {c:?}");
    }
    let report = zc.shutdown_with_timeout(Duration::from_secs(5));
    assert_eq!(report.abandoned, 0, "no worker should be wedged");
    drop(zc);
    canonical_jsonl(&hub.tracer().drain(), causal)
}

#[test]
fn faulted_trace_is_byte_identical_across_runs() {
    let first = faulted_run();
    let second = faulted_run();
    assert!(
        first.contains(r#""kind":"fault""#),
        "canonical trace must contain injected faults:\n{first}"
    );
    assert!(
        first.contains(r#""fault":"worker_crash""#),
        "worker crash must be traced:\n{first}"
    );
    assert!(
        first.contains(r#""fault":"pool_exhaustion""#),
        "pool exhaustion must be traced:\n{first}"
    );
    assert!(
        first.contains(r#""kind":"drain""#),
        "drain outcome must be traced:\n{first}"
    );
    assert!(
        !first.contains(r#""t":"#),
        "canonical projection strips timestamps:\n{first}"
    );
    assert_eq!(
        first, second,
        "same scripted scenario must yield a byte-identical canonical trace"
    );
}

#[test]
fn runtime_trace_exports_decisions_transitions_and_all_formats() {
    let hub = Telemetry::new();
    let (t, echo) = table();
    let cpu = CpuSpec::paper_machine();
    // Short quantum: several configuration phases complete quickly.
    let cfg = ZcConfig::for_cpu(cpu).with_quantum_ms(1);
    let zc = ZcRuntime::start_with_telemetry(cfg, t, Enclave::new_virtual(cpu), hub.clone(), None)
        .expect("zc runtime must start");

    let mut out = Vec::new();
    let deadline = Instant::now() + BACKSTOP;
    while zc.scheduler_decisions() < 3 {
        zc.dispatch(&OcallRequest::new(echo, &[1]), b"x", &mut out)
            .expect("call must complete");
        assert!(Instant::now() < deadline, "scheduler never decided");
    }
    zc.shutdown();

    let events = hub.tracer().drain();
    let decision = events
        .iter()
        .find_map(|e| match &e.event {
            Event::Decision { decision } => Some(decision.clone()),
            _ => None,
        })
        .expect("at least one completed configuration phase is traced");
    assert!(
        !decision.probes.is_empty(),
        "decision must carry the measured F_i"
    );
    assert_eq!(
        decision.probes.len(),
        decision.costs.len(),
        "one derived U_i per probed F_i"
    );
    assert!(
        decision.chosen_workers <= zc.config().max_workers(),
        "argmin stays within the worker budget"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e.event, Event::WorkerTransition { .. })),
        "worker state-machine edges must be traced"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e.event, Event::CallRouted { .. })),
        "routed calls must be traced"
    );

    // JSONL: one object per line, every line carries kind + timestamp.
    let jsonl = events_to_jsonl(&events);
    assert!(!jsonl.is_empty());
    for line in jsonl.lines() {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "malformed JSONL line: {line}"
        );
        assert!(line.contains(r#""kind":"#), "line lacks kind: {line}");
        assert!(line.contains(r#""t":"#), "line lacks timestamp: {line}");
    }

    // Prometheus text exposition via the runtime's registered collector.
    let prom = to_prometheus(&hub.metrics().snapshot());
    assert!(prom.contains("# TYPE zc_calls_total counter"), "{prom}");
    assert!(
        prom.contains(r#"zc_calls_total{path="switchless"}"#),
        "{prom}"
    );
    assert!(prom.contains("zc_scheduler_decisions_total"), "{prom}");

    // Chrome trace_event JSON: named threads, spans, counters.
    let trace = to_chrome_trace(&events, cpu.freq_hz);
    assert!(trace.starts_with(r#"{"traceEvents":["#), "{trace}");
    assert!(trace.contains(r#""ph":"M""#), "thread metadata: {trace}");
    assert!(trace.contains(r#""ph":"X""#), "call spans missing");
    assert!(trace.contains(r#""ph":"C""#), "worker counter missing");
}

#[test]
fn des_full_trace_is_deterministic_including_timestamps() {
    use zc_des::ocall::CallDesc;
    use zc_des::{run, Mechanism, SimConfig, WorkloadSpec, ZcSimParams};

    let sim_trace = || {
        let hub = Telemetry::new();
        let call = CallDesc {
            host_cycles: 2_000,
            ret_bytes: 8,
            ..CallDesc::default()
        };
        let cfg = SimConfig::new(
            Mechanism::Zc(ZcSimParams::default()),
            vec![
                WorkloadSpec::ClosedLoop {
                    pattern: vec![call],
                    total_ops: 20_000,
                };
                2
            ],
            1,
        )
        .with_telemetry(Arc::clone(&hub));
        let r = run(&cfg);
        assert_eq!(r.counters.total_calls(), 40_000);
        events_to_jsonl(&hub.tracer().drain())
    };
    let first = sim_trace();
    assert!(
        first.contains(r#""kind":"decision""#),
        "sim scheduler decisions must be traced:\n{}",
        &first[..first.len().min(2_000)]
    );
    assert!(first.contains(r#""kind":"phase_start""#));
    // The DES kernel is single-threaded and fully virtual: even the
    // timestamped full trace is byte-identical run to run.
    assert_eq!(first, sim_trace(), "DES trace must be fully deterministic");
}

/// Same-seed virtual-clock runs must yield a byte-identical SLO report
/// (DESIGN.md §12): the phase profiler feeds off kernel virtual time
/// only, so the JSONL exporter — fixed-precision floats included — is
/// pinned byte-for-byte, and phase cycles conserve against whole-call
/// cycles within 1%.
#[test]
fn des_slo_report_jsonl_is_byte_identical_across_runs() {
    use switchless_core::CallPath;
    use zc_des::ocall::CallDesc;
    use zc_des::{run, Mechanism, SimConfig, WorkloadSpec, ZcSimParams};

    let slo_jsonl = || {
        let hub = Telemetry::new();
        let call = CallDesc {
            host_cycles: 2_000,
            payload_bytes: 128,
            ret_bytes: 8,
            ..CallDesc::default()
        };
        let cfg = SimConfig::new(
            Mechanism::Zc(ZcSimParams::default()),
            vec![
                WorkloadSpec::ClosedLoop {
                    pattern: vec![call],
                    total_ops: 5_000,
                };
                2
            ],
            1,
        )
        .with_event_kernel()
        .with_telemetry(Arc::clone(&hub));
        let r = run(&cfg);
        assert_eq!(r.counters.total_calls(), 10_000);
        let slo = r.slo_report(&hub, "des_zc");
        let sw = slo
            .path(CallPath::Switchless)
            .expect("switchless traffic expected");
        assert!(sw.calls > 0);
        assert!(
            slo.max_conservation_error() <= 0.01,
            "phase cycles must conserve: {}",
            slo.max_conservation_error()
        );
        let phases_traced = hub
            .tracer()
            .drain()
            .iter()
            .filter(|e| matches!(e.event, Event::CallPhases { .. }))
            .count();
        assert!(phases_traced > 0, "per-call phase spans must be traced");
        slo.to_jsonl()
    };
    let first = slo_jsonl();
    assert!(first.contains(r#""kind":"slo_report""#), "{first}");
    assert!(first.contains(r#""path":"switchless""#), "{first}");
    assert!(first.contains(r#""phase":"reserve""#), "{first}");
    assert_eq!(
        first,
        slo_jsonl(),
        "same-seed virtual-clock runs must emit byte-identical SLO JSONL"
    );
}

/// One deterministic overload scenario: a token bucket of 2 with a
/// refill period far beyond the test (no deadline, breaker untouched),
/// so of 10 sequential calls exactly the first 2 complete and the
/// remaining 8 shed as `rate_limited`. Returns the canonical projection
/// of the shed/breaker/brownout events.
fn overloaded_run() -> String {
    let hub = Telemetry::new();
    let (t, echo) = table();
    let cpu = CpuSpec::paper_machine();
    let cfg = ZcConfig::for_cpu(cpu)
        .with_overload_params(OverloadParams::for_cpu(&cpu).with_bucket(2, 1 << 40));
    let zc = ZcRuntime::start_with_telemetry(cfg, t, Enclave::new_virtual(cpu), hub.clone(), None)
        .expect("zc runtime must start");
    let mut out = Vec::new();
    let (mut completed, mut shed) = (0, 0);
    for _ in 0..10 {
        match zc.dispatch(&OcallRequest::new(echo, &[1]), b"x", &mut out) {
            Ok(_) => completed += 1,
            Err(SwitchlessError::Overloaded { reason }) => {
                assert_eq!(reason, ShedReason::RateLimited);
                shed += 1;
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    assert_eq!((completed, shed), (2, 8), "2 bucket tokens, 8 sheds");
    let snap = zc.overload_snapshot().expect("overload plane configured");
    assert!(snap.conserves(zc.stats().snapshot().total_calls()));
    zc.shutdown();
    canonical_jsonl(&hub.tracer().drain(), |ev| {
        matches!(
            ev.event,
            Event::CallShed { .. } | Event::BreakerTransition { .. } | Event::BrownoutShift { .. }
        )
    })
}

/// The overload shed sequence is causally deterministic even on the
/// real (wall-clock) runtime: admission depends only on the token count,
/// not on timing, so the canonical shed trace is byte-identical across
/// runs (the overload-plane analogue of the fault-trace pin above).
#[test]
fn overload_shed_trace_is_byte_identical_across_runs() {
    let first = overloaded_run();
    let second = overloaded_run();
    assert_eq!(
        first.lines().count(),
        8,
        "one canonical line per shed call:\n{first}"
    );
    assert!(
        first.contains(r#""kind":"call_shed""#),
        "sheds must be traced:\n{first}"
    );
    assert!(
        first.contains(r#""reason":"rate_limited""#),
        "shed reason must be attributed:\n{first}"
    );
    assert!(
        !first.contains(r#""t":"#),
        "canonical projection strips timestamps:\n{first}"
    );
    assert_eq!(
        first, second,
        "same overload scenario must yield a byte-identical canonical trace"
    );
}

/// Seeded open-loop MMPP overload traffic on the DES: the full
/// timestamped trace — scheduler decisions included — is byte-identical
/// across same-seed runs, and the client-side shed accounting conserves
/// offered load exactly (DESIGN.md §13).
#[test]
fn des_mmpp_overload_trace_is_byte_identical_and_conserves() {
    use zc_des::ocall::CallDesc;
    use zc_des::{
        run, ArrivalProcess, Mechanism, OpenLoad, ServiceDist, SimConfig, WorkloadSpec, ZcSimParams,
    };

    let sim_trace = || {
        let hub = Telemetry::new();
        let load = OpenLoad::new(
            CallDesc {
                host_cycles: 500,
                payload_bytes: 64,
                ..CallDesc::default()
            },
            ArrivalProcess::Mmpp {
                calm_gap_cycles: 8_000,
                burst_gap_cycles: 1_000,
                calm_dwell_cycles: 200_000,
                burst_dwell_cycles: 100_000,
            },
            0xdecaf,
            8_000_000,
        )
        .with_service(ServiceDist::Exponential { mean_cycles: 400 })
        .with_deadline_budget(100_000);
        // 1 ms quanta so the 8M-cycle window spans two scheduler
        // configuration phases and traces their decisions.
        let params = ZcSimParams {
            quantum_ms: 1,
            ..ZcSimParams::default()
        };
        let cfg = SimConfig::new(Mechanism::Zc(params), vec![WorkloadSpec::Open(load); 4], 1)
            .with_event_kernel()
            .with_telemetry(Arc::clone(&hub));
        let r = run(&cfg);
        let c = &r.counters;
        assert!(c.offered > 0 && c.ops_shed > 0, "bursts must shed: {c:?}");
        assert!(
            c.conserves(),
            "offered {} != completed {} + shed {} + abandoned {}",
            c.offered,
            c.total_calls(),
            c.ops_shed,
            c.ops_abandoned
        );
        events_to_jsonl(&hub.tracer().drain())
    };
    let first = sim_trace();
    assert!(
        first.contains(r#""kind":"decision""#),
        "the scheduler must decide under open-loop load:\n{}",
        &first[..first.len().min(2_000)]
    );
    assert_eq!(
        first,
        sim_trace(),
        "same-seed MMPP overload trace must be byte-identical"
    );
}

/// One scripted enclave-crash scenario on the real runtime: a single
/// caller with recovery on, three whole-enclave crashes at fixed
/// dispatch sites, all calls idempotent. Returns the canonical
/// projection of the recovery events (crash/replay/redeliver/refuse).
fn recovery_run() -> String {
    let hub = Telemetry::new();
    let (t, echo) = table();
    let mut cpu = CpuSpec::paper_machine();
    cpu.logical_cpus = 2;
    let cfg = ZcConfig::for_cpu(cpu).with_quantum_ms(10).with_recovery();
    let faults = Arc::new(FaultInjector::new(
        FaultPlan::new().crash_enclave_at_each([2, 5, 8]),
    ));
    let zc = ZcRuntime::start_with_telemetry(
        cfg,
        t,
        Enclave::new_virtual(cpu),
        Arc::clone(&hub),
        Some(Arc::clone(&faults)),
    )
    .expect("zc runtime must start");
    let mut out = Vec::new();
    for i in 0..20u8 {
        let req = OcallRequest::new(echo, &[]).with_idempotent();
        let (ret, _) = zc
            .dispatch(&req, b"pin", &mut out)
            .expect("idempotent calls must survive the crashes");
        assert_eq!(ret, 3, "call {i}");
    }
    let snap = zc.recovery_snapshot().expect("recovery is on");
    assert_eq!(snap.crashes, 3, "all scripted crashes must fire: {snap:?}");
    assert_eq!(snap.journal_live, 0, "journal must drain: {snap:?}");
    zc.shutdown();
    canonical_jsonl(&hub.tracer().drain(), |ev| {
        matches!(
            ev.event,
            Event::EnclaveCrash { .. }
                | Event::JournalReplay { .. }
                | Event::CallRedelivered { .. }
                | Event::CallRefused { .. }
        )
    })
}

/// The recovery-plane trace pin: crash detection and reconciliation
/// depend only on the scripted dispatch sites and the journal contents,
/// so the canonical recovery trace is byte-identical across runs — the
/// crash-recovery analogue of the worker-fault pin above.
#[test]
fn recovery_trace_is_byte_identical_across_runs() {
    let first = recovery_run();
    let second = recovery_run();
    assert_eq!(
        first.matches(r#""kind":"enclave_crash""#).count(),
        3,
        "one canonical line per enclave crash:\n{first}"
    );
    assert_eq!(
        first.matches(r#""kind":"journal_replay""#).count(),
        3,
        "each crash replays its idempotent in-flight call:\n{first}"
    );
    assert!(
        !first.contains(r#""kind":"call_refused""#),
        "idempotent-only traffic must never be refused:\n{first}"
    );
    assert!(
        !first.contains(r#""t":"#),
        "canonical projection strips timestamps:\n{first}"
    );
    assert_eq!(
        first, second,
        "same crash schedule must yield a byte-identical canonical trace"
    );
}

/// The DES recovery soak obeys the full determinism contract: the
/// timestamped trace of a multi-crash run — including the replay of a
/// call interrupted by a second crash mid-replay — is byte-identical
/// across same-seed runs (the trace pinned for ISSUE 9's acceptance).
#[test]
fn des_recovery_trace_is_byte_identical_across_runs() {
    use zc_des::ocall::CallDesc;
    use zc_des::{run, Mechanism, SimConfig, WorkloadSpec, ZcSimFaults, ZcSimParams};

    let sim_trace = || {
        let hub = Telemetry::new();
        let call = CallDesc {
            host_cycles: 2_000,
            payload_bytes: 64,
            ret_bytes: 8,
            ..CallDesc::default()
        };
        let cfg = SimConfig::new(
            Mechanism::Zc(ZcSimParams::default()),
            vec![
                WorkloadSpec::ClosedLoop {
                    pattern: vec![call],
                    total_ops: 5_000,
                };
                2
            ],
            1,
        )
        .with_zc_faults(
            ZcSimFaults::new()
                .crash_enclave_at_call(100)
                .crash_enclave_at_call(5_000)
                .crash_enclave_during_replay(0)
                .with_enclave_restart_cycles(500_000),
        )
        .with_telemetry(Arc::clone(&hub));
        let r = run(&cfg);
        assert_eq!(r.counters.total_calls(), 10_000);
        assert!(r.counters.conserves());
        assert_eq!(
            r.fault_recovery.enclave_crashes, 3,
            "two scripted + one during replay"
        );
        assert_eq!(r.fault_recovery.journal_live, 0);
        events_to_jsonl(&hub.tracer().drain())
    };
    let first = sim_trace();
    assert!(
        first.contains(r#""kind":"enclave_crash""#),
        "crashes must be traced:\n{}",
        &first[..first.len().min(2_000)]
    );
    assert!(
        first.contains(r#""kind":"journal_replay""#),
        "replays must be traced"
    );
    assert!(
        first.contains(r#""kind":"call_redelivered""#),
        "the replay interrupted by the second crash must be redelivered"
    );
    assert_eq!(
        first,
        sim_trace(),
        "same-seed recovery trace must be byte-identical"
    );
}

/// A hub that is *not* attached to a runtime must stay silent: the
/// profiler records nothing and the trace stays empty — instrumentation
/// is pay-for-what-you-attach even with the `telemetry` feature on.
#[test]
fn unattached_hub_sees_no_profile_activity() {
    let hub = Telemetry::new();
    let (t, echo) = table();
    let cpu = CpuSpec::paper_machine();
    let zc = ZcRuntime::start(ZcConfig::for_cpu(cpu), t, Enclave::new_virtual(cpu))
        .expect("zc runtime must start");
    let mut out = Vec::new();
    for _ in 0..100 {
        zc.dispatch(&OcallRequest::new(echo, &[1]), b"payload", &mut out)
            .expect("call must complete");
    }
    zc.shutdown();
    let snap = hub.profile().snapshot();
    for path in &snap.paths {
        assert_eq!(path.total.count, 0, "unattached profiler must stay empty");
        assert_eq!(path.phase_sum(), 0);
    }
    assert!(hub.tracer().drain().is_empty(), "no events without a hub");
}

/// The event-driven kernel obeys the same determinism contract as the
/// cycle-accurate one: the full timestamped trace is byte-identical
/// across same-seed runs, at the paper's 8 vCPUs and at the lifted
/// 128-vCPU scale (DESIGN.md §11).
#[test]
fn des_event_kernel_trace_is_deterministic_at_8_and_128_vcpus() {
    use zc_des::ocall::CallDesc;
    use zc_des::{run, Mechanism, SimConfig, WorkloadSpec, ZcSimParams};

    let sim_trace = |vcpus: usize, callers: usize, ops: u64| {
        let hub = Telemetry::new();
        let call = CallDesc {
            host_cycles: 2_000,
            ret_bytes: 8,
            ..CallDesc::default()
        };
        let cfg = SimConfig::new(
            Mechanism::Zc(ZcSimParams::default()),
            vec![
                WorkloadSpec::ClosedLoop {
                    pattern: vec![call],
                    total_ops: ops,
                };
                callers
            ],
            1,
        )
        .with_event_kernel()
        .with_vcpus(vcpus)
        .with_telemetry(Arc::clone(&hub));
        let r = run(&cfg);
        assert_eq!(r.counters.total_calls(), ops * callers as u64);
        events_to_jsonl(&hub.tracer().drain())
    };

    // Call counts are sized so each run outlasts the initial 38M-cycle
    // schedule quantum *and* the probe sweep (0..=N/2 workers at 380k
    // cycles each — ~25M cycles at 128 vCPUs) and traces a decision.
    for (vcpus, callers, ops) in [(8, 2, 20_000u64), (128, 32, 40_000)] {
        let first = sim_trace(vcpus, callers, ops);
        assert!(
            first.contains(r#""kind":"decision""#),
            "event-kernel sim at {vcpus} vCPUs must trace decisions:\n{}",
            &first[..first.len().min(2_000)]
        );
        assert_eq!(
            first,
            sim_trace(vcpus, callers, ops),
            "event-kernel trace at {vcpus} vCPUs must be fully deterministic"
        );
    }
}
