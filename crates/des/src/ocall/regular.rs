//! The `no_sl` baseline: every ocall pays the enclave transition and the
//! caller's own core runs the host function (EEXIT → host → EENTER).

use super::{CallDesc, CostModel, Dispatcher, Step};
use crate::kernel::{Syscall, SyscallResult};
use switchless_core::CallPath;

/// Dispatcher executing every call as a regular ocall.
#[derive(Debug, Clone)]
pub struct RegularDispatcher {
    costs: CostModel,
    in_call: bool,
}

impl RegularDispatcher {
    /// New regular-ocall dispatcher with the given cost model.
    #[must_use]
    pub fn new(costs: CostModel) -> Self {
        RegularDispatcher {
            costs,
            in_call: false,
        }
    }
}

impl Dispatcher for RegularDispatcher {
    fn begin(&mut self, call: &CallDesc, _now: u64) -> Syscall {
        debug_assert!(!self.in_call, "begin during an active dialogue");
        self.in_call = true;
        Syscall::Compute(self.costs.regular_call_cycles(call))
    }

    fn advance(&mut self, _call: &CallDesc, res: SyscallResult, _now: u64) -> Step {
        debug_assert_eq!(res, SyscallResult::Ok);
        debug_assert!(self.in_call);
        self.in_call = false;
        Step::Complete(CallPath::Regular)
    }

    fn name(&self) -> &'static str {
        "no_sl"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dialogue_is_one_compute_then_done() {
        let mut d = RegularDispatcher::new(CostModel::paper());
        let call = CallDesc {
            host_cycles: 500,
            ..CallDesc::default()
        };
        let s = d.begin(&call, 0);
        assert_eq!(s, Syscall::Compute(13_500 + 500));
        let step = d.advance(&call, SyscallResult::Ok, 14_000);
        assert_eq!(step, Step::Complete(CallPath::Regular));
        // Reusable for the next call.
        let _ = d.begin(&call, 14_000);
    }
}
