//! Multi-enclave fleet: M [`ZcRuntime`] shards as bulkhead fault
//! domains under one global worker budget.
//!
//! Each tenant gets its **own** enclave, worker pool, shared buffers and
//! robustness planes (supervision, overload control, recovery) — a
//! crashing, Byzantine or overloaded tenant can corrupt nothing beyond
//! its own shard. What the shards *share* is the machine's busy-wait
//! capacity: a global worker budget carved up by the pure
//! [`FleetAllocator`] from `switchless_core::fleet`, which runs the
//! paper's wasted-cycle argmin `U = F·T_es + M·T` *across* shards using
//! each shard's own configuration-phase probes as its demand curve.
//!
//! The allocator's output is applied as per-shard worker-count **caps**
//! ([`ZcRuntime::set_worker_cap`]); the shard-local argmin keeps running
//! underneath and may pick fewer workers than its cap. Rebalancing is
//! quiesce-and-migrate: donors' caps are lowered first, the fleet waits
//! for their schedulers to actually drop (workers park at the next
//! step), and only then are receivers' caps raised — a moving worker
//! never serves two shards at once, and the sum of running workers never
//! exceeds the budget mid-migration.

use crate::ZcRuntime;
use parking_lot::Mutex;
use sgx_sim::Enclave;
use std::sync::Arc;
use std::time::{Duration, Instant};
use switchless_core::stats::CallStatsSnapshot;
use switchless_core::{
    BreakerState, FaultInjector, FleetAllocator, FleetDecision, FleetParams, FleetSnapshot,
    OcallTable, SwitchlessError, TenantDemand, TenantSignals, TenantUsage, ZcConfig,
};

/// One tenant's slice of a [`Fleet`]: its runtime configuration, host
/// function table, fairness weight and (optionally) a fault injector
/// for chaos scenarios scoped to this shard only.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Human-readable tenant label (telemetry, reports).
    pub name: String,
    /// Fairness weight for the global allocator (≥1).
    pub weight: u64,
    /// Shard-local runtime configuration (robustness planes included).
    pub config: ZcConfig,
    /// Host functions this tenant may call.
    pub table: Arc<OcallTable>,
    /// Deterministic fault injector scoped to this shard, if any.
    pub faults: Option<Arc<FaultInjector>>,
    /// Shard-local telemetry hub, if any — a bulkhead like everything
    /// else shard-scoped: one tenant's trace volume cannot evict
    /// another's events.
    #[cfg(feature = "telemetry")]
    pub telemetry: Option<Arc<zc_telemetry::Telemetry>>,
}

impl TenantSpec {
    /// Tenant with weight 1 and no fault injection.
    #[must_use]
    pub fn new(name: impl Into<String>, config: ZcConfig, table: Arc<OcallTable>) -> Self {
        TenantSpec {
            name: name.into(),
            weight: 1,
            config,
            table,
            faults: None,
            #[cfg(feature = "telemetry")]
            telemetry: None,
        }
    }

    /// Set the fairness weight (clamped to ≥1).
    #[must_use]
    pub fn with_weight(mut self, weight: u64) -> Self {
        self.weight = weight.max(1);
        self
    }

    /// Attach a deterministic fault injector to this shard.
    #[must_use]
    pub fn with_faults(mut self, faults: Arc<FaultInjector>) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Attach a shard-local telemetry hub. The fleet also emits a
    /// tenant-labelled `FleetRebalance` event into it whenever a global
    /// decision moves this shard's worker cap.
    #[cfg(feature = "telemetry")]
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Arc<zc_telemetry::Telemetry>) -> Self {
        self.telemetry = Some(telemetry);
        self
    }
}

/// Counter baselines at the last rebalance, so demand and verdict
/// signals are computed from *interval* deltas (a tenant that was
/// Byzantine an hour ago but clean since is judged on the clean
/// interval, not its history — the allocator's own escalation state
/// carries the memory).
#[derive(Debug)]
struct ShardLedger {
    stats: CallStatsSnapshot,
    enclave_crashes: u64,
    respawns: u64,
}

#[derive(Debug)]
struct Shard {
    name: String,
    weight: u64,
    runtime: ZcRuntime,
    ledger: Mutex<ShardLedger>,
    #[cfg(feature = "telemetry")]
    telemetry: Option<Arc<zc_telemetry::Telemetry>>,
}

impl Shard {
    /// Emit a tenant-labelled rebalance event into this shard's hub
    /// (no-op without one), stamped with the shard's runtime clock.
    #[cfg(feature = "telemetry")]
    fn record_rebalance(&self, verdict: &'static str, cap_before: usize, cap_after: usize) {
        if let Some(hub) = &self.telemetry {
            hub.record(
                self.runtime.clock().now_cycles(),
                zc_telemetry::Origin::Scheduler,
                zc_telemetry::Event::FleetRebalance {
                    tenant: self.name.clone(),
                    verdict,
                    cap_before: cap_before as u32,
                    cap_after: cap_after as u32,
                },
            );
        }
    }

    #[cfg(not(feature = "telemetry"))]
    fn record_rebalance(&self, _verdict: &'static str, _cap_before: usize, _cap_after: usize) {}
}

/// M [`ZcRuntime`] shards under one global worker budget.
///
/// Start with [`Fleet::start`]; dispatch each tenant's traffic through
/// [`Fleet::runtime`]; call [`Fleet::rebalance`] at whatever cadence
/// suits the deployment (every few quanta is plenty — demand curves move
/// at workload speed, not call speed). [`Fleet::fleet_snapshot`] gives
/// the per-tenant conservation ledger.
#[derive(Debug)]
pub struct Fleet {
    shards: Vec<Shard>,
    allocator: Mutex<FleetAllocator>,
}

impl Fleet {
    /// Start one runtime per tenant and seed per-shard worker caps with
    /// the weighted fair share of the budget (every tenant ≥1).
    ///
    /// # Errors
    ///
    /// Returns [`SwitchlessError::InvalidConfig`] if `specs` is empty,
    /// the budget is zero, or any shard's machine model yields zero
    /// workers.
    pub fn start(params: FleetParams, specs: Vec<TenantSpec>) -> Result<Self, SwitchlessError> {
        if specs.is_empty() {
            return Err(SwitchlessError::InvalidConfig(
                "fleet needs at least one tenant".into(),
            ));
        }
        if params.budget == 0 {
            return Err(SwitchlessError::InvalidConfig(
                "fleet worker budget must be nonzero".into(),
            ));
        }
        let weight_sum: u64 = specs.iter().map(|s| s.weight.max(1)).sum();
        let mut shards = Vec::with_capacity(specs.len());
        for spec in specs {
            let enclave = Enclave::new_virtual(spec.config.cpu);
            #[cfg(feature = "telemetry")]
            let runtime = match (&spec.telemetry, &spec.faults) {
                (Some(hub), f) => ZcRuntime::start_with_telemetry(
                    spec.config,
                    Arc::clone(&spec.table),
                    enclave,
                    Arc::clone(hub),
                    f.clone(),
                )?,
                (None, Some(f)) => ZcRuntime::start_with_faults(
                    spec.config,
                    Arc::clone(&spec.table),
                    enclave,
                    Arc::clone(f),
                )?,
                (None, None) => ZcRuntime::start(spec.config, Arc::clone(&spec.table), enclave)?,
            };
            #[cfg(not(feature = "telemetry"))]
            let runtime = match &spec.faults {
                Some(f) => ZcRuntime::start_with_faults(
                    spec.config,
                    Arc::clone(&spec.table),
                    enclave,
                    Arc::clone(f),
                )?,
                None => ZcRuntime::start(spec.config, Arc::clone(&spec.table), enclave)?,
            };
            // Weighted fair share before any demand is known; the first
            // rebalance replaces this with the measured argmin.
            let share = (params.budget as u64).saturating_mul(spec.weight.max(1)) / weight_sum;
            runtime.set_worker_cap((share as usize).max(1));
            let ledger = ShardLedger {
                stats: runtime.stats().snapshot(),
                enclave_crashes: 0,
                respawns: 0,
            };
            shards.push(Shard {
                name: spec.name,
                weight: spec.weight.max(1),
                runtime,
                ledger: Mutex::new(ledger),
                #[cfg(feature = "telemetry")]
                telemetry: spec.telemetry,
            });
        }
        let allocator = FleetAllocator::new(params, shards.len());
        Ok(Fleet {
            shards,
            allocator: Mutex::new(allocator),
        })
    }

    /// Number of tenants.
    #[must_use]
    pub fn tenants(&self) -> usize {
        self.shards.len()
    }

    /// Tenant label.
    #[must_use]
    pub fn name(&self, tenant: usize) -> &str {
        &self.shards[tenant].name
    }

    /// The tenant's shard runtime (dispatch traffic through this).
    #[must_use]
    pub fn runtime(&self, tenant: usize) -> &ZcRuntime {
        &self.shards[tenant].runtime
    }

    /// Current per-shard worker caps.
    #[must_use]
    pub fn caps(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.runtime.worker_cap()).collect()
    }

    /// Completed global allocation decisions.
    #[must_use]
    pub fn decisions(&self) -> u64 {
        self.allocator.lock().decisions()
    }

    /// Gather per-shard demand and behaviour evidence, run the global
    /// argmin, and apply the new caps with the quiesce-and-migrate
    /// protocol: donors shrink first, the fleet waits (bounded by
    /// `quiesce_timeout` of wall time) for their schedulers to drop to
    /// the new cap, then receivers grow. Returns the decision.
    pub fn rebalance(&self, quiesce_timeout: Duration) -> FleetDecision {
        let mut demands = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            let mut ledger = shard.ledger.lock();
            let now = shard.runtime.stats().snapshot();
            let delta = now.delta_since(&ledger.stats);
            let offered = delta.issued;

            // Demand curve: the shard's own configuration-phase probes
            // (fallbacks observed at each worker count during one
            // micro-quantum), scaled up to the full quantum so the
            // fleet objective weighs them against `T = quantum_cycles`.
            let policy = self.allocator.lock().params().policy;
            let scale = (policy.quantum_cycles / policy.micro_quantum_cycles().max(1)).max(1);
            let probes = match shard.runtime.last_decision() {
                Some(d) => {
                    let mut v = vec![0u64; policy.max_workers + 1];
                    for p in &d.probes {
                        if let Some(slot) = v.get_mut(p.workers) {
                            *slot = p.fallbacks.saturating_mul(scale);
                        }
                    }
                    v
                }
                // No probe data yet: a flat curve demands nothing
                // beyond the fairness floor.
                None => vec![delta.fallback],
            };

            let crashes = shard.runtime.recovery_snapshot().map_or(0, |r| r.crashes);
            let respawns = shard.runtime.supervisor_state().map_or(0, |s| s.respawns());
            let overload = shard.runtime.overload_snapshot();
            let signals = TenantSignals {
                guard_violations: delta.guard_violations,
                worker_crashes: respawns.saturating_sub(ledger.respawns)
                    + shard.runtime.poisoned_workers() as u64,
                enclave_crashes: crashes.saturating_sub(ledger.enclave_crashes),
                breaker_open: overload
                    .as_ref()
                    .is_some_and(|o| o.breaker_state == BreakerState::Open),
                brownout_level: overload.as_ref().map_or(0, |o| o.brownout_level),
            };
            ledger.stats = now;
            ledger.enclave_crashes = crashes;
            ledger.respawns = respawns;

            let verdict = signals.verdict(self.allocator.lock().params());
            demands.push(TenantDemand::new(shard.weight, offered, probes).with_verdict(verdict));
        }
        let decision = self.allocator.lock().decide(&demands);
        self.apply(&decision, quiesce_timeout);
        decision
    }

    /// Quiesce-and-migrate cap application. Shrinking donors before
    /// growing receivers keeps `Σ running workers ≤ budget` throughout;
    /// the wait observes each donor's *published* worker count, which
    /// only moves when its scheduler has actually re-parked workers.
    fn apply(&self, decision: &FleetDecision, quiesce_timeout: Duration) {
        let mut donors = Vec::new();
        for (t, shard) in self.shards.iter().enumerate() {
            let new = decision.assigned[t].max(1);
            let old = shard.runtime.worker_cap();
            if new != old {
                shard.record_rebalance(decision.verdicts[t].name(), old, new);
            }
            if new < old {
                shard.runtime.set_worker_cap(new);
                donors.push((t, new));
            }
        }
        let deadline = Instant::now() + quiesce_timeout;
        while donors
            .iter()
            .any(|&(t, new)| self.shards[t].runtime.active_workers() > new)
        {
            if Instant::now() >= deadline {
                break;
            }
            std::thread::yield_now();
            std::thread::sleep(Duration::from_micros(200));
        }
        for (t, shard) in self.shards.iter().enumerate() {
            let new = decision.assigned[t].max(1);
            if new > shard.runtime.worker_cap() {
                shard.runtime.set_worker_cap(new);
            }
        }
    }

    /// Per-tenant conservation ledger: for each shard,
    /// `offered == completed + shed + abandoned + refused` from its own
    /// counters, with the global row summed across shards. Exact at
    /// quiescent points (no calls in flight).
    #[must_use]
    pub fn fleet_snapshot(&self) -> FleetSnapshot {
        let tenants = self
            .shards
            .iter()
            .map(|shard| {
                let s = shard.runtime.stats().snapshot();
                let shed = shard
                    .runtime
                    .overload_snapshot()
                    .map_or(0, |o| o.shed_total());
                let refused = shard
                    .runtime
                    .recovery_snapshot()
                    .map_or(0, |r| r.refused_non_idempotent);
                TenantUsage {
                    offered: s.issued,
                    completed: s.switchless + s.fallback + s.regular,
                    shed,
                    abandoned: s.cancelled,
                    refused,
                    guard_violations: s.guard_violations,
                }
            })
            .collect();
        FleetSnapshot::from_tenants(tenants)
    }

    /// Shut every shard down (idempotent; also runs on drop).
    pub fn shutdown(&self) {
        for shard in &self.shards {
            shard.runtime.shutdown();
        }
    }
}

impl Drop for Fleet {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use switchless_core::policy::PolicyParams;
    use switchless_core::{CpuSpec, OcallDispatcher, OcallRequest};

    fn echo_table() -> (Arc<OcallTable>, switchless_core::FuncId) {
        let mut table = OcallTable::new();
        let id = table.register("echo", |_: &[u64; 6], pin: &[u8], out: &mut Vec<u8>| {
            out.extend_from_slice(pin);
            pin.len() as i64
        });
        (Arc::new(table), id)
    }

    fn params(budget: usize) -> FleetParams {
        FleetParams::new(PolicyParams::from_cpu(&CpuSpec::paper_machine()), budget)
    }

    fn spec(name: &str) -> (TenantSpec, switchless_core::FuncId) {
        let (table, id) = echo_table();
        (
            TenantSpec::new(name, ZcConfig::for_cpu(CpuSpec::paper_machine()), table),
            id,
        )
    }

    #[test]
    fn fleet_starts_dispatches_and_conserves() {
        let (a, fa) = spec("alpha");
        let (b, fb) = spec("beta");
        let fleet = Fleet::start(params(4), vec![a, b]).expect("fleet start");
        assert_eq!(fleet.tenants(), 2);
        let mut out = Vec::new();
        for _ in 0..32 {
            let (ret, _) = fleet
                .runtime(0)
                .dispatch(&OcallRequest::new(fa, &[]), b"aaaa", &mut out)
                .expect("tenant 0 call");
            assert_eq!(ret, 4);
            let (ret, _) = fleet
                .runtime(1)
                .dispatch(&OcallRequest::new(fb, &[]), b"bb", &mut out)
                .expect("tenant 1 call");
            assert_eq!(ret, 2);
        }
        fleet.shutdown();
        let snap = fleet.fleet_snapshot();
        snap.check().expect("per-tenant conservation");
        assert_eq!(snap.tenants[0].offered, 32);
        assert_eq!(snap.tenants[1].offered, 32);
        assert_eq!(snap.global.offered, 64);
    }

    #[test]
    fn initial_caps_follow_weights_and_respect_budget() {
        let (a, _) = spec("heavy");
        let (b, _) = spec("light");
        let fleet = Fleet::start(params(4), vec![a.with_weight(3), b]).expect("fleet start");
        let caps = fleet.caps();
        assert!(caps[0] >= caps[1], "heavier tenant seeded below lighter");
        assert!(caps.iter().all(|&c| c >= 1));
        fleet.shutdown();
    }

    #[test]
    fn rebalance_applies_caps_within_budget() {
        let (a, fa) = spec("busy");
        let (b, _) = spec("idle");
        let fleet = Fleet::start(params(4), vec![a, b]).expect("fleet start");
        let mut out = Vec::new();
        for _ in 0..64 {
            fleet
                .runtime(0)
                .dispatch(&OcallRequest::new(fa, &[]), b"x", &mut out)
                .expect("tenant 0 call");
        }
        let d = fleet.rebalance(Duration::from_millis(500));
        assert_eq!(d.assigned.len(), 2);
        assert!(d.assigned.iter().sum::<usize>() <= 4);
        // Applied caps match the decision (floored at 1).
        for (t, &m) in d.assigned.iter().enumerate() {
            assert_eq!(fleet.runtime(t).worker_cap(), m.max(1));
        }
        assert_eq!(fleet.decisions(), 1);
        fleet.shutdown();
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn rebalance_emits_tenant_labelled_events() {
        let (a, fa) = spec("noisy");
        let (b, _) = spec("quiet");
        let hub = zc_telemetry::Telemetry::new();
        let fleet = Fleet::start(params(4), vec![a.with_telemetry(Arc::clone(&hub)), b])
            .expect("fleet start");
        let mut out = Vec::new();
        for _ in 0..64 {
            fleet
                .runtime(0)
                .dispatch(&OcallRequest::new(fa, &[]), b"x", &mut out)
                .expect("call");
        }
        // Drive rebalances until tenant 0's cap moves off its seed.
        let seeded = fleet.caps()[0];
        for _ in 0..50 {
            fleet.rebalance(Duration::from_millis(200));
            if fleet.caps()[0] != seeded {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        fleet.shutdown();
        let moved = fleet.caps()[0] != seeded;
        let events = hub.tracer().drain();
        let rebalances: Vec<_> = events
            .iter()
            .filter_map(|e| match &e.event {
                zc_telemetry::Event::FleetRebalance {
                    tenant,
                    cap_before,
                    cap_after,
                    ..
                } => Some((tenant.clone(), *cap_before, *cap_after)),
                _ => None,
            })
            .collect();
        assert_eq!(
            moved,
            !rebalances.is_empty(),
            "cap moves and rebalance events must agree: caps {:?}, events {rebalances:?}",
            fleet.caps()
        );
        for (tenant, before, after) in &rebalances {
            assert_eq!(tenant, "noisy", "event labelled with the wrong tenant");
            assert_ne!(before, after);
        }
    }

    #[test]
    fn worker_cap_bounds_the_scheduler() {
        let (a, fa) = spec("capped");
        let fleet = Fleet::start(params(1), vec![a]).expect("fleet start");
        assert_eq!(fleet.caps(), vec![1]);
        let mut out = Vec::new();
        for _ in 0..128 {
            fleet
                .runtime(0)
                .dispatch(&OcallRequest::new(fa, &[]), b"y", &mut out)
                .expect("call");
        }
        // The published worker count can never exceed the cap once the
        // scheduler has taken a step under it.
        assert!(fleet.runtime(0).active_workers() <= fleet.runtime(0).config().max_workers());
        fleet.shutdown();
        assert!(fleet.runtime(0).active_workers() <= 1);
    }
}
