//! Scriptable fault injection for the switchless runtimes.
//!
//! A [`FaultPlan`] describes *which* failures to provoke and *when* —
//! worker crash/stall/hang at a given call index, forced pool
//! exhaustion, enclave-transition failure, clock skew — and a
//! [`FaultInjector`] (shared as an `Arc` between callers, workers and
//! the fallback engine) evaluates the plan at each instrumented site
//! with plain atomic counters, so injection decisions are deterministic
//! functions of call order alone: no timers, no randomness.
//!
//! The runtimes consume the injector at five sites:
//!
//! | site | hook | plan knob | degradation exercised |
//! |------|------|-----------|-----------------------|
//! | worker picks up a call | [`FaultInjector::on_worker_call`] | crash / stall / hang | poisoned-worker quarantine, caller re-route |
//! | caller allocates from the request pool | [`FaultInjector::on_pool_alloc`] | forced exhaustion | bounded retry-with-backoff, then fallback |
//! | regular ocall transition | [`FaultInjector::on_transition`] | forced failure | bounded retry-with-backoff, then [`TransitionFailed`] |
//! | dispatch entry | [`FaultInjector::on_dispatch`] | clock skew | timestamp-robust accounting |
//! | shutdown | (drain loop) | hang | drain-with-timeout, [`DrainReport`] |
//!
//! [`TransitionFailed`]: crate::SwitchlessError::TransitionFailed

use crate::state::WorkerState;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A deterministic firing schedule over 0-based site indices: an
/// explicit index set, an optional every-N stride, or both. An empty
/// (default) schedule never fires.
///
/// The stride follows the clock-skew convention: `every(n)` fires at
/// indices `n-1`, `2n-1`, … (every n-th occurrence), so `every(1)`
/// fires at every index.
///
/// # Example
///
/// ```
/// use switchless_core::fault::FaultSchedule;
///
/// let s = FaultSchedule::at_each([2, 5]).and_every(10);
/// assert!(!s.fires_at(0));
/// assert!(s.fires_at(2) && s.fires_at(5)); // explicit indices
/// assert!(s.fires_at(9) && s.fires_at(19)); // every 10th occurrence
/// assert!(!s.fires_at(10));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSchedule {
    /// Explicit indices, kept sorted and deduplicated.
    indices: Vec<u64>,
    /// Optional stride (clamped to ≥ 1 by the builders).
    every: Option<u64>,
}

impl FaultSchedule {
    /// Empty schedule (never fires).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedule firing at the single index `n`.
    #[must_use]
    pub fn at(n: u64) -> Self {
        Self::default().and_at(n)
    }

    /// Schedule firing at each of the given indices.
    #[must_use]
    pub fn at_each(ns: impl IntoIterator<Item = u64>) -> Self {
        ns.into_iter().fold(Self::default(), Self::and_at)
    }

    /// Schedule firing at every `n`-th occurrence (indices `n-1`,
    /// `2n-1`, …; `n` is clamped to ≥ 1).
    #[must_use]
    pub fn every(n: u64) -> Self {
        Self::default().and_every(n)
    }

    /// Add the explicit index `n` to this schedule.
    #[must_use]
    pub fn and_at(mut self, n: u64) -> Self {
        if let Err(pos) = self.indices.binary_search(&n) {
            self.indices.insert(pos, n);
        }
        self
    }

    /// Add (or replace) the every-`n`-th stride (clamped to ≥ 1).
    #[must_use]
    pub fn and_every(mut self, n: u64) -> Self {
        self.every = Some(n.max(1));
        self
    }

    /// Does the schedule fire at 0-based index `n`?
    #[must_use]
    pub fn fires_at(&self, n: u64) -> bool {
        self.indices.binary_search(&n).is_ok()
            || self.every.is_some_and(|e| (n + 1).is_multiple_of(e))
    }

    /// `true` when the schedule can never fire.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty() && self.every.is_none()
    }

    /// The explicit indices, sorted ascending.
    #[must_use]
    pub fn indices(&self) -> &[u64] {
        &self.indices
    }

    /// The every-N stride, if any.
    #[must_use]
    pub fn stride(&self) -> Option<u64> {
        self.every
    }

    /// Seeded schedule: `count` indices drawn uniformly from
    /// `[0, max_index)` by the workspace PRNG
    /// ([`SplitMix64`](crate::rand::SplitMix64)), deduplicated.
    ///
    /// The same seed always yields the same schedule, so one `u64`
    /// reproduces a whole randomized fault scenario — and, with the
    /// arrival processes drawing from a fork of the same generator, an
    /// entire overload+fault run (DESIGN.md §13).
    #[must_use]
    pub fn seeded(seed: u64, count: usize, max_index: u64) -> Self {
        let mut rng = crate::rand::SplitMix64::new(seed);
        let mut s = Self::default();
        for _ in 0..count {
            s = s.and_at(rng.next_below(max_index.max(1)));
        }
        s
    }

    /// Number of firings with site index below `limit` (explicit indices
    /// plus stride hits, counted without double-counting overlaps) —
    /// lets tests predict how many faults a bounded run will see.
    #[must_use]
    pub fn firings_below(&self, limit: u64) -> u64 {
        let explicit = self.indices.iter().filter(|&&i| i < limit).count() as u64;
        match self.every {
            None => explicit,
            Some(e) => {
                let stride_hits = limit / e;
                let overlap = self
                    .indices
                    .iter()
                    .filter(|&&i| i < limit && (i + 1).is_multiple_of(e))
                    .count() as u64;
                explicit + stride_hits - overlap
            }
        }
    }
}

/// Script of failures to inject, all keyed on deterministic call indices
/// (0-based). An empty (default) plan injects nothing.
///
/// Worker faults (crash / stall / hang) are driven by [`FaultSchedule`]s,
/// so a single plan can describe repeatable multi-fault scenarios (the
/// chaos-soak harness); the single-index builders remain as sugar for
/// one-shot faults.
///
/// # Example
///
/// ```
/// use switchless_core::fault::{FaultInjector, FaultPlan, WorkerFault};
///
/// let plan = FaultPlan::new().crash_worker_at(1).fail_transitions_first(2);
/// let inj = FaultInjector::new(plan);
/// assert_eq!(inj.on_worker_call(), WorkerFault::None); // call 0
/// assert_eq!(inj.on_worker_call(), WorkerFault::Crash); // call 1
/// assert!(inj.on_transition()); // transition 0: forced failure
/// assert!(inj.on_transition()); // transition 1: forced failure
/// assert!(!inj.on_transition()); // transition 2 proceeds
/// assert_eq!(inj.counts().crashes, 1);
/// assert_eq!(inj.counts().transition_failures, 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Crash the worker servicing each scheduled switchless call: the
    /// worker thread terminates *before* invoking the host function,
    /// leaving its buffer poisoned.
    pub crash_worker_calls: FaultSchedule,
    /// Stall the worker servicing each scheduled switchless call for
    /// [`stall_cycles`](Self::stall_cycles) before it proceeds.
    pub stall_worker_calls: FaultSchedule,
    /// Stall duration in modelled cycles.
    pub stall_cycles: u64,
    /// Wedge the worker servicing each scheduled switchless call forever
    /// (it poisons its buffer and never observes another command) — the
    /// shutdown drain must abandon it unless a supervisor respawns the
    /// slot first.
    pub hang_worker_calls: FaultSchedule,
    /// Force the first n request-pool allocations to report exhaustion.
    pub exhaust_pool_first: u64,
    /// Force the first n enclave transitions to fail.
    pub fail_transition_first: u64,
    /// Skew the clock forward on every n-th dispatch (1 = every
    /// dispatch).
    pub skew_every_dispatch: Option<u64>,
    /// Skew amount in modelled cycles.
    pub skew_cycles: u64,
    /// Byzantine: overwrite the worker's status word with an
    /// undecodable byte instead of publishing the reply.
    pub flip_status_calls: FaultSchedule,
    /// Byzantine: scribble an undecodable byte into the worker's
    /// scheduler-command word after servicing the call.
    pub garbage_command_calls: FaultSchedule,
    /// Byzantine: declare more reply bytes than were produced.
    pub oversize_reply_calls: FaultSchedule,
    /// Byzantine: declare fewer reply bytes than were produced.
    pub undersize_reply_calls: FaultSchedule,
    /// Byzantine: stamp the reply with a stale sequence tag (replay).
    pub stale_seq_calls: FaultSchedule,
    /// Byzantine: tear the request slot (overwrite the posted request)
    /// while the worker owns it.
    pub torn_request_calls: FaultSchedule,
    /// Crash the whole enclave as each scheduled switchless call is
    /// dispatched (before the host function runs): every in-flight
    /// call's fate becomes unknown and the recovery plane reconciles
    /// them against the intent journal ([`crate::recovery`]).
    pub enclave_crash_calls: FaultSchedule,
    /// Stall the whole enclave for
    /// [`enclave_stall_cycles`](Self::enclave_stall_cycles) as each
    /// scheduled call is dispatched, then let it revive on its own —
    /// the stall-then-revive scenario (callers must ride it out, not
    /// misroute it into a watchdog cancellation).
    pub enclave_stall_calls: FaultSchedule,
    /// Enclave stall duration in modelled cycles.
    pub enclave_stall_cycles: u64,
    /// Crash the enclave again as each scheduled *replay* executes
    /// (after the replay's completion is journaled, before delivery):
    /// the crash-during-replay scenario that proves replay idempotence
    /// — the second recovery round must redeliver, never re-execute.
    pub enclave_replay_crash_calls: FaultSchedule,
}

impl FaultPlan {
    /// Empty plan (injects nothing).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Crash the worker servicing switchless call `n` (0-based). May be
    /// chained to build a multi-crash schedule.
    #[must_use]
    pub fn crash_worker_at(mut self, n: u64) -> Self {
        self.crash_worker_calls = self.crash_worker_calls.and_at(n);
        self
    }

    /// Crash the workers servicing each of the given switchless calls.
    #[must_use]
    pub fn crash_worker_at_each(mut self, ns: impl IntoIterator<Item = u64>) -> Self {
        self.crash_worker_calls = ns
            .into_iter()
            .fold(self.crash_worker_calls, FaultSchedule::and_at);
        self
    }

    /// Crash the worker servicing every `n`-th switchless call.
    #[must_use]
    pub fn crash_worker_every(mut self, n: u64) -> Self {
        self.crash_worker_calls = self.crash_worker_calls.and_every(n);
        self
    }

    /// Stall the worker servicing switchless call `n` for `cycles`. May
    /// be chained; the last `cycles` value wins for all stalls.
    #[must_use]
    pub fn stall_worker_at(mut self, n: u64, cycles: u64) -> Self {
        self.stall_worker_calls = self.stall_worker_calls.and_at(n);
        self.stall_cycles = cycles;
        self
    }

    /// Stall the worker servicing every `n`-th switchless call for
    /// `cycles`.
    #[must_use]
    pub fn stall_worker_every(mut self, n: u64, cycles: u64) -> Self {
        self.stall_worker_calls = self.stall_worker_calls.and_every(n);
        self.stall_cycles = cycles;
        self
    }

    /// Wedge the worker servicing switchless call `n` forever. May be
    /// chained to build a multi-hang schedule.
    #[must_use]
    pub fn hang_worker_at(mut self, n: u64) -> Self {
        self.hang_worker_calls = self.hang_worker_calls.and_at(n);
        self
    }

    /// Wedge the workers servicing each of the given switchless calls.
    #[must_use]
    pub fn hang_worker_at_each(mut self, ns: impl IntoIterator<Item = u64>) -> Self {
        self.hang_worker_calls = ns
            .into_iter()
            .fold(self.hang_worker_calls, FaultSchedule::and_at);
        self
    }

    /// Force the first `n` pool allocations to report exhaustion.
    #[must_use]
    pub fn exhaust_pool_first(mut self, n: u64) -> Self {
        self.exhaust_pool_first = n;
        self
    }

    /// Force the first `n` enclave transitions to fail.
    #[must_use]
    pub fn fail_transitions_first(mut self, n: u64) -> Self {
        self.fail_transition_first = n;
        self
    }

    /// Skew the clock by `cycles` on every `every`-th dispatch.
    #[must_use]
    pub fn skew_clock(mut self, every: u64, cycles: u64) -> Self {
        self.skew_every_dispatch = Some(every.max(1));
        self.skew_cycles = cycles;
        self
    }

    /// Byzantine: flip the status word on corruption-site index `n`.
    #[must_use]
    pub fn flip_status_at(mut self, n: u64) -> Self {
        self.flip_status_calls = self.flip_status_calls.and_at(n);
        self
    }

    /// Byzantine: flip the status word on every `n`-th corruption site.
    #[must_use]
    pub fn flip_status_every(mut self, n: u64) -> Self {
        self.flip_status_calls = self.flip_status_calls.and_every(n);
        self
    }

    /// Byzantine: garbage the command word on corruption-site index `n`.
    #[must_use]
    pub fn garbage_command_at(mut self, n: u64) -> Self {
        self.garbage_command_calls = self.garbage_command_calls.and_at(n);
        self
    }

    /// Byzantine: garbage the command word on every `n`-th site.
    #[must_use]
    pub fn garbage_command_every(mut self, n: u64) -> Self {
        self.garbage_command_calls = self.garbage_command_calls.and_every(n);
        self
    }

    /// Byzantine: oversize the declared reply length at site `n`.
    #[must_use]
    pub fn oversize_reply_at(mut self, n: u64) -> Self {
        self.oversize_reply_calls = self.oversize_reply_calls.and_at(n);
        self
    }

    /// Byzantine: oversize the declared reply length on every `n`-th
    /// site.
    #[must_use]
    pub fn oversize_reply_every(mut self, n: u64) -> Self {
        self.oversize_reply_calls = self.oversize_reply_calls.and_every(n);
        self
    }

    /// Byzantine: undersize the declared reply length at site `n`.
    #[must_use]
    pub fn undersize_reply_at(mut self, n: u64) -> Self {
        self.undersize_reply_calls = self.undersize_reply_calls.and_at(n);
        self
    }

    /// Byzantine: undersize the declared reply length on every `n`-th
    /// site.
    #[must_use]
    pub fn undersize_reply_every(mut self, n: u64) -> Self {
        self.undersize_reply_calls = self.undersize_reply_calls.and_every(n);
        self
    }

    /// Byzantine: replay a stale sequence tag at site `n`.
    #[must_use]
    pub fn stale_seq_at(mut self, n: u64) -> Self {
        self.stale_seq_calls = self.stale_seq_calls.and_at(n);
        self
    }

    /// Byzantine: replay a stale sequence tag on every `n`-th site.
    #[must_use]
    pub fn stale_seq_every(mut self, n: u64) -> Self {
        self.stale_seq_calls = self.stale_seq_calls.and_every(n);
        self
    }

    /// Byzantine: tear the request slot at site `n`.
    #[must_use]
    pub fn torn_request_at(mut self, n: u64) -> Self {
        self.torn_request_calls = self.torn_request_calls.and_at(n);
        self
    }

    /// Byzantine: tear the request slot on every `n`-th site.
    #[must_use]
    pub fn torn_request_every(mut self, n: u64) -> Self {
        self.torn_request_calls = self.torn_request_calls.and_every(n);
        self
    }

    /// Crash the enclave at dispatch-site index `n` (0-based). May be
    /// chained to build a multi-crash schedule.
    #[must_use]
    pub fn crash_enclave_at(mut self, n: u64) -> Self {
        self.enclave_crash_calls = self.enclave_crash_calls.and_at(n);
        self
    }

    /// Crash the enclave at each of the given dispatch-site indices.
    #[must_use]
    pub fn crash_enclave_at_each(mut self, ns: impl IntoIterator<Item = u64>) -> Self {
        self.enclave_crash_calls = ns
            .into_iter()
            .fold(self.enclave_crash_calls, FaultSchedule::and_at);
        self
    }

    /// Stall the enclave for `cycles` at dispatch-site index `n`, then
    /// revive. May be chained; the last `cycles` value wins.
    #[must_use]
    pub fn stall_enclave_at(mut self, n: u64, cycles: u64) -> Self {
        self.enclave_stall_calls = self.enclave_stall_calls.and_at(n);
        self.enclave_stall_cycles = cycles;
        self
    }

    /// Crash the enclave again during replay-site index `n` — after
    /// the replay journals its completion, before delivery.
    #[must_use]
    pub fn crash_enclave_during_replay_at(mut self, n: u64) -> Self {
        self.enclave_replay_crash_calls = self.enclave_replay_crash_calls.and_at(n);
        self
    }

    /// `true` when any enclave-fault schedule can fire.
    #[must_use]
    pub fn has_enclave_faults(&self) -> bool {
        !(self.enclave_crash_calls.is_empty()
            && self.enclave_stall_calls.is_empty()
            && self.enclave_replay_crash_calls.is_empty())
    }

    /// `true` when any Byzantine corruption schedule can fire.
    #[must_use]
    pub fn has_byzantine(&self) -> bool {
        !(self.flip_status_calls.is_empty()
            && self.garbage_command_calls.is_empty()
            && self.oversize_reply_calls.is_empty()
            && self.undersize_reply_calls.is_empty()
            && self.stale_seq_calls.is_empty()
            && self.torn_request_calls.is_empty())
    }
}

/// Decision returned by [`FaultInjector::on_worker_call`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerFault {
    /// Proceed normally.
    None,
    /// Burn the given number of modelled cycles before proceeding.
    Stall(u64),
    /// Terminate the worker thread (before touching the request).
    Crash,
    /// Wedge forever (park in an unrecoverable loop).
    Hang,
}

/// Decision returned by [`FaultInjector::on_enclave_call`]: what to do
/// to the whole enclave as a call dispatches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EnclaveFault {
    /// Proceed normally.
    None,
    /// Freeze the enclave for the given number of modelled cycles, then
    /// revive it (in-flight calls ride it out).
    Stall(u64),
    /// Kill the enclave: every in-flight call's fate becomes unknown
    /// until the recovery plane reconciles it.
    Crash,
}

/// Byzantine corruption decision returned by
/// [`FaultInjector::on_byzantine`]: how the (modelled) hostile host
/// lies about the call it is servicing. At most one corruption fires
/// per site index; earlier variants take precedence on overlap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ByzantineFault {
    /// Behave honestly.
    None,
    /// Overwrite the status word with an undecodable byte instead of
    /// publishing the reply.
    FlipStatus,
    /// Scribble an undecodable byte into the scheduler-command word.
    GarbageCommand,
    /// Declare more reply bytes than were produced.
    OversizeReplyLen,
    /// Declare fewer reply bytes than were produced.
    UndersizeReplyLen,
    /// Stamp the reply with a stale sequence tag (replayed reply).
    StaleSeqReplay,
    /// Overwrite the posted request while the worker owns the slot.
    TornRequest,
}

/// Snapshot of faults injected so far (observability for tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Worker crashes injected.
    pub crashes: u64,
    /// Worker stalls injected.
    pub stalls: u64,
    /// Worker hangs injected.
    pub hangs: u64,
    /// Pool allocations forced to report exhaustion.
    pub pool_exhaustions: u64,
    /// Enclave transitions forced to fail.
    pub transition_failures: u64,
    /// Clock skews applied.
    pub clock_skews: u64,
    /// Byzantine status-word flips injected.
    pub flipped_status: u64,
    /// Byzantine command-word scribbles injected.
    pub garbage_commands: u64,
    /// Byzantine oversized reply-length lies injected.
    pub oversize_replies: u64,
    /// Byzantine undersized reply-length lies injected.
    pub undersize_replies: u64,
    /// Byzantine stale-sequence replays injected.
    pub stale_replays: u64,
    /// Byzantine torn-request overwrites injected.
    pub torn_requests: u64,
    /// Whole-enclave crashes injected.
    pub enclave_crashes: u64,
    /// Whole-enclave stalls injected.
    pub enclave_stalls: u64,
    /// Enclave crashes injected during replay.
    pub enclave_replay_crashes: u64,
}

impl FaultCounts {
    /// Total Byzantine corruptions injected (all six kinds).
    #[must_use]
    pub fn byzantine_total(&self) -> u64 {
        self.flipped_status
            + self.garbage_commands
            + self.oversize_replies
            + self.undersize_replies
            + self.stale_replays
            + self.torn_requests
    }
}

/// Thread-safe evaluator of a [`FaultPlan`]: each instrumented site
/// calls its `on_*` hook, which advances a per-site atomic counter and
/// reports whether (and how) to misbehave.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    worker_calls: AtomicU64,
    pool_allocs: AtomicU64,
    transitions: AtomicU64,
    dispatches: AtomicU64,
    byzantine_calls: AtomicU64,
    crashes: AtomicU64,
    stalls: AtomicU64,
    hangs: AtomicU64,
    pool_exhaustions: AtomicU64,
    transition_failures: AtomicU64,
    clock_skews: AtomicU64,
    flipped_status: AtomicU64,
    garbage_commands: AtomicU64,
    oversize_replies: AtomicU64,
    undersize_replies: AtomicU64,
    stale_replays: AtomicU64,
    torn_requests: AtomicU64,
    enclave_calls: AtomicU64,
    replay_calls: AtomicU64,
    enclave_crashes: AtomicU64,
    enclave_stalls: AtomicU64,
    enclave_replay_crashes: AtomicU64,
}

impl FaultInjector {
    /// Injector evaluating `plan`.
    #[must_use]
    pub fn new(plan: FaultPlan) -> Self {
        FaultInjector {
            plan,
            worker_calls: AtomicU64::new(0),
            pool_allocs: AtomicU64::new(0),
            transitions: AtomicU64::new(0),
            dispatches: AtomicU64::new(0),
            byzantine_calls: AtomicU64::new(0),
            crashes: AtomicU64::new(0),
            stalls: AtomicU64::new(0),
            hangs: AtomicU64::new(0),
            pool_exhaustions: AtomicU64::new(0),
            transition_failures: AtomicU64::new(0),
            clock_skews: AtomicU64::new(0),
            flipped_status: AtomicU64::new(0),
            garbage_commands: AtomicU64::new(0),
            oversize_replies: AtomicU64::new(0),
            undersize_replies: AtomicU64::new(0),
            stale_replays: AtomicU64::new(0),
            torn_requests: AtomicU64::new(0),
            enclave_calls: AtomicU64::new(0),
            replay_calls: AtomicU64::new(0),
            enclave_crashes: AtomicU64::new(0),
            enclave_stalls: AtomicU64::new(0),
            enclave_replay_crashes: AtomicU64::new(0),
        }
    }

    /// The plan this injector evaluates.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Site hook: a worker is about to service a switchless call.
    /// Advances the worker-call index and returns the fault to inject.
    pub fn on_worker_call(&self) -> WorkerFault {
        let n = self.worker_calls.fetch_add(1, Ordering::AcqRel);
        if self.plan.crash_worker_calls.fires_at(n) {
            self.crashes.fetch_add(1, Ordering::Relaxed);
            return WorkerFault::Crash;
        }
        if self.plan.hang_worker_calls.fires_at(n) {
            self.hangs.fetch_add(1, Ordering::Relaxed);
            return WorkerFault::Hang;
        }
        if self.plan.stall_worker_calls.fires_at(n) {
            self.stalls.fetch_add(1, Ordering::Relaxed);
            return WorkerFault::Stall(self.plan.stall_cycles);
        }
        WorkerFault::None
    }

    /// Site hook: a worker is about to publish the result of a
    /// switchless call — the moment a hostile host would lie. Advances
    /// the corruption-site index and returns the corruption to apply
    /// (at most one per site; earlier [`ByzantineFault`] variants win
    /// on overlap).
    pub fn on_byzantine(&self) -> ByzantineFault {
        let n = self.byzantine_calls.fetch_add(1, Ordering::AcqRel);
        if self.plan.flip_status_calls.fires_at(n) {
            self.flipped_status.fetch_add(1, Ordering::Relaxed);
            return ByzantineFault::FlipStatus;
        }
        if self.plan.garbage_command_calls.fires_at(n) {
            self.garbage_commands.fetch_add(1, Ordering::Relaxed);
            return ByzantineFault::GarbageCommand;
        }
        if self.plan.oversize_reply_calls.fires_at(n) {
            self.oversize_replies.fetch_add(1, Ordering::Relaxed);
            return ByzantineFault::OversizeReplyLen;
        }
        if self.plan.undersize_reply_calls.fires_at(n) {
            self.undersize_replies.fetch_add(1, Ordering::Relaxed);
            return ByzantineFault::UndersizeReplyLen;
        }
        if self.plan.stale_seq_calls.fires_at(n) {
            self.stale_replays.fetch_add(1, Ordering::Relaxed);
            return ByzantineFault::StaleSeqReplay;
        }
        if self.plan.torn_request_calls.fires_at(n) {
            self.torn_requests.fetch_add(1, Ordering::Relaxed);
            return ByzantineFault::TornRequest;
        }
        ByzantineFault::None
    }

    /// Site hook: a call is dispatching into the enclave machinery.
    /// Advances the enclave-site index and returns the whole-enclave
    /// fault to inject (crash wins over stall on overlap).
    pub fn on_enclave_call(&self) -> EnclaveFault {
        let n = self.enclave_calls.fetch_add(1, Ordering::AcqRel);
        if self.plan.enclave_crash_calls.fires_at(n) {
            self.enclave_crashes.fetch_add(1, Ordering::Relaxed);
            return EnclaveFault::Crash;
        }
        if self.plan.enclave_stall_calls.fires_at(n) {
            self.enclave_stalls.fetch_add(1, Ordering::Relaxed);
            return EnclaveFault::Stall(self.plan.enclave_stall_cycles);
        }
        EnclaveFault::None
    }

    /// Site hook: a reconciled call is replaying after a restart (the
    /// replay's completion is journaled, delivery has not happened).
    /// Returns `true` if the enclave must crash again right here —
    /// the crash-during-replay scenario.
    pub fn on_enclave_replay(&self) -> bool {
        let n = self.replay_calls.fetch_add(1, Ordering::AcqRel);
        if self.plan.enclave_replay_crash_calls.fires_at(n) {
            self.enclave_replay_crashes.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Site hook: a caller is allocating from a request pool. Returns
    /// `true` if the allocation must report exhaustion.
    pub fn on_pool_alloc(&self) -> bool {
        let n = self.pool_allocs.fetch_add(1, Ordering::AcqRel);
        if n < self.plan.exhaust_pool_first {
            self.pool_exhaustions.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Site hook: a regular enclave transition is about to execute.
    /// Returns `true` if the transition must fail.
    pub fn on_transition(&self) -> bool {
        let n = self.transitions.fetch_add(1, Ordering::AcqRel);
        if n < self.plan.fail_transition_first {
            self.transition_failures.fetch_add(1, Ordering::Relaxed);
            true
        } else {
            false
        }
    }

    /// Site hook: a dispatch is entering the runtime. Returns the clock
    /// skew (in cycles) to apply, `0` for none.
    pub fn on_dispatch(&self) -> u64 {
        let n = self.dispatches.fetch_add(1, Ordering::AcqRel);
        match self.plan.skew_every_dispatch {
            Some(every) if (n + 1).is_multiple_of(every) => {
                self.clock_skews.fetch_add(1, Ordering::Relaxed);
                self.plan.skew_cycles
            }
            _ => 0,
        }
    }

    /// Faults injected so far.
    #[must_use]
    pub fn counts(&self) -> FaultCounts {
        FaultCounts {
            crashes: self.crashes.load(Ordering::Acquire),
            stalls: self.stalls.load(Ordering::Acquire),
            hangs: self.hangs.load(Ordering::Acquire),
            pool_exhaustions: self.pool_exhaustions.load(Ordering::Acquire),
            transition_failures: self.transition_failures.load(Ordering::Acquire),
            clock_skews: self.clock_skews.load(Ordering::Acquire),
            flipped_status: self.flipped_status.load(Ordering::Acquire),
            garbage_commands: self.garbage_commands.load(Ordering::Acquire),
            oversize_replies: self.oversize_replies.load(Ordering::Acquire),
            undersize_replies: self.undersize_replies.load(Ordering::Acquire),
            stale_replays: self.stale_replays.load(Ordering::Acquire),
            torn_requests: self.torn_requests.load(Ordering::Acquire),
            enclave_crashes: self.enclave_crashes.load(Ordering::Acquire),
            enclave_stalls: self.enclave_stalls.load(Ordering::Acquire),
            enclave_replay_crashes: self.enclave_replay_crashes.load(Ordering::Acquire),
        }
    }
}

/// Outcome of a drain-with-timeout shutdown.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DrainReport {
    /// Worker threads that exited and were joined within the timeout.
    pub drained: usize,
    /// Worker threads still alive at the deadline, detached instead of
    /// joined (e.g. wedged by a [`WorkerFault::Hang`]).
    pub abandoned: usize,
}

impl DrainReport {
    /// `true` when every worker exited within the timeout.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.abandoned == 0
    }
}

/// Recorder of successful worker-state transitions, for state-machine
/// property tests: attach one to every worker buffer and assert
/// afterwards that only legal edges of the paper's state machine were
/// taken, even under injected faults.
#[derive(Debug, Default)]
pub struct TransitionLog {
    edges: Mutex<Vec<(WorkerState, WorkerState)>>,
}

impl TransitionLog {
    /// Empty log.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one successful `from -> to` transition.
    pub fn record(&self, from: WorkerState, to: WorkerState) {
        self.edges
            .lock()
            .expect("transition log poisoned")
            .push((from, to));
    }

    /// All recorded edges, in global observation order.
    #[must_use]
    pub fn edges(&self) -> Vec<(WorkerState, WorkerState)> {
        self.edges.lock().expect("transition log poisoned").clone()
    }

    /// Recorded edges that are illegal per
    /// [`WorkerState::can_transition`]. Empty on a correct run.
    #[must_use]
    pub fn illegal_edges(&self) -> Vec<(WorkerState, WorkerState)> {
        self.edges()
            .into_iter()
            .filter(|(from, to)| !from.can_transition(*to))
            .collect()
    }

    /// Number of recorded edges.
    #[must_use]
    pub fn len(&self) -> usize {
        self.edges.lock().expect("transition log poisoned").len()
    }

    /// `true` if nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_injects_nothing() {
        let inj = FaultInjector::new(FaultPlan::new());
        for _ in 0..100 {
            assert_eq!(inj.on_worker_call(), WorkerFault::None);
            assert!(!inj.on_pool_alloc());
            assert!(!inj.on_transition());
            assert_eq!(inj.on_dispatch(), 0);
        }
        assert_eq!(inj.counts(), FaultCounts::default());
    }

    #[test]
    fn crash_fires_exactly_once_at_index() {
        let inj = FaultInjector::new(FaultPlan::new().crash_worker_at(3));
        let decisions: Vec<_> = (0..6).map(|_| inj.on_worker_call()).collect();
        assert_eq!(decisions[3], WorkerFault::Crash);
        assert_eq!(
            decisions
                .iter()
                .filter(|d| **d == WorkerFault::Crash)
                .count(),
            1
        );
        assert_eq!(inj.counts().crashes, 1);
    }

    #[test]
    fn stall_and_hang_fire_at_their_indices() {
        let inj = FaultInjector::new(FaultPlan::new().stall_worker_at(0, 5_000).hang_worker_at(2));
        assert_eq!(inj.on_worker_call(), WorkerFault::Stall(5_000));
        assert_eq!(inj.on_worker_call(), WorkerFault::None);
        assert_eq!(inj.on_worker_call(), WorkerFault::Hang);
        let c = inj.counts();
        assert_eq!((c.stalls, c.hangs), (1, 1));
    }

    #[test]
    fn pool_and_transition_prefixes() {
        let inj = FaultInjector::new(
            FaultPlan::new()
                .exhaust_pool_first(2)
                .fail_transitions_first(1),
        );
        assert!(inj.on_pool_alloc());
        assert!(inj.on_pool_alloc());
        assert!(!inj.on_pool_alloc());
        assert!(inj.on_transition());
        assert!(!inj.on_transition());
        let c = inj.counts();
        assert_eq!((c.pool_exhaustions, c.transition_failures), (2, 1));
    }

    #[test]
    fn skew_fires_every_nth_dispatch() {
        let inj = FaultInjector::new(FaultPlan::new().skew_clock(3, 1_000));
        let skews: Vec<u64> = (0..9).map(|_| inj.on_dispatch()).collect();
        assert_eq!(skews, vec![0, 0, 1_000, 0, 0, 1_000, 0, 0, 1_000]);
        assert_eq!(inj.counts().clock_skews, 3);
    }

    #[test]
    fn schedule_fires_at_each_explicit_index() {
        let inj = FaultInjector::new(FaultPlan::new().crash_worker_at_each([1, 4, 5]));
        let decisions: Vec<_> = (0..8).map(|_| inj.on_worker_call()).collect();
        for (i, d) in decisions.iter().enumerate() {
            let expect = if [1, 4, 5].contains(&i) {
                WorkerFault::Crash
            } else {
                WorkerFault::None
            };
            assert_eq!(*d, expect, "call {i}");
        }
        assert_eq!(inj.counts().crashes, 3);
    }

    #[test]
    fn chained_single_index_builders_accumulate() {
        // Backward-compatible sugar: chaining the one-shot builder
        // builds the same schedule as the multi-index form.
        let chained = FaultPlan::new().crash_worker_at(2).crash_worker_at(7);
        assert_eq!(
            chained.crash_worker_calls,
            FaultSchedule::at_each([7, 2]),
            "order-insensitive"
        );
        let inj = FaultInjector::new(chained);
        let crashes = (0..10)
            .map(|_| inj.on_worker_call())
            .filter(|d| *d == WorkerFault::Crash)
            .count();
        assert_eq!(crashes, 2);
    }

    #[test]
    fn every_n_schedule_fires_periodically() {
        let inj = FaultInjector::new(FaultPlan::new().stall_worker_every(3, 1_000));
        let decisions: Vec<_> = (0..9).map(|_| inj.on_worker_call()).collect();
        assert_eq!(
            decisions,
            vec![
                WorkerFault::None,
                WorkerFault::None,
                WorkerFault::Stall(1_000),
                WorkerFault::None,
                WorkerFault::None,
                WorkerFault::Stall(1_000),
                WorkerFault::None,
                WorkerFault::None,
                WorkerFault::Stall(1_000),
            ]
        );
        assert_eq!(inj.counts().stalls, 3);
    }

    #[test]
    fn mixed_crash_and_hang_schedules_compose() {
        let inj = FaultInjector::new(
            FaultPlan::new()
                .crash_worker_at_each([0, 3])
                .hang_worker_at_each([1, 5]),
        );
        let d: Vec<_> = (0..6).map(|_| inj.on_worker_call()).collect();
        assert_eq!(d[0], WorkerFault::Crash);
        assert_eq!(d[1], WorkerFault::Hang);
        assert_eq!(d[2], WorkerFault::None);
        assert_eq!(d[3], WorkerFault::Crash);
        assert_eq!(d[5], WorkerFault::Hang);
        let c = inj.counts();
        assert_eq!((c.crashes, c.hangs), (2, 2));
    }

    #[test]
    fn crash_takes_precedence_over_hang_on_overlap() {
        let inj = FaultInjector::new(FaultPlan::new().crash_worker_at(0).hang_worker_at(0));
        assert_eq!(inj.on_worker_call(), WorkerFault::Crash);
        assert_eq!(inj.counts().hangs, 0);
    }

    #[test]
    fn seeded_schedule_is_reproducible_and_bounded() {
        let a = FaultSchedule::seeded(42, 16, 1_000);
        let b = FaultSchedule::seeded(42, 16, 1_000);
        assert_eq!(a, b, "same seed, same schedule");
        assert_ne!(a, FaultSchedule::seeded(43, 16, 1_000));
        assert!(!a.is_empty());
        assert!(a.indices().iter().all(|&i| i < 1_000));
        assert!(a.indices().len() <= 16, "duplicates collapse");
        // Degenerate range still works.
        let z = FaultSchedule::seeded(7, 4, 0);
        assert_eq!(z.indices(), &[0]);
    }

    #[test]
    fn schedule_firings_below_counts_without_double_counting() {
        let s = FaultSchedule::at_each([2, 9]).and_every(5);
        // stride hits below 20: indices 4, 9, 14, 19; explicit: 2, 9.
        // index 9 overlaps -> 4 + 2 - 1 = 5.
        assert_eq!(s.firings_below(20), 5);
        assert_eq!(FaultSchedule::new().firings_below(100), 0);
        assert_eq!(FaultSchedule::every(1).firings_below(7), 7);
    }

    #[test]
    fn empty_schedule_never_fires_and_zero_stride_clamps() {
        let s = FaultSchedule::new();
        assert!(s.is_empty());
        assert!(!s.fires_at(0));
        let clamped = FaultSchedule::every(0);
        assert_eq!(clamped.stride(), Some(1), "stride clamps to >=1");
        assert!(clamped.fires_at(0) && clamped.fires_at(1));
        assert!(!FaultSchedule::at(3).is_empty());
    }

    #[test]
    fn byzantine_schedules_fire_at_their_sites() {
        let inj = FaultInjector::new(
            FaultPlan::new()
                .flip_status_at(0)
                .garbage_command_at(1)
                .oversize_reply_at(2)
                .undersize_reply_at(3)
                .stale_seq_at(4)
                .torn_request_at(5),
        );
        let d: Vec<_> = (0..7).map(|_| inj.on_byzantine()).collect();
        assert_eq!(
            d,
            vec![
                ByzantineFault::FlipStatus,
                ByzantineFault::GarbageCommand,
                ByzantineFault::OversizeReplyLen,
                ByzantineFault::UndersizeReplyLen,
                ByzantineFault::StaleSeqReplay,
                ByzantineFault::TornRequest,
                ByzantineFault::None,
            ]
        );
        let c = inj.counts();
        assert_eq!(c.byzantine_total(), 6);
        assert_eq!(
            (c.flipped_status, c.garbage_commands, c.oversize_replies),
            (1, 1, 1)
        );
        assert_eq!(
            (c.undersize_replies, c.stale_replays, c.torn_requests),
            (1, 1, 1)
        );
    }

    #[test]
    fn byzantine_precedence_and_empty_plan() {
        assert!(!FaultPlan::new().has_byzantine());
        let plan = FaultPlan::new().flip_status_at(0).torn_request_at(0);
        assert!(plan.has_byzantine());
        let inj = FaultInjector::new(plan);
        assert_eq!(inj.on_byzantine(), ByzantineFault::FlipStatus);
        assert_eq!(inj.counts().torn_requests, 0);
        let clean = FaultInjector::new(FaultPlan::new());
        for _ in 0..10 {
            assert_eq!(clean.on_byzantine(), ByzantineFault::None);
        }
        assert_eq!(clean.counts().byzantine_total(), 0);
    }

    #[test]
    fn byzantine_sites_are_independent_of_worker_calls() {
        // A crash schedule at worker-call 0 must not consume the
        // corruption-site index, and vice versa.
        let inj = FaultInjector::new(FaultPlan::new().crash_worker_at(0).stale_seq_at(0));
        assert_eq!(inj.on_byzantine(), ByzantineFault::StaleSeqReplay);
        assert_eq!(inj.on_worker_call(), WorkerFault::Crash);
    }

    #[test]
    fn enclave_fault_schedules_fire_at_their_sites() {
        let inj = FaultInjector::new(
            FaultPlan::new()
                .crash_enclave_at(1)
                .stall_enclave_at(3, 9_000)
                .crash_enclave_during_replay_at(0),
        );
        let d: Vec<_> = (0..5).map(|_| inj.on_enclave_call()).collect();
        assert_eq!(
            d,
            vec![
                EnclaveFault::None,
                EnclaveFault::Crash,
                EnclaveFault::None,
                EnclaveFault::Stall(9_000),
                EnclaveFault::None,
            ]
        );
        assert!(inj.on_enclave_replay());
        assert!(!inj.on_enclave_replay());
        let c = inj.counts();
        assert_eq!(
            (
                c.enclave_crashes,
                c.enclave_stalls,
                c.enclave_replay_crashes
            ),
            (1, 1, 1)
        );
    }

    #[test]
    fn enclave_crash_wins_over_stall_on_overlap() {
        let plan = FaultPlan::new()
            .crash_enclave_at(0)
            .stall_enclave_at(0, 100);
        assert!(plan.has_enclave_faults());
        assert!(!FaultPlan::new().has_enclave_faults());
        let inj = FaultInjector::new(plan);
        assert_eq!(inj.on_enclave_call(), EnclaveFault::Crash);
        assert_eq!(inj.counts().enclave_stalls, 0);
    }

    #[test]
    fn enclave_sites_are_independent_of_worker_sites() {
        let inj = FaultInjector::new(FaultPlan::new().crash_worker_at(0).crash_enclave_at(0));
        assert_eq!(inj.on_enclave_call(), EnclaveFault::Crash);
        assert_eq!(inj.on_worker_call(), WorkerFault::Crash);
        assert!(!inj.on_enclave_replay(), "replay site separate too");
    }

    #[test]
    fn transition_log_flags_illegal_edges() {
        let log = TransitionLog::new();
        log.record(WorkerState::Unused, WorkerState::Reserved);
        log.record(WorkerState::Reserved, WorkerState::Processing);
        assert!(log.illegal_edges().is_empty());
        log.record(WorkerState::Processing, WorkerState::Unused); // illegal
        assert_eq!(
            log.illegal_edges(),
            vec![(WorkerState::Processing, WorkerState::Unused)]
        );
        assert_eq!(log.len(), 3);
        assert!(!log.is_empty());
    }

    #[test]
    fn drain_report_cleanliness() {
        assert!(DrainReport {
            drained: 3,
            abandoned: 0
        }
        .is_clean());
        assert!(!DrainReport {
            drained: 2,
            abandoned: 1
        }
        .is_clean());
    }
}
