//! Fig. 12: dynamic lmbench CPU usage (plateau summary + per-τ CPU
//! series implied by the fig11 series CSVs, which carry a %cpu column).
//!
//! Usage: `fig12_lmbench_cpu [--quick]`

use zc_bench::experiments::lmbench::{fig12, run_all, LmbenchParams};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let p = if quick {
        LmbenchParams {
            phase_secs: 1,
            ..LmbenchParams::default()
        }
    } else {
        LmbenchParams::default()
    };
    for workers in [2usize, 4] {
        let reports = run_all(&p, workers);
        let t = fig12(&reports, workers);
        t.emit(Some(std::path::Path::new(&format!(
            "results/fig12_lmbench_cpu_{workers}w.csv"
        ))));
    }
}
