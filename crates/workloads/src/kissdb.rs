//! From-scratch Rust port of kissdb ("keep it simple stupid database").
//!
//! kissdb stores fixed-size key/value pairs in a single file: a header,
//! then a chain of hash-table pages interleaved with entries. Each hash
//! table is `hash_table_size + 1` little-endian `u64` slots — slot `h`
//! holds the file offset of an entry whose key hashed to `h` (0 = empty),
//! and the final slot links to the next hash-table page (0 = none).
//! Collisions cascade into later tables. Like the original C, all hash
//! tables are mirrored in memory and written through to disk.
//!
//! All file accesses go through [`EnclaveIo`], producing exactly the
//! paper's §V-A ocall mix: `fseeko` (most frequent, shortest), `fread`
//! and `fwrite`.

use crate::efile::{EnclaveIo, IoError};
use sgx_sim::hostfs::{OpenMode, Whence};

const MAGIC: &[u8; 8] = b"KISSDB2\0";

/// Errors from kissdb operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// Underlying file I/O failed.
    Io(IoError),
    /// Key or value length does not match the database parameters.
    BadLength {
        /// Bytes supplied.
        got: usize,
        /// Bytes required.
        want: usize,
    },
    /// The file exists but is not a kissdb database (bad magic/params).
    Corrupt,
}

impl std::fmt::Display for DbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DbError::Io(e) => write!(f, "kissdb i/o error: {e}"),
            DbError::BadLength { got, want } => {
                write!(f, "kissdb length mismatch: got {got} bytes, want {want}")
            }
            DbError::Corrupt => write!(f, "not a kissdb database"),
        }
    }
}

impl std::error::Error for DbError {}

impl From<IoError> for DbError {
    fn from(e: IoError) -> Self {
        DbError::Io(e)
    }
}

/// A key/value pair returned by [`KissDb::iter_all`].
pub type Entry = (Vec<u8>, Vec<u8>);

/// An open kissdb database.
pub struct KissDb<'a> {
    io: EnclaveIo<'a>,
    fd: u64,
    hash_table_size: u64,
    key_size: usize,
    value_size: usize,
    /// In-memory mirror of all hash-table pages, one `Vec` per page
    /// (`hash_table_size + 1` slots each, last = next-page offset).
    tables: Vec<Vec<u64>>,
    /// File offset of each hash-table page.
    table_offsets: Vec<u64>,
}

impl std::fmt::Debug for KissDb<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KissDb")
            .field("hash_table_size", &self.hash_table_size)
            .field("key_size", &self.key_size)
            .field("value_size", &self.value_size)
            .field("tables", &self.tables.len())
            .finish()
    }
}

/// The djb2-style hash the original kissdb uses.
fn kissdb_hash(key: &[u8]) -> u64 {
    let mut h: u64 = 5381;
    for &b in key {
        h = h.wrapping_mul(33).wrapping_add(u64::from(b));
    }
    h
}

impl<'a> KissDb<'a> {
    /// Open (or create) a database at `path`.
    ///
    /// For an existing file the stored parameters must match.
    ///
    /// # Errors
    ///
    /// [`DbError::Corrupt`] on magic/parameter mismatch; [`DbError::Io`]
    /// on file errors.
    pub fn open(
        io: EnclaveIo<'a>,
        path: &str,
        hash_table_size: u64,
        key_size: usize,
        value_size: usize,
    ) -> Result<Self, DbError> {
        assert!(hash_table_size > 0, "hash table size must be positive");
        assert!(
            key_size > 0 && value_size > 0,
            "key/value sizes must be positive"
        );
        // Try to open existing; create otherwise.
        let existing = io.open(path, OpenMode::ReadWrite)?;
        let mut db = KissDb {
            io,
            fd: existing,
            hash_table_size,
            key_size,
            value_size,
            tables: Vec::new(),
            table_offsets: Vec::new(),
        };
        let end = db.io.seek(db.fd, 0, Whence::End)?;
        if end == 0 {
            db.write_header()?;
            db.append_table()?;
        } else {
            db.load()?;
        }
        Ok(db)
    }

    fn header_len() -> u64 {
        8 + 3 * 8
    }

    fn table_bytes(&self) -> u64 {
        (self.hash_table_size + 1) * 8
    }

    fn entry_bytes(&self) -> u64 {
        (self.key_size + self.value_size) as u64
    }

    fn write_header(&mut self) -> Result<(), DbError> {
        let mut hdr = Vec::with_capacity(Self::header_len() as usize);
        hdr.extend_from_slice(MAGIC);
        hdr.extend_from_slice(&self.hash_table_size.to_le_bytes());
        hdr.extend_from_slice(&(self.key_size as u64).to_le_bytes());
        hdr.extend_from_slice(&(self.value_size as u64).to_le_bytes());
        self.io.seek(self.fd, 0, Whence::Set)?;
        self.io.write(self.fd, &hdr)?;
        Ok(())
    }

    /// Append a zeroed hash-table page at EOF, linking it from the
    /// previous page (on disk and in memory).
    fn append_table(&mut self) -> Result<(), DbError> {
        let pos = self.io.seek(self.fd, 0, Whence::End)?;
        let zeros = vec![0u8; self.table_bytes() as usize];
        self.io.write(self.fd, &zeros)?;
        if let Some(last_off) = self.table_offsets.last().copied() {
            let link_pos = last_off + self.hash_table_size * 8;
            self.io.seek(self.fd, link_pos as i64, Whence::Set)?;
            self.io.write(self.fd, &pos.to_le_bytes())?;
            let n = self.tables.len();
            self.tables[n - 1][self.hash_table_size as usize] = pos;
        }
        self.tables
            .push(vec![0u64; (self.hash_table_size + 1) as usize]);
        self.table_offsets.push(pos);
        Ok(())
    }

    /// Load header and hash-table pages of an existing database.
    fn load(&mut self) -> Result<(), DbError> {
        let mut buf = Vec::new();
        self.io.seek(self.fd, 0, Whence::Set)?;
        self.io
            .read_exact(self.fd, Self::header_len() as usize, &mut buf)
            .map_err(|_| DbError::Corrupt)?;
        if &buf[..8] != MAGIC {
            return Err(DbError::Corrupt);
        }
        let u = |i: usize| u64::from_le_bytes(buf[i..i + 8].try_into().expect("8 bytes"));
        if u(8) != self.hash_table_size
            || u(16) != self.key_size as u64
            || u(24) != self.value_size as u64
        {
            return Err(DbError::Corrupt);
        }
        // Walk the table chain.
        let mut off = Self::header_len();
        loop {
            self.io.seek(self.fd, off as i64, Whence::Set)?;
            let mut raw = Vec::new();
            self.io
                .read_exact(self.fd, self.table_bytes() as usize, &mut raw)
                .map_err(|_| DbError::Corrupt)?;
            let table: Vec<u64> = raw
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
                .collect();
            let next = table[self.hash_table_size as usize];
            self.tables.push(table);
            self.table_offsets.push(off);
            if next == 0 {
                break;
            }
            off = next;
        }
        Ok(())
    }

    fn check_key(&self, key: &[u8]) -> Result<(), DbError> {
        if key.len() != self.key_size {
            return Err(DbError::BadLength {
                got: key.len(),
                want: self.key_size,
            });
        }
        Ok(())
    }

    /// Insert or update a key/value pair.
    ///
    /// # Errors
    ///
    /// [`DbError::BadLength`] on size mismatch, [`DbError::Io`] on file
    /// errors.
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> Result<(), DbError> {
        self.check_key(key)?;
        if value.len() != self.value_size {
            return Err(DbError::BadLength {
                got: value.len(),
                want: self.value_size,
            });
        }
        let h = (kissdb_hash(key) % self.hash_table_size) as usize;
        let mut buf = Vec::new();
        for t in 0..self.tables.len() {
            let slot = self.tables[t][h];
            if slot == 0 {
                // Free slot: append the entry, then point the slot at it.
                let pos = self.io.seek(self.fd, 0, Whence::End)?;
                let mut entry = Vec::with_capacity(self.entry_bytes() as usize);
                entry.extend_from_slice(key);
                entry.extend_from_slice(value);
                self.io.write(self.fd, &entry)?;
                let slot_pos = self.table_offsets[t] + (h as u64) * 8;
                self.io.seek(self.fd, slot_pos as i64, Whence::Set)?;
                self.io.write(self.fd, &pos.to_le_bytes())?;
                self.tables[t][h] = pos;
                return Ok(());
            }
            // Occupied: compare the stored key.
            self.io.seek(self.fd, slot as i64, Whence::Set)?;
            self.io.read_exact(self.fd, self.key_size, &mut buf)?;
            if buf == key {
                // Same key: overwrite the value in place (the seek left
                // the position right after the key).
                self.io.write(self.fd, value)?;
                return Ok(());
            }
            // Collision: try the next table.
        }
        // All tables collided: grow the chain and retry (the new table's
        // slot h is guaranteed free).
        self.append_table()?;
        self.put(key, value)
    }

    /// Look up a key, returning its value if present.
    ///
    /// # Errors
    ///
    /// [`DbError::BadLength`] for a wrong-size key, [`DbError::Io`] on
    /// file errors.
    pub fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>, DbError> {
        self.check_key(key)?;
        let h = (kissdb_hash(key) % self.hash_table_size) as usize;
        let mut buf = Vec::new();
        for t in 0..self.tables.len() {
            let slot = self.tables[t][h];
            if slot == 0 {
                return Ok(None);
            }
            self.io.seek(self.fd, slot as i64, Whence::Set)?;
            self.io.read_exact(self.fd, self.key_size, &mut buf)?;
            if buf == key {
                let mut val = Vec::new();
                self.io.read_exact(self.fd, self.value_size, &mut val)?;
                return Ok(Some(val));
            }
        }
        Ok(None)
    }

    /// Number of hash-table pages currently in the chain.
    #[must_use]
    pub fn table_pages(&self) -> usize {
        self.tables.len()
    }

    /// Iterate over all stored key/value pairs, in hash-table order
    /// (the C kissdb's `KISSDB_Iterator`). Pairs are read through the
    /// ocall layer like every other access.
    ///
    /// # Errors
    ///
    /// [`DbError::Io`] on file errors while walking the tables.
    pub fn iter_all(&mut self) -> Result<Vec<Entry>, DbError> {
        let mut out = Vec::new();
        for t in 0..self.tables.len() {
            for h in 0..self.hash_table_size as usize {
                let slot = self.tables[t][h];
                if slot == 0 {
                    continue;
                }
                self.io.seek(self.fd, slot as i64, Whence::Set)?;
                let mut key = Vec::new();
                self.io.read_exact(self.fd, self.key_size, &mut key)?;
                let mut val = Vec::new();
                self.io.read_exact(self.fd, self.value_size, &mut val)?;
                out.push((key, val));
            }
        }
        Ok(out)
    }

    /// Number of live entries (slots in use across all table pages).
    #[must_use]
    pub fn len(&self) -> usize {
        self.tables
            .iter()
            .map(|t| {
                t[..self.hash_table_size as usize]
                    .iter()
                    .filter(|&&s| s != 0)
                    .count()
            })
            .sum()
    }

    /// `true` if no entries are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Close the database file.
    ///
    /// # Errors
    ///
    /// [`DbError::Io`] if the descriptor is already gone.
    pub fn close(self) -> Result<(), DbError> {
        self.io.close(self.fd)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::efile::regular_fixture;

    fn key8(i: u64) -> Vec<u8> {
        i.to_le_bytes().to_vec()
    }

    #[test]
    fn put_get_roundtrip() {
        let (_fs, disp, funcs) = regular_fixture();
        let io = EnclaveIo::new(&disp, funcs);
        let mut db = KissDb::open(io, "/db", 64, 8, 8).unwrap();
        for i in 0..100u64 {
            db.put(&key8(i), &key8(i * 7)).unwrap();
        }
        for i in 0..100u64 {
            assert_eq!(db.get(&key8(i)).unwrap(), Some(key8(i * 7)), "key {i}");
        }
        assert_eq!(db.get(&key8(999)).unwrap(), None);
        db.close().unwrap();
    }

    #[test]
    fn overwrite_updates_in_place() {
        let (fs, disp, funcs) = regular_fixture();
        let io = EnclaveIo::new(&disp, funcs);
        let mut db = KissDb::open(io, "/db", 16, 8, 8).unwrap();
        db.put(&key8(1), &key8(10)).unwrap();
        let size_before = fs.file_size("/db").unwrap();
        db.put(&key8(1), &key8(20)).unwrap();
        let size_after = fs.file_size("/db").unwrap();
        assert_eq!(size_before, size_after, "overwrite must not grow the file");
        assert_eq!(db.get(&key8(1)).unwrap(), Some(key8(20)));
    }

    #[test]
    fn collisions_cascade_into_new_tables() {
        let (_fs, disp, funcs) = regular_fixture();
        let io = EnclaveIo::new(&disp, funcs);
        // Tiny table: 2 slots forces chains quickly.
        let mut db = KissDb::open(io, "/db", 2, 8, 8).unwrap();
        for i in 0..20u64 {
            db.put(&key8(i), &key8(i + 100)).unwrap();
        }
        assert!(db.table_pages() > 1, "collisions must grow the chain");
        for i in 0..20u64 {
            assert_eq!(db.get(&key8(i)).unwrap(), Some(key8(i + 100)));
        }
    }

    #[test]
    fn reopen_preserves_data() {
        let (_fs, disp, funcs) = regular_fixture();
        {
            let io = EnclaveIo::new(&disp, funcs);
            let mut db = KissDb::open(io, "/db", 8, 8, 8).unwrap();
            for i in 0..50u64 {
                db.put(&key8(i), &key8(i * 3)).unwrap();
            }
            db.close().unwrap();
        }
        let io = EnclaveIo::new(&disp, funcs);
        let mut db = KissDb::open(io, "/db", 8, 8, 8).unwrap();
        for i in 0..50u64 {
            assert_eq!(db.get(&key8(i)).unwrap(), Some(key8(i * 3)));
        }
    }

    #[test]
    fn reopen_with_wrong_params_is_corrupt() {
        let (_fs, disp, funcs) = regular_fixture();
        {
            let io = EnclaveIo::new(&disp, funcs);
            KissDb::open(io, "/db", 8, 8, 8).unwrap().close().unwrap();
        }
        let io = EnclaveIo::new(&disp, funcs);
        assert_eq!(
            KissDb::open(io, "/db", 16, 8, 8).unwrap_err(),
            DbError::Corrupt
        );
    }

    #[test]
    fn wrong_sizes_are_rejected() {
        let (_fs, disp, funcs) = regular_fixture();
        let io = EnclaveIo::new(&disp, funcs);
        let mut db = KissDb::open(io, "/db", 8, 8, 8).unwrap();
        assert!(matches!(
            db.put(b"short", &key8(0)),
            Err(DbError::BadLength { got: 5, want: 8 })
        ));
        assert!(matches!(
            db.put(&key8(0), b"bad"),
            Err(DbError::BadLength { got: 3, want: 8 })
        ));
        assert!(matches!(db.get(b"xx"), Err(DbError::BadLength { .. })));
    }

    #[test]
    fn ocall_mix_matches_the_paper() {
        // The paper (§V-A): fseeko is the most frequent ocall, invoked
        // almost twice as often as fread and fwrite.
        let (fs, disp, funcs) = regular_fixture();
        let io = EnclaveIo::new(&disp, funcs);
        let mut db = KissDb::open(io, "/db", 512, 8, 8).unwrap();
        let (r0, w0, s0) = fs.op_counts();
        for i in 0..1_000u64 {
            db.put(&key8(i), &key8(i)).unwrap();
        }
        let (r1, w1, s1) = fs.op_counts();
        let (reads, writes, seeks) = (r1 - r0, w1 - w0, s1 - s0);
        assert!(
            seeks > reads && seeks > writes,
            "fseeko must dominate: seeks={seeks} reads={reads} writes={writes}"
        );
        assert!(
            (seeks as f64) / (writes as f64) > 1.2,
            "seeks ≈ 2x writes expected: seeks={seeks} writes={writes}"
        );
    }

    #[test]
    fn iter_all_returns_every_pair_exactly_once() {
        let (_fs, disp, funcs) = regular_fixture();
        let io = EnclaveIo::new(&disp, funcs);
        let mut db = KissDb::open(io, "/db", 4, 8, 8).unwrap();
        assert!(db.is_empty());
        for i in 0..40u64 {
            db.put(&key8(i), &key8(i + 1)).unwrap();
        }
        assert_eq!(db.len(), 40);
        let mut all = db.iter_all().unwrap();
        all.sort();
        assert_eq!(all.len(), 40);
        for i in 0..40u64 {
            assert!(
                all.binary_search(&(key8(i), key8(i + 1))).is_ok(),
                "pair {i} missing"
            );
        }
        // Overwrites must not duplicate entries.
        db.put(&key8(3), &key8(99)).unwrap();
        assert_eq!(db.len(), 40);
        assert_eq!(db.iter_all().unwrap().len(), 40);
    }

    #[test]
    fn model_check_against_btreemap() {
        use std::collections::BTreeMap;
        let (_fs, disp, funcs) = regular_fixture();
        let io = EnclaveIo::new(&disp, funcs);
        let mut db = KissDb::open(io, "/db", 4, 8, 8).unwrap();
        let mut oracle: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        // Deterministic mixed workload with overwrites and misses.
        let mut x: u64 = 0x243F_6A88_85A3_08D3;
        for step in 0..500u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let k = key8(x % 64);
            match step % 3 {
                0 | 1 => {
                    let v = key8(x);
                    db.put(&k, &v).unwrap();
                    oracle.insert(k, v);
                }
                _ => {
                    assert_eq!(db.get(&k).unwrap(), oracle.get(&k).cloned(), "step {step}");
                }
            }
        }
        for (k, v) in &oracle {
            assert_eq!(db.get(k).unwrap().as_ref(), Some(v));
        }
    }
}
