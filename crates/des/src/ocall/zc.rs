//! ZC-SWITCHLESS as a virtual-thread protocol.
//!
//! Mirrors the real runtime in `zc-switchless`: callers claim an `UNUSED`
//! worker (atomic within one kernel step), copy the payload into the
//! worker's untrusted pool (reallocated via one transition when full),
//! post the request and spin; with no idle worker they fall back
//! *immediately*. Workers idle-spin on a doorbell flag; the scheduler
//! actor drives the identical [`SchedulerPolicy`] used by the real
//! runtime, probing worker counts every configuration phase and parking
//! surplus workers.
//!
//! [`SchedulerPolicy`]: switchless_core::policy::SchedulerPolicy

use super::prof::{Phase, Prof};
use super::{CallDesc, CostModel, Dispatcher, Step};
use crate::kernel::{FlagId, Machine, SpinTarget, Syscall, SyscallResult, Tid};
use crate::metrics::SimCounters;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;
use switchless_core::policy::{PolicyParams, SchedulerPolicy};
use switchless_core::stats::WorkerResidency;
use switchless_core::{CallPath, GuardKind, WorkerState};

/// Scheduler command posted to a worker (DES model: no exit — the driver
/// simply stops the simulation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Cmd {
    /// Keep polling.
    Run,
    /// Park when next idle.
    Deactivate,
}

/// Shared state of one simulated worker.
#[derive(Debug)]
pub struct WorkerSt {
    /// Paper state machine word.
    pub state: WorkerState,
    /// Scheduler command.
    pub cmd: Cmd,
    /// Host-function duration of the posted request.
    pub host_cycles: u64,
    /// Result bytes of the posted request.
    pub ret_bytes: u64,
    /// Caller index owning the current request.
    pub caller: usize,
    /// Bytes bump-allocated in this worker's untrusted pool.
    pub pool_used: u64,
    /// Worker crashed or hung: it serves nothing until revived by the
    /// supervisor.
    pub dead: bool,
    /// The in-flight request was cancelled by the caller's watchdog; a
    /// late completion must be discarded, never published.
    pub cancelled: bool,
    /// A dead worker's actor has actually parked — only then is the slot
    /// safe to revive (no compute still draining on it).
    pub parked_dead: bool,
}

/// Shared ZC protocol state.
#[derive(Debug)]
pub struct ZcWorld {
    /// Per-worker protocol state.
    pub workers: Vec<WorkerSt>,
    /// Worker thread ids (filled at spawn).
    pub worker_tids: Vec<Tid>,
    /// Worker doorbells (rung on request post and scheduler commands).
    pub worker_db: Vec<FlagId>,
    /// Authoritative doorbell counters (actors cannot read kernel flags).
    pub worker_db_val: Vec<u64>,
    /// Caller doorbells (rung on request completion).
    pub caller_db: Vec<FlagId>,
    /// Authoritative caller doorbell counters.
    pub caller_db_val: Vec<u64>,
    /// Per-worker untrusted pool capacity in bytes.
    pub pool_bytes: u64,
    /// Worker count of the current scheduler step.
    pub active_workers: usize,
    /// Worker-count residency histogram (paper §V-B).
    pub residency: WorkerResidency,
    /// Completed scheduler decisions.
    pub decisions: u64,
    /// Injected crashes applied so far.
    pub crashes: u64,
    /// Injected hangs applied so far.
    pub hangs: u64,
    /// Worker slots recovered (supervisor revivals plus self-recoveries
    /// of live workers whose call was watchdog-cancelled).
    pub respawns: u64,
    /// In-flight calls cancelled by caller watchdogs.
    pub cancelled: u64,
    /// Byzantine corruptions detected by the trusted-side guards (each
    /// quarantines its worker slot until revival).
    pub guard_violations: u64,
}

impl ZcWorld {
    /// Build the world and allocate its kernel flags.
    pub fn new(
        kernel: &mut dyn Machine,
        max_workers: usize,
        callers: usize,
        pool_bytes: u64,
    ) -> Rc<RefCell<ZcWorld>> {
        let workers = (0..max_workers)
            .map(|_| WorkerSt {
                state: WorkerState::Unused,
                cmd: Cmd::Run,
                host_cycles: 0,
                ret_bytes: 0,
                caller: usize::MAX,
                pool_used: 0,
                dead: false,
                cancelled: false,
                parked_dead: false,
            })
            .collect();
        let worker_db = (0..max_workers).map(|_| kernel.new_flag(0)).collect();
        let caller_db = (0..callers).map(|_| kernel.new_flag(0)).collect();
        Rc::new(RefCell::new(ZcWorld {
            workers,
            worker_tids: Vec::new(),
            worker_db,
            worker_db_val: vec![0; max_workers],
            caller_db,
            caller_db_val: vec![0; callers],
            pool_bytes,
            active_workers: 0,
            residency: WorkerResidency::new(max_workers),
            decisions: 0,
            crashes: 0,
            hangs: 0,
            respawns: 0,
            cancelled: 0,
            guard_violations: 0,
        }))
    }

    fn find_unused(&self) -> Option<usize> {
        self.workers
            .iter()
            .position(|w| w.state == WorkerState::Unused && !w.dead)
    }
}

/// Per-caller ZC dialogue.
#[derive(Debug)]
pub struct ZcDispatcher {
    world: Rc<RefCell<ZcWorld>>,
    counters: Rc<RefCell<SimCounters>>,
    costs: CostModel,
    caller: usize,
    dialog: Dialog,
    await_db_val: u64,
    /// Caller watchdog: on-CPU pauses spent awaiting completion before
    /// the in-flight call is cancelled and re-routed (None = wait
    /// forever, the fault-free default).
    watchdog_pauses: Option<u64>,
    prof: Prof,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dialog {
    Idle,
    /// Copying the payload into the claimed worker's pool.
    Post {
        w: usize,
    },
    /// Ringing the worker's doorbell.
    Ring {
        w: usize,
    },
    /// Spinning for completion.
    Await {
        w: usize,
    },
    /// Ringing the worker's doorbell after release.
    ReleaseRing,
    /// Copying results back.
    Collect,
    /// Executing the fallback regular ocall.
    FallbackExec,
}

impl ZcDispatcher {
    /// Dialogue driver for `caller`.
    #[must_use]
    pub fn new(
        world: Rc<RefCell<ZcWorld>>,
        counters: Rc<RefCell<SimCounters>>,
        costs: CostModel,
        caller: usize,
    ) -> Self {
        ZcDispatcher {
            world,
            counters,
            costs,
            caller,
            dialog: Dialog::Idle,
            await_db_val: 0,
            watchdog_pauses: None,
            prof: Prof::default(),
        }
    }

    /// Builder-style watchdog: cancel an in-flight call after `pauses`
    /// on-CPU pauses and re-route it to the regular path (mirrors the
    /// real runtime's supervision watchdog).
    #[must_use]
    pub fn with_watchdog(mut self, pauses: u64) -> Self {
        self.watchdog_pauses = Some(pauses);
        self
    }

    /// Builder-style telemetry hub: every completed call accumulates its
    /// per-phase cycle breakdown into the hub's
    /// [`CallPhaseProfiler`](zc_telemetry::CallPhaseProfiler) and is
    /// traced as a `call_phases` event at
    /// [`Origin::Caller`](zc_telemetry::Origin::Caller), stamped with
    /// kernel virtual time.
    #[cfg(feature = "telemetry")]
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: std::sync::Arc<zc_telemetry::Telemetry>) -> Self {
        self.prof.set_hub(telemetry, self.caller as u32);
        self
    }
}

impl Dispatcher for ZcDispatcher {
    fn begin(&mut self, call: &CallDesc, now: u64) -> Syscall {
        debug_assert_eq!(self.dialog, Dialog::Idle, "begin during an active dialogue");
        self.prof.begin(now);
        let mut wld = self.world.borrow_mut();
        let Some(w) = wld.find_unused() else {
            // No idle worker: immediate fallback, no busy-wait.
            self.dialog = Dialog::FallbackExec;
            return Syscall::Compute(self.costs.regular_call_cycles(call));
        };
        // Claim (UNUSED -> RESERVED is atomic within this step).
        wld.workers[w].state = WorkerState::Reserved;
        wld.workers[w].caller = self.caller;
        if call.payload_bytes > wld.pool_bytes {
            // Larger than the pool: release and fall back.
            wld.workers[w].state = WorkerState::Unused;
            self.dialog = Dialog::FallbackExec;
            return Syscall::Compute(self.costs.regular_call_cycles(call));
        }
        // Pool allocation; exhaustion costs one reallocation transition.
        let mut extra = 0;
        if wld.workers[w].pool_used + call.payload_bytes > wld.pool_bytes {
            wld.workers[w].pool_used = call.payload_bytes;
            self.counters.borrow_mut().pool_reallocs += 1;
            extra = self.costs.t_es_cycles;
        } else {
            wld.workers[w].pool_used += call.payload_bytes;
        }
        self.dialog = Dialog::Post { w };
        Syscall::Compute(
            self.costs.handoff_cycles + self.costs.copy_cycles(call.payload_bytes) + extra,
        )
    }

    fn advance(&mut self, call: &CallDesc, res: SyscallResult, now: u64) -> Step {
        debug_assert!(
            res == SyscallResult::Ok || matches!(self.dialog, Dialog::Await { .. }),
            "only the watchdog-armed await may time out"
        );
        match self.dialog {
            Dialog::Post { w } => {
                // The finished compute was handoff + payload copy (+ any
                // realloc transition, left in copy-in).
                self.prof.mark(Phase::CopyIn, now);
                self.prof
                    .transfer(Phase::CopyIn, Phase::Reserve, self.costs.handoff_cycles);
                let mut wld = self.world.borrow_mut();
                debug_assert_eq!(wld.workers[w].state, WorkerState::Reserved);
                wld.workers[w].state = WorkerState::Processing;
                wld.workers[w].host_cycles = call.host_cycles;
                wld.workers[w].ret_bytes = call.ret_bytes;
                // Sample my own doorbell BEFORE ringing the worker so the
                // completion ring can never be missed.
                self.await_db_val = wld.caller_db_val[self.caller];
                wld.worker_db_val[w] += 1;
                let v = wld.worker_db_val[w];
                let flag = wld.worker_db[w];
                self.dialog = Dialog::Ring { w };
                Step::Next(Syscall::SetFlag { flag, value: v })
            }
            Dialog::Ring { w } => {
                self.prof.mark(Phase::Signal, now);
                let flag = self.world.borrow().caller_db[self.caller];
                self.dialog = Dialog::Await { w };
                Step::Next(Syscall::SpinUntil {
                    flag,
                    target: SpinTarget::Ne(self.await_db_val),
                    timeout_pauses: self.watchdog_pauses,
                })
            }
            Dialog::Await { w } => {
                self.prof.mark(Phase::Wait, now);
                let mut wld = self.world.borrow_mut();
                if res == SyscallResult::TimedOut {
                    // Watchdog cancellation: the worker crashed, hung, or
                    // overran the deadline. Poison the in-flight request
                    // so a late completion is discarded (never published),
                    // then re-route to the regular path. The slot stays
                    // quarantined until the supervisor revives it (or the
                    // still-live worker self-recovers).
                    wld.workers[w].cancelled = true;
                    wld.cancelled += 1;
                    drop(wld);
                    self.counters.borrow_mut().cancelled += 1;
                    self.dialog = Dialog::FallbackExec;
                    return Step::Next(Syscall::Compute(self.costs.regular_call_cycles(call)));
                }
                debug_assert_eq!(
                    wld.workers[w].state,
                    WorkerState::Waiting,
                    "caller woke before the worker published results"
                );
                // The completion spin covered the worker's host-function
                // run: carve the modelled execute time out of the wait.
                self.prof.set_execute_hint(call.host_cycles);
                wld.workers[w].state = WorkerState::Unused;
                // Ring the worker on release: it may have missed a
                // scheduler Deactivate while executing, and only
                // re-evaluates its command word when its doorbell rings.
                wld.worker_db_val[w] += 1;
                let v = wld.worker_db_val[w];
                let flag = wld.worker_db[w];
                self.dialog = Dialog::ReleaseRing;
                Step::Next(Syscall::SetFlag { flag, value: v })
            }
            Dialog::ReleaseRing => {
                self.dialog = Dialog::Collect;
                Step::Next(Syscall::Compute(
                    self.costs.collect_cycles + self.costs.copy_cycles(call.ret_bytes),
                ))
            }
            Dialog::Collect => {
                // Release ring + collect + result copy land in copy-out
                // (the finish residual).
                self.prof.complete(call.class, CallPath::Switchless, now);
                self.dialog = Dialog::Idle;
                Step::Complete(CallPath::Switchless)
            }
            Dialog::FallbackExec => {
                // One regular-call compute: attribute the transition to
                // signal and the boundary copies to copy-in/copy-out,
                // leaving the host function in execute. A watchdog-
                // cancelled call keeps its dead spin in the wait phase.
                self.prof.mark(Phase::Execute, now);
                self.prof
                    .transfer(Phase::Execute, Phase::Signal, self.costs.t_es_cycles);
                self.prof.transfer(
                    Phase::Execute,
                    Phase::CopyIn,
                    self.costs.copy_cycles(call.payload_bytes),
                );
                self.prof.transfer(
                    Phase::Execute,
                    Phase::CopyOut,
                    self.costs.copy_cycles(call.ret_bytes),
                );
                self.prof.complete(call.class, CallPath::Fallback, now);
                self.dialog = Dialog::Idle;
                Step::Complete(CallPath::Fallback)
            }
            Dialog::Idle => unreachable!("advance without an active dialogue"),
        }
    }

    fn name(&self) -> &'static str {
        "zc"
    }
}

/// Worker actor of the ZC model.
#[derive(Debug)]
pub struct ZcWorkerActor {
    world: Rc<RefCell<ZcWorld>>,
    idx: usize,
    executing: bool,
}

impl ZcWorkerActor {
    /// Worker actor for slot `idx`.
    #[must_use]
    pub fn new(world: Rc<RefCell<ZcWorld>>, idx: usize) -> Self {
        ZcWorkerActor {
            world,
            idx,
            executing: false,
        }
    }
}

impl crate::kernel::Actor for ZcWorkerActor {
    fn step(&mut self, _res: SyscallResult, _now: u64) -> Syscall {
        let mut wld = self.world.borrow_mut();
        let idx = self.idx;
        if self.executing {
            self.executing = false;
            if !wld.workers[idx].cancelled && !wld.workers[idx].dead {
                // Host function finished: publish results, ring the caller.
                debug_assert_eq!(wld.workers[idx].state, WorkerState::Processing);
                wld.workers[idx].state = WorkerState::Waiting;
                let caller = wld.workers[idx].caller;
                wld.caller_db_val[caller] += 1;
                let v = wld.caller_db_val[caller];
                let flag = wld.caller_db[caller];
                return Syscall::SetFlag { flag, value: v };
            }
            // Cancelled by the caller's watchdog (or crashed mid-call):
            // the results are discarded, never published.
            if !wld.workers[idx].dead {
                // Still alive — the caller merely gave up on a slow call.
                // The slot self-recovers onto a fresh buffer (the real
                // runtime's supervisor respawn after a watchdog cancel).
                let w = &mut wld.workers[idx];
                w.state = WorkerState::Unused;
                w.cancelled = false;
                w.pool_used = 0;
                w.caller = usize::MAX;
                wld.respawns += 1;
            }
        }
        if wld.workers[idx].dead {
            // Crashed or hung: park until the supervisor revives us. The
            // flag tells the supervisor no compute is draining on this
            // slot, so it is safe to reset.
            wld.workers[idx].parked_dead = true;
            return Syscall::Park;
        }
        match wld.workers[idx].state {
            WorkerState::Processing => {
                self.executing = true;
                Syscall::Compute(wld.workers[idx].host_cycles)
            }
            WorkerState::Unused if wld.workers[idx].cmd == Cmd::Deactivate => {
                wld.workers[idx].state = WorkerState::Paused;
                Syscall::Park
            }
            // Idle (or caller mid-post): spin on the doorbell. Reading
            // the authoritative counter and arming the spin is atomic
            // within this step, so no ring can be lost.
            _ => {
                let v = wld.worker_db_val[idx];
                let flag = wld.worker_db[idx];
                Syscall::SpinUntil {
                    flag,
                    target: SpinTarget::Ne(v),
                    timeout_pauses: None,
                }
            }
        }
    }

    fn group(&self) -> &str {
        "worker"
    }
}

/// The adaptive scheduler actor, driving the shared [`SchedulerPolicy`].
#[derive(Debug)]
pub struct ZcSchedulerActor {
    world: Rc<RefCell<ZcWorld>>,
    counters: Rc<RefCell<SimCounters>>,
    policy: SchedulerPolicy,
    queue: VecDeque<Syscall>,
    last_fallbacks: u64,
    #[cfg(feature = "telemetry")]
    telemetry: Option<std::sync::Arc<zc_telemetry::Telemetry>>,
    #[cfg(feature = "telemetry")]
    traced_decisions: u64,
    /// Detects when the argmin re-settles on a worker count after a
    /// load shift (same trajectory logic as the real scheduler thread).
    #[cfg(feature = "telemetry")]
    convergence: switchless_core::policy::ConvergenceTracker,
}

impl ZcSchedulerActor {
    /// Scheduler with the given policy parameters and initial worker
    /// count.
    #[must_use]
    pub fn new(
        world: Rc<RefCell<ZcWorld>>,
        counters: Rc<RefCell<SimCounters>>,
        params: PolicyParams,
        initial_workers: usize,
    ) -> Self {
        ZcSchedulerActor {
            world,
            counters,
            policy: SchedulerPolicy::new(params, initial_workers),
            queue: VecDeque::new(),
            last_fallbacks: 0,
            #[cfg(feature = "telemetry")]
            telemetry: None,
            #[cfg(feature = "telemetry")]
            traced_decisions: 0,
            #[cfg(feature = "telemetry")]
            convergence: switchless_core::policy::ConvergenceTracker::new(),
        }
    }

    /// Builder-style telemetry hub: the actor traces phase starts and
    /// argmin decisions (with their measured `F_i` and derived `U_i`)
    /// stamped with **kernel virtual time**, at [`Origin::Scheduler`].
    ///
    /// [`Origin::Scheduler`]: zc_telemetry::Origin::Scheduler
    #[cfg(feature = "telemetry")]
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: std::sync::Arc<zc_telemetry::Telemetry>) -> Self {
        self.telemetry = Some(telemetry);
        self
    }
}

impl crate::kernel::Actor for ZcSchedulerActor {
    fn step(&mut self, _res: SyscallResult, _now: u64) -> Syscall {
        if let Some(s) = self.queue.pop_front() {
            return s;
        }
        // Previous policy step finished: report its fallback delta and
        // fetch the next one.
        let fb = self.counters.borrow().fallback;
        let delta = fb.saturating_sub(self.last_fallbacks);
        self.last_fallbacks = fb;
        let step = self.policy.next(delta);
        #[cfg(feature = "telemetry")]
        if let Some(hub) = &self.telemetry {
            use switchless_core::policy::PolicyStep;
            use zc_telemetry::{Event, Origin, PhaseKind};
            if self.policy.decisions() > self.traced_decisions {
                self.traced_decisions = self.policy.decisions();
                if let Some(d) = self.policy.last_decision() {
                    let chosen = d.chosen_workers;
                    hub.record(
                        _now,
                        Origin::Scheduler,
                        Event::Decision {
                            decision: d.clone(),
                        },
                    );
                    if let Some(c) = self.convergence.observe(chosen, _now) {
                        hub.record(
                            _now,
                            Origin::Scheduler,
                            Event::Converged {
                                from_workers: c.from_workers,
                                to_workers: c.to_workers,
                                decisions: c.decisions,
                                settle_cycles: c.settle_cycles,
                            },
                        );
                    }
                }
            }
            let kind = match step {
                PolicyStep::Schedule { .. } => PhaseKind::Schedule,
                PolicyStep::Probe { .. } => PhaseKind::Probe,
            };
            hub.record(
                _now,
                Origin::Scheduler,
                Event::PhaseStart {
                    kind,
                    workers: step.workers() as u32,
                    duration_cycles: step.duration_cycles(),
                },
            );
        }
        let m = step.workers();
        {
            let mut wld = self.world.borrow_mut();
            wld.active_workers = m;
            wld.residency.record(m, step.duration_cycles());
            wld.decisions = self.policy.decisions();
            for i in 0..wld.workers.len() {
                if i < m {
                    wld.workers[i].cmd = Cmd::Run;
                    if wld.workers[i].state == WorkerState::Paused {
                        wld.workers[i].state = WorkerState::Unused;
                        let tid = wld.worker_tids[i];
                        self.queue.push_back(Syscall::Unpark(tid));
                    }
                } else if wld.workers[i].cmd != Cmd::Deactivate {
                    wld.workers[i].cmd = Cmd::Deactivate;
                    // Ring the doorbell so an idle spinner re-checks its
                    // command word and parks.
                    wld.worker_db_val[i] += 1;
                    let v = wld.worker_db_val[i];
                    let flag = wld.worker_db[i];
                    self.queue.push_back(Syscall::SetFlag { flag, value: v });
                }
            }
        }
        self.queue.push_back(Syscall::Sleep(step.duration_cycles()));
        self.queue
            .pop_front()
            .expect("queue holds at least the sleep")
    }

    fn group(&self) -> &str {
        "scheduler"
    }
}

/// Deterministic worker-fault schedule for the ZC model, in virtual
/// time. Attached to a simulation via
/// [`SimConfig::with_zc_faults`](crate::sim::SimConfig::with_zc_faults);
/// ignored by non-ZC mechanisms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ZcSimFaults {
    /// `(virtual cycle, worker index)` crash injections.
    pub crashes: Vec<(u64, usize)>,
    /// `(virtual cycle, worker index)` hang injections.
    pub hangs: Vec<(u64, usize)>,
    /// `(virtual cycle, worker index, violation kind)` Byzantine
    /// corruption injections: a hostile host scribbles on the shared
    /// words / reply metadata of that worker's buffer. The trusted-side
    /// guard detects the lie and quarantines the slot — the DES models
    /// the detect-and-quarantine as one event; the owning caller's
    /// watchdog re-routes any in-flight call to the regular path and the
    /// supervisor revives the slot after the respawn delay.
    pub byzantine: Vec<(u64, usize, GuardKind)>,
    /// Dead time before the supervisor revives a failed worker slot
    /// (the respawn/probation latency of the real runtime).
    pub respawn_delay_cycles: u64,
    /// Caller watchdog: on-CPU pauses spent awaiting completion before
    /// an in-flight call is cancelled and re-routed.
    pub watchdog_pauses: u64,
}

impl ZcSimFaults {
    /// Empty schedule with a ~0.5 ms (at the paper machine's 3.8 GHz)
    /// revive delay and a watchdog orders of magnitude above a healthy
    /// call's completion spin.
    #[must_use]
    pub fn new() -> Self {
        ZcSimFaults {
            crashes: Vec::new(),
            hangs: Vec::new(),
            byzantine: Vec::new(),
            respawn_delay_cycles: 2_000_000,
            watchdog_pauses: 10_000,
        }
    }

    /// Builder-style crash of `worker` at virtual `cycle`.
    #[must_use]
    pub fn crash_at(mut self, cycle: u64, worker: usize) -> Self {
        self.crashes.push((cycle, worker));
        self
    }

    /// Builder-style hang of `worker` at virtual `cycle`.
    #[must_use]
    pub fn hang_at(mut self, cycle: u64, worker: usize) -> Self {
        self.hangs.push((cycle, worker));
        self
    }

    /// Builder-style Byzantine corruption of `worker` at virtual `cycle`
    /// with an explicit violation kind.
    #[must_use]
    pub fn byzantine_at(mut self, cycle: u64, worker: usize, kind: GuardKind) -> Self {
        self.byzantine.push((cycle, worker, kind));
        self
    }

    /// Host flips `worker`'s status word to garbage at `cycle`.
    #[must_use]
    pub fn flip_status_at(self, cycle: u64, worker: usize) -> Self {
        self.byzantine_at(cycle, worker, GuardKind::BadStatusWord)
    }

    /// Host scribbles on `worker`'s scheduler-command word at `cycle`.
    #[must_use]
    pub fn garbage_command_at(self, cycle: u64, worker: usize) -> Self {
        self.byzantine_at(cycle, worker, GuardKind::BadCommandWord)
    }

    /// Host over-declares `worker`'s reply length at `cycle`.
    #[must_use]
    pub fn oversize_reply_at(self, cycle: u64, worker: usize) -> Self {
        self.byzantine_at(cycle, worker, GuardKind::OversizedReply)
    }

    /// Host under-declares `worker`'s reply length at `cycle`.
    #[must_use]
    pub fn undersize_reply_at(self, cycle: u64, worker: usize) -> Self {
        self.byzantine_at(cycle, worker, GuardKind::UndersizedReply)
    }

    /// Host replays a stale reply sequence tag on `worker` at `cycle`.
    #[must_use]
    pub fn stale_seq_at(self, cycle: u64, worker: usize) -> Self {
        self.byzantine_at(cycle, worker, GuardKind::StaleSequence)
    }

    /// Host tears `worker`'s posted request slot at `cycle`.
    #[must_use]
    pub fn torn_request_at(self, cycle: u64, worker: usize) -> Self {
        self.byzantine_at(cycle, worker, GuardKind::TornRequest)
    }

    /// Builder-style revive delay.
    #[must_use]
    pub fn with_respawn_delay(mut self, cycles: u64) -> Self {
        self.respawn_delay_cycles = cycles;
        self
    }

    /// Builder-style caller watchdog budget.
    #[must_use]
    pub fn with_watchdog_pauses(mut self, pauses: u64) -> Self {
        self.watchdog_pauses = pauses;
        self
    }
}

impl Default for ZcSimFaults {
    fn default() -> Self {
        ZcSimFaults::new()
    }
}

/// One scheduled supervisor event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaultEv {
    Crash(usize),
    Hang(usize),
    Byzantine(usize, GuardKind),
    Revive(usize),
}

impl FaultEv {
    /// Total order for same-instant events (determinism; same-instant
    /// Byzantine kinds on one worker keep schedule insertion order via
    /// the stable sort).
    fn rank(self) -> (u8, usize) {
        match self {
            FaultEv::Crash(w) => (0, w),
            FaultEv::Hang(w) => (1, w),
            FaultEv::Byzantine(w, _) => (2, w),
            FaultEv::Revive(w) => (3, w),
        }
    }
}

/// A revive that found the slot still busy (compute draining or a caller
/// attached) retries after this many cycles.
const REVIVE_RETRY_CYCLES: u64 = 100_000;

/// The supervisor actor of the ZC fault model: applies the
/// crash/hang/Byzantine schedule at its virtual times and revives each
/// failed slot
/// [`respawn_delay_cycles`](ZcSimFaults::respawn_delay_cycles) later —
/// the DES mirror of the real runtime's `zc-supervisor` thread. A
/// Byzantine corruption quarantines the slot exactly like a crash (the
/// trusted-side guard detected the lie and poisoned the buffer), but is
/// counted in [`ZcWorld::guard_violations`] and traced as a
/// `GuardViolation` event instead of a `Fault`.
///
/// Failure → recovery sequence for one slot: the supervisor marks the
/// worker dead (its actor parks); the owning caller's watchdog cancels
/// the in-flight call and completes it on the regular path (no call is
/// ever lost or double-completed); after the revive delay the slot is
/// reset to `UNUSED` on a fresh pool and the actor is unparked.
#[derive(Debug)]
pub struct ZcSupervisorActor {
    world: Rc<RefCell<ZcWorld>>,
    /// Pending events, sorted by `(time, rank)` **descending** so the
    /// earliest event pops from the back.
    events: Vec<(u64, FaultEv)>,
    queue: VecDeque<Syscall>,
    /// Per-slot respawn generation (0 = initial spawn).
    gens: Vec<u64>,
    #[cfg(feature = "telemetry")]
    telemetry: Option<std::sync::Arc<zc_telemetry::Telemetry>>,
}

impl ZcSupervisorActor {
    /// Supervisor for `faults` over the workers of `world`.
    #[must_use]
    pub fn new(world: Rc<RefCell<ZcWorld>>, faults: &ZcSimFaults) -> Self {
        let workers = world.borrow().workers.len();
        let mut events = Vec::new();
        for &(t, w) in &faults.crashes {
            events.push((t, FaultEv::Crash(w)));
            events.push((
                t.saturating_add(faults.respawn_delay_cycles),
                FaultEv::Revive(w),
            ));
        }
        for &(t, w) in &faults.hangs {
            events.push((t, FaultEv::Hang(w)));
            events.push((
                t.saturating_add(faults.respawn_delay_cycles),
                FaultEv::Revive(w),
            ));
        }
        for &(t, w, kind) in &faults.byzantine {
            events.push((t, FaultEv::Byzantine(w, kind)));
            events.push((
                t.saturating_add(faults.respawn_delay_cycles),
                FaultEv::Revive(w),
            ));
        }
        events.retain(|&(_, ev)| ev.rank().1 < workers);
        events.sort_by_key(|&(t, ev)| std::cmp::Reverse((t, ev.rank())));
        ZcSupervisorActor {
            world,
            events,
            queue: VecDeque::new(),
            gens: vec![0; workers],
            #[cfg(feature = "telemetry")]
            telemetry: None,
        }
    }

    /// Builder-style telemetry hub: fault injections are traced at
    /// [`Origin::Worker`](zc_telemetry::Origin::Worker) and revivals as
    /// `WorkerRespawned` at
    /// [`Origin::Scheduler`](zc_telemetry::Origin::Scheduler), stamped
    /// with kernel virtual time.
    #[cfg(feature = "telemetry")]
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: std::sync::Arc<zc_telemetry::Telemetry>) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    fn insert(&mut self, t: u64, ev: FaultEv) {
        let key = (t, ev.rank());
        let pos = self
            .events
            .partition_point(|&(et, eev)| (et, eev.rank()) > key);
        self.events.insert(pos, (t, ev));
    }

    fn apply(&mut self, ev: FaultEv, now: u64) {
        #[cfg(not(feature = "telemetry"))]
        let _ = now;
        let mut wld = self.world.borrow_mut();
        match ev {
            FaultEv::Crash(w) | FaultEv::Hang(w) | FaultEv::Byzantine(w, _) => {
                if wld.workers[w].dead {
                    return; // already down; the fault is a no-op
                }
                wld.workers[w].dead = true;
                match ev {
                    FaultEv::Crash(_) => wld.crashes += 1,
                    FaultEv::Hang(_) => wld.hangs += 1,
                    _ => wld.guard_violations += 1,
                }
                if wld.workers[w].state == WorkerState::Paused {
                    // Already parked by the scheduler: nothing drains.
                    wld.workers[w].parked_dead = true;
                } else {
                    // Ring its doorbell so an idle spinner wakes, sees
                    // `dead` and parks. A worker mid-compute ignores the
                    // ring and parks when its compute drains.
                    wld.worker_db_val[w] += 1;
                    let v = wld.worker_db_val[w];
                    let flag = wld.worker_db[w];
                    self.queue.push_back(Syscall::SetFlag { flag, value: v });
                }
                #[cfg(feature = "telemetry")]
                if let Some(hub) = &self.telemetry {
                    let event = match ev {
                        FaultEv::Crash(_) => zc_telemetry::Event::Fault {
                            kind: zc_telemetry::FaultKind::WorkerCrash,
                        },
                        FaultEv::Hang(_) => zc_telemetry::Event::Fault {
                            kind: zc_telemetry::FaultKind::WorkerHang,
                        },
                        FaultEv::Byzantine(_, kind) => zc_telemetry::Event::GuardViolation {
                            worker: w as u32,
                            kind,
                        },
                        FaultEv::Revive(_) => unreachable!("outer arm excludes Revive"),
                    };
                    hub.record(now, zc_telemetry::Origin::Worker(w as u32), event);
                }
            }
            FaultEv::Revive(w) => {
                let ready = {
                    let st = &wld.workers[w];
                    st.parked_dead
                        && match st.state {
                            WorkerState::Unused | WorkerState::Paused => true,
                            // A caller is still attached: only safe once
                            // its watchdog cancelled the call.
                            WorkerState::Processing | WorkerState::Waiting => st.cancelled,
                            _ => false, // RESERVED: caller mid-post
                        }
                };
                if !ready {
                    drop(wld);
                    self.insert(now.saturating_add(REVIVE_RETRY_CYCLES), FaultEv::Revive(w));
                    return;
                }
                let st = &mut wld.workers[w];
                st.dead = false;
                st.parked_dead = false;
                st.cancelled = false;
                st.state = WorkerState::Unused;
                st.pool_used = 0;
                st.caller = usize::MAX;
                wld.respawns += 1;
                let tid = wld.worker_tids[w];
                self.queue.push_back(Syscall::Unpark(tid));
                self.gens[w] += 1;
                #[cfg(feature = "telemetry")]
                if let Some(hub) = &self.telemetry {
                    hub.record(
                        now,
                        zc_telemetry::Origin::Scheduler,
                        zc_telemetry::Event::WorkerRespawned {
                            worker: w as u32,
                            generation: self.gens[w],
                        },
                    );
                }
            }
        }
    }
}

impl crate::kernel::Actor for ZcSupervisorActor {
    fn step(&mut self, _res: SyscallResult, now: u64) -> Syscall {
        loop {
            if let Some(s) = self.queue.pop_front() {
                return s;
            }
            match self.events.last() {
                Some(&(t, _)) if t <= now => {
                    let (_, ev) = self.events.pop().expect("checked non-empty");
                    self.apply(ev, now);
                }
                Some(&(t, _)) => return Syscall::Sleep(t - now),
                None => return Syscall::Park,
            }
        }
    }

    fn group(&self) -> &str {
        "supervisor"
    }
}
