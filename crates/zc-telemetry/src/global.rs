//! Process-wide default telemetry hub.
//!
//! Harnesses that fan out through code with no convenient place to
//! thread a handle (the bench figures, primarily) install a hub here;
//! components that accept an explicit handle always prefer it and only
//! fall back to the global default.

use crate::Telemetry;
use std::sync::{Arc, Mutex, OnceLock};

fn slot() -> &'static Mutex<Option<Arc<Telemetry>>> {
    static SLOT: OnceLock<Mutex<Option<Arc<Telemetry>>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

/// Install `hub` as the process-wide default, returning the previous
/// one (if any).
pub fn install(hub: Arc<Telemetry>) -> Option<Arc<Telemetry>> {
    slot()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .replace(hub)
}

/// Remove and return the process-wide default.
pub fn uninstall() -> Option<Arc<Telemetry>> {
    slot().lock().unwrap_or_else(|e| e.into_inner()).take()
}

/// The current process-wide default, if one is installed.
pub fn current() -> Option<Arc<Telemetry>> {
    slot().lock().unwrap_or_else(|e| e.into_inner()).clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_take_roundtrip() {
        // Serialise against other tests touching the global slot.
        let hub = Telemetry::with_capacity(8);
        let prev = install(Arc::clone(&hub));
        assert!(current().is_some());
        let taken = uninstall().expect("installed hub comes back");
        assert!(Arc::ptr_eq(&taken, &hub));
        if let Some(p) = prev {
            install(p);
        }
    }
}
