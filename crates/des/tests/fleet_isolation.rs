//! Noisy-neighbour isolation soak (the tentpole acceptance gate): a
//! well-behaved tenant shares one machine and one global worker budget
//! with three misbehaving neighbours —
//!
//! * a **hog** at ~4× its shard's saturation point, storming the
//!   fallback path and shedding on client-side deadlines;
//! * a **crash-looper** whose enclave is lost and restarted repeatedly;
//! * a **Byzantine** tenant whose host scribbles all six corruption
//!   kinds over its shard's shared state.
//!
//! Bulkheads must hold: the well-behaved tenant keeps ≥90% of its solo
//! goodput and its p99 sojourn within 2× of its solo baseline, every
//! tenant's ledger conserves exactly (per tenant and globally), and no
//! guard violation is ever charged to an innocent shard. Run on both
//! DES kernels, and byte-identical across same-seed reruns.

use zc_des::arrival::{ArrivalProcess, ServiceDist};
use zc_des::fleet::{run_fleet, FleetReport, FleetSpec, TenantSimSpec};
use zc_des::ocall::CallDesc;
use zc_des::workload::{OpenLoad, WorkloadSpec};
use zc_des::{KernelMode, ZcSimFaults};

const RUN_CYCLES: u64 = 30_000_000;

fn call(host: u64) -> CallDesc {
    CallDesc {
        host_cycles: host,
        payload_bytes: 64,
        ret_bytes: 0,
        ..CallDesc::default()
    }
}

/// The well-behaved tenant: two open-loop callers at a comfortable
/// utilisation, generous deadline budget (it never sheds on its own).
fn good_tenant(seed: u64) -> TenantSimSpec {
    let load = OpenLoad::new(
        call(2_000),
        ArrivalProcess::Poisson {
            mean_gap_cycles: 60_000,
        },
        seed,
        RUN_CYCLES,
    )
    .with_service(ServiceDist::Exponential { mean_cycles: 1_500 })
    .with_deadline_budget(10_000_000);
    TenantSimSpec::new("good", vec![WorkloadSpec::Open(load); 2])
}

/// The hog: four open-loop callers whose arrivals outrun service by
/// roughly 4×, with a tight deadline budget — more concurrent callers
/// than the shard's fair-share worker cap, so it rides the fallback
/// path hard while shedding the queue it can never drain.
fn hog_tenant(seed: u64) -> TenantSimSpec {
    let load = OpenLoad::new(
        call(500),
        ArrivalProcess::Poisson {
            mean_gap_cycles: 1_500,
        },
        seed,
        RUN_CYCLES,
    )
    .with_service(ServiceDist::Exponential { mean_cycles: 2_000 })
    .with_deadline_budget(100_000);
    TenantSimSpec::new("hog", vec![WorkloadSpec::Open(load); 4])
}

/// The crash-looper: a closed-loop caller whose enclave is crashed and
/// restarted three times across the run.
fn crashloop_tenant() -> TenantSimSpec {
    TenantSimSpec::new(
        "crashloop",
        vec![WorkloadSpec::ClosedLoop {
            pattern: vec![call(500)],
            total_ops: 6_000,
        }],
    )
    .with_faults(
        ZcSimFaults::new()
            .crash_enclave_at_call(100)
            .crash_enclave_at_call(2_000)
            .crash_enclave_at_call(4_000)
            .with_enclave_restart_cycles(500_000),
    )
}

/// The Byzantine tenant: all six corruption kinds against its own
/// shard's shared words.
fn byzantine_tenant() -> TenantSimSpec {
    TenantSimSpec::new(
        "byzantine",
        vec![WorkloadSpec::ClosedLoop {
            pattern: vec![call(500)],
            total_ops: 8_000,
        }],
    )
    .with_faults(
        ZcSimFaults::new()
            .flip_status_at(1_000_000, 0)
            .garbage_command_at(2_000_000, 1)
            .oversize_reply_at(3_000_000, 2)
            .undersize_reply_at(4_000_000, 3)
            .stale_seq_at(5_000_000, 0)
            .torn_request_at(6_000_000, 1)
            .with_respawn_delay(800_000)
            .with_watchdog_pauses(5_000),
    )
}

fn fleet_of(tenants: Vec<TenantSimSpec>, mode: KernelMode) -> FleetSpec {
    FleetSpec::new(tenants, 1)
        .with_vcpus(40)
        .with_budget(8)
        .with_kernel_mode(mode)
        .with_deadline(RUN_CYCLES * 4)
}

fn assert_isolated(solo: &FleetReport, noisy: &FleetReport) {
    // Exact conservation, per tenant and globally, in both runs.
    solo.snapshot().check().expect("solo conservation");
    noisy.snapshot().check().expect("noisy conservation");

    // The well-behaved tenant is tenant 0 in both runs.
    let g_solo = &solo.tenants[0].counters;
    let g_noisy = &noisy.tenants[0].counters;
    assert!(g_solo.offered > 500, "baseline must offer real load");

    // Goodput ≥ 90% of the solo baseline.
    let solo_ratio = g_solo.goodput_ratio();
    let noisy_ratio = g_noisy.goodput_ratio();
    assert!(
        noisy_ratio >= 0.9 * solo_ratio,
        "goodput collapsed under noisy neighbours: solo {solo_ratio:.3}, noisy {noisy_ratio:.3}"
    );

    // p99 sojourn within 2× of the solo baseline.
    let p99_solo = g_solo.sojourn_quantile_cycles(99);
    let p99_noisy = g_noisy.sojourn_quantile_cycles(99);
    assert!(p99_solo > 0, "baseline must record sojourns");
    assert!(
        p99_noisy <= 2 * p99_solo,
        "p99 sojourn blew past 2x baseline: solo {p99_solo}, noisy {p99_noisy}"
    );

    // Blast-radius: no guard violation charged to an innocent shard.
    assert_eq!(
        noisy.tenants[0].fault_recovery.guard_violations, 0,
        "good tenant charged with a neighbour's violations"
    );
    assert_eq!(noisy.tenants[1].fault_recovery.guard_violations, 0);
    assert_eq!(
        noisy.tenants[3].fault_recovery.guard_violations, 6,
        "all six Byzantine injections must be detected on the offending shard"
    );

    // The crash-looper crashed and recovered inside its own bulkhead.
    let crash = &noisy.tenants[2].fault_recovery;
    assert_eq!(crash.enclave_crashes, 3, "{crash:?}");
    assert_eq!(crash.enclave_restarts, 3, "{crash:?}");
    assert_eq!(crash.journal_live, 0, "{crash:?}");
    assert_eq!(
        noisy.tenants[0].fault_recovery.enclave_crashes, 0,
        "crash loop leaked out of its shard"
    );

    // Closed-loop neighbours still finish every call (contained ≠ starved).
    assert_eq!(noisy.tenants[2].counters.total_calls(), 6_000);
    assert_eq!(noisy.tenants[3].counters.total_calls(), 8_000);
}

fn run_scenario(mode: KernelMode) -> (FleetReport, FleetReport) {
    let solo = run_fleet(&fleet_of(vec![good_tenant(11)], mode));
    let noisy = run_fleet(&fleet_of(
        vec![
            good_tenant(11),
            hog_tenant(22),
            crashloop_tenant(),
            byzantine_tenant(),
        ],
        mode,
    ));
    (solo, noisy)
}

#[test]
fn noisy_neighbours_cannot_break_isolation_on_event_kernel() {
    let (solo, noisy) = run_scenario(KernelMode::EventDriven);
    assert_isolated(&solo, &noisy);
    // The hog really is misbehaving: sheds heavily under its budget.
    assert!(
        noisy.tenants[1].counters.ops_shed > 0,
        "hog must shed: {:?}",
        noisy.tenants[1].counters.offered
    );
}

#[test]
fn noisy_neighbours_cannot_break_isolation_on_cycle_accurate_kernel() {
    let (solo, noisy) = run_scenario(KernelMode::CycleAccurate);
    assert_isolated(&solo, &noisy);
}

#[test]
fn noisy_neighbour_soak_is_byte_identical_across_reruns() {
    let (_, a) = run_scenario(KernelMode::EventDriven);
    let (_, b) = run_scenario(KernelMode::EventDriven);
    assert_eq!(a.duration_cycles, b.duration_cycles);
    assert_eq!(a.decisions, b.decisions);
    for (ta, tb) in a.tenants.iter().zip(&b.tenants) {
        assert_eq!(ta.counters, tb.counters, "tenant {} diverged", ta.name);
        assert_eq!(ta.fault_recovery, tb.fault_recovery);
        assert_eq!(ta.final_cap, tb.final_cap);
    }
}
