//! The ZC scheduler thread (paper §IV-A).
//!
//! Drives the pure [`SchedulerPolicy`] phase machine in real time:
//! execute each [`PolicyStep`] by (de)activating workers, sleep for the
//! step's duration, then report the fallback delta observed during the
//! step back to the policy. Worker-count residency is recorded for the
//! §V-B analysis.
//!
//! [`PolicyStep`]: switchless_core::policy::PolicyStep

use crate::buffer::SchedCommand;
use crate::runtime::Shared;
use std::sync::atomic::Ordering;
use std::time::Duration;
use switchless_core::policy::SchedulerPolicy;
use switchless_core::WorkerState;

/// Maximum chunk of real sleep between `running` checks.
const SLEEP_CHUNK: Duration = Duration::from_millis(5);

/// Body of the scheduler thread.
pub(crate) fn scheduler_loop(shared: &Shared) {
    let meter = shared
        .accounting
        .as_ref()
        .map(|acc| acc.register("zc-scheduler"));
    let mut policy =
        SchedulerPolicy::new(shared.config.policy_params(), shared.config.initial_workers);
    let spec = *shared.clock.spec();
    // One consistent snapshot per step boundary: the per-step F_i delta
    // and anything else derived from the counters come from the same
    // four readings (CallStats::snapshot), never from interleaved
    // individual getters.
    let mut stats_at_step_start = shared.stats.snapshot();
    let mut last_delta = 0u64;
    #[cfg(feature = "telemetry")]
    let mut traced_decisions = 0u64;
    // Convergence observable: detects the argmin re-settling on a new
    // worker count after a load shift and traces the settle time.
    #[cfg(feature = "telemetry")]
    let mut convergence = switchless_core::policy::ConvergenceTracker::new();

    while shared.running.load(Ordering::Acquire) {
        let step = policy.next(last_delta);
        // Fleet bulkhead: an externally imposed cap (set via
        // `ZcRuntime::set_worker_cap`) bounds whatever the shard-local
        // argmin picked. Computed once per step so activation, the
        // published gauge, telemetry and the residency record agree.
        let m = step
            .workers()
            .min(shared.worker_cap.load(Ordering::Acquire));
        #[cfg(feature = "telemetry")]
        if let Some(hub) = &shared.telemetry {
            use switchless_core::policy::PolicyStep;
            use zc_telemetry::{Event, Origin, PhaseKind};
            // A freshly completed configuration phase: publish the
            // argmin decision with its F_i / U_i inputs.
            if policy.decisions() > traced_decisions {
                traced_decisions = policy.decisions();
                if let Some(d) = policy.last_decision() {
                    let now = shared.clock.now_cycles();
                    hub.record(
                        now,
                        Origin::Scheduler,
                        Event::Decision {
                            decision: d.clone(),
                        },
                    );
                    if let Some(c) = convergence.observe(d.chosen_workers, now) {
                        hub.record(
                            now,
                            Origin::Scheduler,
                            Event::Converged {
                                from_workers: c.from_workers,
                                to_workers: c.to_workers,
                                decisions: c.decisions,
                                settle_cycles: c.settle_cycles,
                            },
                        );
                    }
                }
            }
            let kind = match step {
                PolicyStep::Schedule { .. } => PhaseKind::Schedule,
                PolicyStep::Probe { .. } => PhaseKind::Probe,
            };
            hub.record(
                shared.clock.now_cycles(),
                Origin::Scheduler,
                Event::PhaseStart {
                    kind,
                    workers: m as u32,
                    duration_cycles: step.duration_cycles(),
                },
            );
        }
        set_active_workers(shared, m);
        shared.active_workers.store(m, Ordering::Release);

        // Sleep out the step in real time (the scheduler itself is idle:
        // its CPU cost is negligible by design).
        let step_ns = spec.cycles_to_ns(step.duration_cycles());
        let slept_at = shared.clock.now_cycles();
        sleep_interruptible(shared, Duration::from_nanos(step_ns));
        let now = shared.clock.now_cycles();
        if let Some(m) = &meter {
            m.add_idle(now.saturating_sub(slept_at));
        }
        shared
            .residency
            .lock()
            .record(m, now.saturating_sub(slept_at));

        let stats_now = shared.stats.snapshot();
        last_delta = stats_now.delta_since(&stats_at_step_start).fallback;
        stats_at_step_start = stats_now;
        if policy.decisions() > shared.decisions.load(Ordering::Acquire) {
            *shared.last_decision.lock() = policy.last_decision().cloned();
        }
        shared
            .decisions
            .store(policy.decisions(), Ordering::Release);
    }
}

/// Activate the first `m` *healthy* workers and post `Deactivate` to the
/// rest. Poisoned (quarantined) workers are passed over, so a spare
/// healthy worker takes the slot a crashed one would have occupied.
pub(crate) fn set_active_workers(shared: &Shared, m: usize) {
    let mut activated = 0;
    for slot in shared.workers.iter() {
        let w = slot.read();
        if activated < m && !w.is_poisoned() {
            activated += 1;
            w.post_command(SchedCommand::Run);
            // A corrupted status word reads as Err here and is simply not
            // Paused; the worker/caller guards own the quarantine.
            if w.state() == Ok(WorkerState::Paused)
                && w.try_transition(WorkerState::Paused, WorkerState::Unused)
            {
                w.unpark();
            }
        } else {
            w.post_command(SchedCommand::Deactivate);
            // The worker pauses itself next time it is idle; a worker
            // currently serving a caller finishes that call first
            // (UNUSED -> PAUSED is the only legal pause edge).
        }
    }
}

fn sleep_interruptible(shared: &Shared, total: Duration) {
    let mut remaining = total;
    while !remaining.is_zero() {
        if !shared.running.load(Ordering::Acquire) {
            return;
        }
        let chunk = remaining.min(SLEEP_CHUNK);
        // On a virtual clock this advances logical time instantly, so
        // quanta and micro-quanta step through without wall-clock sleeps.
        shared.clock.sleep(chunk);
        remaining = remaining.saturating_sub(chunk);
    }
}
