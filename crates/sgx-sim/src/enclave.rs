//! Enclave model: EPC budget, trusted-heap accounting and transition
//! counters.
//!
//! The paper's setup (§V): enclaves with 1 GB maximum heap on a machine
//! with a 128 MB EPC of which 93.5 MB is usable. Allocations beyond the
//! usable EPC are still allowed but pay a per-page *EPC paging* penalty,
//! modelling SGX v1 page swapping.

use crate::clock::CycleClock;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use switchless_core::cpu::CpuSpec;

/// Usable EPC on the paper's machine: 93.5 MB.
pub const PAPER_USABLE_EPC: usize = 93 * 1024 * 1024 + 512 * 1024;

/// Default maximum enclave heap: 1 GB (paper §V).
pub const PAPER_HEAP_MAX: usize = 1024 * 1024 * 1024;

/// Cost of swapping one 4 KB EPC page, in cycles. SGX v1 paging costs
/// tens of thousands of cycles per page (EWB + ELDU plus kernel work);
/// we use a representative 40 000.
pub const EPC_PAGE_SWAP_CYCLES: u64 = 40_000;

const PAGE: usize = 4096;

#[derive(Debug)]
struct Inner {
    spec: CpuSpec,
    clock: CycleClock,
    heap_max: usize,
    usable_epc: usize,
    allocated: AtomicUsize,
    peak_allocated: AtomicUsize,
    ecalls: AtomicU64,
    ocalls: AtomicU64,
    paged_pages: AtomicU64,
}

/// Handle to a simulated enclave instance (cheaply cloneable).
///
/// # Example
///
/// ```
/// use sgx_sim::Enclave;
/// use switchless_core::CpuSpec;
///
/// let enclave = Enclave::new(CpuSpec::paper_machine());
/// let buf = enclave.alloc(4096)?;
/// assert_eq!(enclave.allocated_bytes(), 4096);
/// drop(buf);
/// assert_eq!(enclave.allocated_bytes(), 0);
/// # Ok::<(), sgx_sim::enclave::EnclaveOom>(())
/// ```
#[derive(Debug, Clone)]
pub struct Enclave {
    inner: Arc<Inner>,
}

/// Error: trusted heap exhausted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EnclaveOom {
    /// Bytes requested by the failing allocation.
    pub requested: usize,
    /// Bytes already allocated.
    pub in_use: usize,
    /// Configured heap maximum.
    pub heap_max: usize,
}

impl std::fmt::Display for EnclaveOom {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "enclave heap exhausted: requested {} bytes with {}/{} in use",
            self.requested, self.in_use, self.heap_max
        )
    }
}

impl std::error::Error for EnclaveOom {}

impl Enclave {
    /// New enclave with the paper's heap and EPC limits.
    #[must_use]
    pub fn new(spec: CpuSpec) -> Self {
        Self::with_limits(spec, PAPER_HEAP_MAX, PAPER_USABLE_EPC)
    }

    /// New enclave with the paper's limits, running on *virtual* time:
    /// every runtime built on this enclave inherits a
    /// [`CycleClock::new_virtual`] clock, so scheduler quanta, injected
    /// costs and drain timeouts advance logical time instead of sleeping
    /// or spinning on the wall clock. This is the constructor the
    /// deterministic fault-injection tests use.
    #[must_use]
    pub fn new_virtual(spec: CpuSpec) -> Self {
        Self::with_clock(
            spec,
            CycleClock::new_virtual(spec),
            PAPER_HEAP_MAX,
            PAPER_USABLE_EPC,
        )
    }

    /// New enclave with explicit heap maximum and usable EPC.
    #[must_use]
    pub fn with_limits(spec: CpuSpec, heap_max: usize, usable_epc: usize) -> Self {
        Self::with_clock(spec, CycleClock::new(spec), heap_max, usable_epc)
    }

    /// New enclave with an explicit clock (real or virtual) and limits.
    #[must_use]
    pub fn with_clock(
        spec: CpuSpec,
        clock: CycleClock,
        heap_max: usize,
        usable_epc: usize,
    ) -> Self {
        Enclave {
            inner: Arc::new(Inner {
                spec,
                clock,
                heap_max,
                usable_epc,
                allocated: AtomicUsize::new(0),
                peak_allocated: AtomicUsize::new(0),
                ecalls: AtomicU64::new(0),
                ocalls: AtomicU64::new(0),
                paged_pages: AtomicU64::new(0),
            }),
        }
    }

    /// Machine model of the CPU hosting this enclave.
    #[must_use]
    pub fn spec(&self) -> &CpuSpec {
        &self.inner.spec
    }

    /// The enclave's cycle clock (shared epoch across clones).
    #[must_use]
    pub fn clock(&self) -> CycleClock {
        self.inner.clock.clone()
    }

    /// Allocate `bytes` of trusted heap.
    ///
    /// Allocations pushing usage beyond the usable EPC pay
    /// [`EPC_PAGE_SWAP_CYCLES`] per newly paged 4 KB page (cost-injected
    /// spin), modelling SGX v1 EPC oversubscription.
    ///
    /// # Errors
    ///
    /// Returns [`EnclaveOom`] if the configured heap maximum would be
    /// exceeded.
    pub fn alloc(&self, bytes: usize) -> Result<TrustedAlloc, EnclaveOom> {
        let prev = loop {
            let cur = self.inner.allocated.load(Ordering::Relaxed);
            let next = cur
                .checked_add(bytes)
                .filter(|&n| n <= self.inner.heap_max)
                .ok_or(EnclaveOom {
                    requested: bytes,
                    in_use: cur,
                    heap_max: self.inner.heap_max,
                })?;
            if self
                .inner
                .allocated
                .compare_exchange(cur, next, Ordering::Relaxed, Ordering::Relaxed)
                .is_ok()
            {
                break cur;
            }
        };
        let new_total = prev + bytes;
        self.inner
            .peak_allocated
            .fetch_max(new_total, Ordering::Relaxed);
        // Pages newly beyond the usable EPC must be swapped in.
        if new_total > self.inner.usable_epc {
            let over_before = prev.saturating_sub(self.inner.usable_epc);
            let over_after = new_total - self.inner.usable_epc;
            let new_pages = (over_after.div_ceil(PAGE) - over_before.div_ceil(PAGE)) as u64;
            if new_pages > 0 {
                self.inner
                    .paged_pages
                    .fetch_add(new_pages, Ordering::Relaxed);
                self.inner
                    .clock
                    .spin_cycles(new_pages * EPC_PAGE_SWAP_CYCLES);
            }
        }
        Ok(TrustedAlloc {
            enclave: Arc::clone(&self.inner),
            bytes,
        })
    }

    /// Bytes currently allocated on the trusted heap.
    #[must_use]
    pub fn allocated_bytes(&self) -> usize {
        self.inner.allocated.load(Ordering::Relaxed)
    }

    /// High-water mark of trusted-heap usage.
    #[must_use]
    pub fn peak_allocated_bytes(&self) -> usize {
        self.inner.peak_allocated.load(Ordering::Relaxed)
    }

    /// Record an enclave entry (ecall). Returns the new total.
    pub fn record_ecall(&self) -> u64 {
        self.inner.ecalls.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Record an enclave exit/re-entry pair (regular ocall). Returns the
    /// new total.
    pub fn record_ocall(&self) -> u64 {
        self.inner.ocalls.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Total ecalls recorded.
    #[must_use]
    pub fn ecalls(&self) -> u64 {
        self.inner.ecalls.load(Ordering::Relaxed)
    }

    /// Total regular ocalls recorded.
    #[must_use]
    pub fn ocalls(&self) -> u64 {
        self.inner.ocalls.load(Ordering::Relaxed)
    }

    /// EPC pages swapped so far.
    #[must_use]
    pub fn paged_pages(&self) -> u64 {
        self.inner.paged_pages.load(Ordering::Relaxed)
    }
}

/// Guard representing a live trusted-heap allocation; frees its bytes on
/// drop.
#[derive(Debug)]
pub struct TrustedAlloc {
    enclave: Arc<Inner>,
    bytes: usize,
}

impl TrustedAlloc {
    /// Size of this allocation in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bytes
    }

    /// `true` for zero-byte allocations.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bytes == 0
    }
}

impl Drop for TrustedAlloc {
    fn drop(&mut self) {
        self.enclave
            .allocated
            .fetch_sub(self.bytes, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_enclave() -> Enclave {
        // 64 KB heap, 16 KB usable EPC for cheap paging tests.
        Enclave::with_limits(CpuSpec::paper_machine(), 64 * 1024, 16 * 1024)
    }

    #[test]
    fn alloc_and_free_accounting() {
        let e = small_enclave();
        let a = e.alloc(1000).unwrap();
        let b = e.alloc(500).unwrap();
        assert_eq!(e.allocated_bytes(), 1500);
        drop(a);
        assert_eq!(e.allocated_bytes(), 500);
        drop(b);
        assert_eq!(e.allocated_bytes(), 0);
        assert_eq!(e.peak_allocated_bytes(), 1500);
    }

    #[test]
    fn heap_exhaustion_is_an_error() {
        let e = small_enclave();
        let _a = e.alloc(60 * 1024).unwrap();
        let err = e.alloc(8 * 1024).unwrap_err();
        assert_eq!(err.requested, 8 * 1024);
        assert_eq!(err.heap_max, 64 * 1024);
        assert!(err.to_string().contains("exhausted"));
    }

    #[test]
    fn epc_overflow_pages_are_counted() {
        let e = small_enclave();
        let _a = e.alloc(16 * 1024).unwrap(); // exactly at EPC: no paging
        assert_eq!(e.paged_pages(), 0);
        let _b = e.alloc(8 * 1024).unwrap(); // 8 KB over -> 2 pages
        assert_eq!(e.paged_pages(), 2);
        let _c = e.alloc(100).unwrap(); // 100 B over the 2-page mark -> 1 page
        assert_eq!(e.paged_pages(), 3);
    }

    #[test]
    fn transition_counters() {
        let e = small_enclave();
        assert_eq!(e.record_ecall(), 1);
        assert_eq!(e.record_ocall(), 1);
        assert_eq!(e.record_ocall(), 2);
        assert_eq!(e.ecalls(), 1);
        assert_eq!(e.ocalls(), 2);
    }

    #[test]
    fn paper_limits_constructor() {
        let e = Enclave::new(CpuSpec::paper_machine());
        assert_eq!(e.spec().logical_cpus, 8);
        // Can allocate far beyond EPC but within heap max (bounded here
        // to keep the test fast: 1 MB over).
        let a = e.alloc(PAPER_USABLE_EPC).unwrap();
        assert_eq!(e.paged_pages(), 0);
        drop(a);
    }

    #[test]
    fn clones_share_state() {
        let e = small_enclave();
        let e2 = e.clone();
        let _a = e.alloc(1024).unwrap();
        assert_eq!(e2.allocated_bytes(), 1024);
        e2.record_ocall();
        assert_eq!(e.ocalls(), 1);
    }

    #[test]
    fn virtual_enclave_hands_out_a_virtual_clock() {
        let e = Enclave::new_virtual(CpuSpec::paper_machine());
        assert!(e.clock().is_virtual());
        assert_eq!(e.clock().now_cycles(), 0);
        // Paging penalties advance logical time instantly.
        let e2 = Enclave::with_clock(CpuSpec::paper_machine(), e.clock(), 64 * 1024, 16 * 1024);
        let _a = e2.alloc(24 * 1024).unwrap(); // 8 KB over EPC -> 2 pages
        assert_eq!(e2.clock().now_cycles(), 2 * EPC_PAGE_SWAP_CYCLES);
    }

    #[test]
    fn zero_alloc_is_fine() {
        let e = small_enclave();
        let a = e.alloc(0).unwrap();
        assert!(a.is_empty());
        assert_eq!(a.len(), 0);
    }
}
