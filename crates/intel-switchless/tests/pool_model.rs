//! Model-based testing of the Intel task pool: a reference model of slot
//! states must agree with the real pool under arbitrary operation
//! sequences, and the pool must be exactly-once under thread stress.

use intel_switchless::pool::TaskPool;
use proptest::prelude::*;
use switchless_core::{FuncId, OcallRequest};

fn req(tag: u64) -> OcallRequest {
    OcallRequest::new(FuncId(1), &[tag])
}

/// Reference model: each slot's state plus the tag it carries.
#[derive(Debug, Clone, Copy, PartialEq)]
enum ModelSlot {
    Free,
    Claimed,
    Submitted(u64),
    Accepted(u64),
    Done(u64),
}

proptest! {
    /// Random single-threaded op sequences: pool behaviour matches the
    /// model exactly (claims fill free slots in order, accepts take the
    /// first submitted, cancels only win before acceptance, …).
    #[test]
    fn pool_matches_reference_model(ops in prop::collection::vec(0u8..5, 1..80)) {
        let capacity = 3;
        let pool = TaskPool::new(capacity);
        let mut model = vec![ModelSlot::Free; capacity];
        // Claimed-slot tickets from the pool, keyed by slot index.
        let mut claims: Vec<(usize, intel_switchless::pool::SlotIdx)> = Vec::new();
        let mut accepted: Vec<(usize, intel_switchless::pool::SlotIdx)> = Vec::new();
        let mut tag = 0u64;

        for op in ops {
            match op {
                // claim
                0 => {
                    let got = pool.claim();
                    let model_free = model.iter().position(|s| *s == ModelSlot::Free);
                    match (got, model_free) {
                        (Some(idx), Some(mi)) => {
                            model[mi] = ModelSlot::Claimed;
                            claims.push((mi, idx));
                        }
                        (None, None) => {}
                        (got, model_free) => prop_assert!(
                            false,
                            "claim mismatch: pool {got:?} vs model {model_free:?}"
                        ),
                    }
                }
                // submit the oldest claim
                1 => {
                    if let Some((mi, idx)) = claims.pop() {
                        tag += 1;
                        pool.submit(idx, req(tag), &[]).unwrap();
                        model[mi] = ModelSlot::Submitted(tag);
                    }
                }
                // worker accept
                2 => {
                    let got = pool.accept();
                    let submitted: Vec<usize> = model
                        .iter()
                        .enumerate()
                        .filter(|(_, s)| matches!(s, ModelSlot::Submitted(_)))
                        .map(|(i, _)| i)
                        .collect();
                    match (got, submitted.is_empty()) {
                        (Some(idx), false) => {
                            // Any submitted slot may be returned; find a
                            // matching model slot.
                            let mi = submitted[0];
                            let ModelSlot::Submitted(t) = model[mi] else { unreachable!() };
                            model[mi] = ModelSlot::Accepted(t);
                            accepted.push((mi, idx));
                        }
                        (None, true) => {}
                        (got, empty) => prop_assert!(
                            false,
                            "accept mismatch: pool {got:?} vs model empty={empty}"
                        ),
                    }
                }
                // worker complete + caller collect
                3 => {
                    if let Some((mi, idx)) = accepted.pop() {
                        let ModelSlot::Accepted(t) = model[mi] else { unreachable!() };
                        pool.complete(idx, |d| {
                            let got = d.request.take().expect("request present");
                            assert_eq!(got.args[0], t, "slot carries the submitted tag");
                            d.reply.ret = t as i64;
                        }).unwrap();
                        model[mi] = ModelSlot::Done(t);
                        let ret = pool.collect(idx, |d| d.reply.ret).unwrap();
                        prop_assert_eq!(ret, t as i64);
                        model[mi] = ModelSlot::Free;
                    }
                }
                // cancel the oldest submitted
                _ => {
                    if let Some(mi) = model
                        .iter()
                        .position(|s| matches!(s, ModelSlot::Submitted(_)))
                    {
                        // Find its ticket: it's not in claims (submitted) —
                        // reconstruct from the model index (slot idx == mi
                        // because the pool scans in order and our model
                        // mirrors that order).
                        let idx = intel_switchless::pool::SlotIdx::from_raw(mi);
                        if pool.cancel(idx) {
                            model[mi] = ModelSlot::Free;
                        } else {
                            prop_assert!(false, "cancel of submitted slot must win");
                        }
                    }
                }
            }
            // Invariant: pool pending flag agrees with the model.
            let model_pending = model.iter().any(|s| matches!(s, ModelSlot::Submitted(_)));
            prop_assert_eq!(pool.has_pending(), model_pending);
        }
    }
}

/// Multi-threaded stress: every submitted task is executed exactly once
/// with its own payload.
#[test]
fn exactly_once_under_thread_stress() {
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Arc;

    let pool = Arc::new(TaskPool::new(4));
    let served = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));

    // Two worker threads accept and complete.
    let mut workers = Vec::new();
    for _ in 0..2 {
        let pool = Arc::clone(&pool);
        let served = Arc::clone(&served);
        let stop = Arc::clone(&stop);
        workers.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Acquire) {
                if let Some(idx) = pool.accept() {
                    pool.complete(idx, |d| {
                        let r = d.request.take().expect("request");
                        d.reply.ret = r.args[0] as i64;
                    })
                    .unwrap();
                    served.fetch_add(1, Ordering::Relaxed);
                } else {
                    std::thread::yield_now();
                }
            }
        }));
    }

    // Three caller threads submit, wait and validate.
    let mut callers = Vec::new();
    for c in 0..3u64 {
        let pool = Arc::clone(&pool);
        callers.push(std::thread::spawn(move || {
            for i in 0..200u64 {
                let tag = c * 1_000 + i;
                let idx = loop {
                    if let Some(idx) = pool.claim() {
                        break idx;
                    }
                    std::thread::yield_now();
                };
                pool.submit(idx, req(tag), &[]).unwrap();
                while !pool.is_done(idx) {
                    std::thread::yield_now();
                }
                let ret = pool.collect(idx, |d| d.reply.ret).unwrap();
                assert_eq!(ret, tag as i64, "caller {c} got someone else's reply");
            }
        }));
    }
    for h in callers {
        h.join().unwrap();
    }
    stop.store(true, Ordering::Release);
    for h in workers {
        h.join().unwrap();
    }
    assert_eq!(
        served.load(Ordering::Relaxed),
        600,
        "each task served exactly once"
    );
}
