//! Criterion benchmarks of the simulation harness itself: how fast the
//! DES regenerates (reduced-size) paper figures. Keeps `cargo bench`
//! exercising the full figure pipeline end to end.

use criterion::{criterion_group, criterion_main, Criterion};
use zc_bench::experiments::{kissdb, synthetic};

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("des_figures");
    group.sample_size(10);

    let params = synthetic::SynthParams {
        total_ops: 10_000,
        threads: 8,
        g_pauses: 500,
        workers: 2,
    };
    group.bench_function("fig2_c1_10k_ocalls", |b| {
        b.iter(|| synthetic::run_synthetic(synthetic::SynthConfig::C1, params));
    });

    let trace = kissdb::set_trace(500);
    let cfgs = kissdb::configs(2);
    let zc = cfgs.iter().find(|m| m.label == "zc").unwrap();
    group.bench_function("fig8_kissdb_zc_500_keys", |b| {
        b.iter(|| kissdb::run(&trace, zc));
    });
    let no_sl = cfgs.iter().find(|m| m.label == "no_sl").unwrap();
    group.bench_function("fig8_kissdb_no_sl_500_keys", |b| {
        b.iter(|| kissdb::run(&trace, no_sl));
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().measurement_time(std::time::Duration::from_secs(3));
    targets = bench_figures
}
criterion_main!(benches);
