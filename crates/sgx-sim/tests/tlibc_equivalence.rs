//! Exhaustive equivalence tests of the tlibc boundary-copy models
//! (paper §IV-F).
//!
//! The Fig. 7 plateau exists because Intel's vanilla `memcpy` switches
//! between a word path (pointers congruent mod 8) and a byte path — so
//! the *correctness* of both our models has to hold at every alignment
//! phase and at every size that straddles the prefix/word-body/tail
//! thresholds. Each primitive is checked against a naive index-loop
//! oracle across alignment offsets `0..16` for source and destination
//! (covering every congruent and incongruent phase pair twice) and a
//! size ladder spanning the 8-byte word boundaries.

use sgx_sim::tlibc::{
    memcmp_vanilla, memcmp_zc, memcpy_vanilla, memcpy_zc, memmove_vanilla, memmove_zc,
    memset_vanilla, memset_zc, strlen_vanilla, strlen_zc, MemcpyKind,
};

/// Sizes straddling every interesting threshold: empty, sub-word, the
/// word boundary itself, word ±1, multi-word ±1, and page-ish bulk.
const SIZES: &[usize] = &[
    0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16, 17, 23, 24, 25, 31, 32, 33, 63, 64, 65, 127, 128, 129,
    255, 256, 257, 4095, 4096, 4097,
];

/// Alignment phases for each pointer: two full trips around mod 8 so
/// congruent (`doff % 8 == soff % 8`) and incongruent pairs both occur
/// at small and large absolute offsets.
const OFFSETS: std::ops::Range<usize> = 0..16;

/// An 8-byte-aligned byte arena of at least `n + 16` usable bytes.
fn arena(n: usize) -> Vec<u64> {
    vec![0u64; n / 8 + 4]
}

fn bytes(a: &mut [u64]) -> &mut [u8] {
    unsafe { std::slice::from_raw_parts_mut(a.as_mut_ptr().cast::<u8>(), a.len() * 8) }
}

fn pattern(n: usize, seed: usize) -> Vec<u8> {
    (0..n)
        .map(|i| (i.wrapping_mul(31) + seed.wrapping_mul(17) + 7) as u8)
        .collect()
}

#[test]
fn memcpy_vanilla_and_zc_agree_across_alignments_and_sizes() {
    for &n in SIZES {
        let data = pattern(n, n);
        for doff in OFFSETS {
            for soff in OFFSETS {
                let mut src_a = arena(n + 16);
                let src_b = bytes(&mut src_a);
                src_b[soff..soff + n].copy_from_slice(&data);

                // Oracle: the std copy (independent of both models).
                let mut oracle = vec![0u8; n];
                oracle.copy_from_slice(&src_b[soff..soff + n]);

                let mut d1_a = arena(n + 16);
                let d1 = bytes(&mut d1_a);
                memcpy_vanilla(&mut d1[doff..doff + n], &src_b[soff..soff + n]);
                assert_eq!(
                    &d1[doff..doff + n],
                    &oracle[..],
                    "vanilla memcpy wrong at n={n} doff={doff} soff={soff} \
                     (congruent={})",
                    doff % 8 == soff % 8
                );
                // Copy must not scribble outside the destination range.
                assert!(
                    d1[..doff].iter().all(|&b| b == 0),
                    "vanilla underflow at n={n}"
                );
                assert!(
                    d1[doff + n..].iter().all(|&b| b == 0),
                    "vanilla overflow at n={n}"
                );

                let mut d2_a = arena(n + 16);
                let d2 = bytes(&mut d2_a);
                memcpy_zc(&mut d2[doff..doff + n], &src_b[soff..soff + n]);
                assert_eq!(
                    &d2[doff..doff + n],
                    &oracle[..],
                    "zc memcpy wrong at n={n} doff={doff} soff={soff}"
                );
                assert!(d2[..doff].iter().all(|&b| b == 0), "zc underflow at n={n}");
                assert!(
                    d2[doff + n..].iter().all(|&b| b == 0),
                    "zc overflow at n={n}"
                );

                // Source must be untouched.
                assert_eq!(
                    &src_b[soff..soff + n],
                    &data[..],
                    "source clobbered at n={n}"
                );
            }
        }
    }
}

#[test]
fn memcpy_kind_dispatch_matches_free_functions() {
    let data = pattern(257, 3);
    for kind in [MemcpyKind::Vanilla, MemcpyKind::Zc] {
        let mut dst = vec![0u8; data.len()];
        kind.copy(&mut dst, &data);
        assert_eq!(dst, data, "{kind:?} dispatch must copy faithfully");
    }
}

#[test]
fn memset_vanilla_and_zc_agree_across_alignments_and_sizes() {
    for &n in SIZES {
        for off in OFFSETS {
            for value in [0u8, 1, 0x5A, 0xFF] {
                let mut a1 = arena(n + 16);
                let b1 = bytes(&mut a1);
                memset_vanilla(&mut b1[off..off + n], value);
                let mut a2 = arena(n + 16);
                let b2 = bytes(&mut a2);
                memset_zc(&mut b2[off..off + n], value);
                assert_eq!(
                    &b1[off..off + n],
                    &b2[off..off + n],
                    "n={n} off={off} v={value}"
                );
                assert!(b1[off..off + n].iter().all(|&b| b == value));
                assert!(b1[..off].iter().all(|&b| b == 0), "memset underflow");
                assert!(b1[off + n..].iter().all(|&b| b == 0), "memset overflow");
            }
        }
    }
}

#[test]
fn memcmp_vanilla_and_zc_agree_on_sign() {
    for &n in SIZES {
        let base = pattern(n, 1);
        // Equal buffers.
        assert_eq!(memcmp_vanilla(&base, &base), 0, "n={n}");
        assert_eq!(memcmp_zc(&base, &base), 0, "n={n}");
        // A single differing byte at the front, middle, back.
        for pos in [0usize, n / 2, n.saturating_sub(1)] {
            if n == 0 {
                continue;
            }
            let mut hi = base.clone();
            hi[pos] = hi[pos].wrapping_add(1).max(1);
            let mut lo = base.clone();
            lo[pos] = 0;
            for (a, b) in [(&hi, &base), (&base, &hi), (&lo, &hi), (&hi, &lo)] {
                let v = memcmp_vanilla(a, b);
                let z = memcmp_zc(a, b);
                assert_eq!(
                    v.signum(),
                    z.signum(),
                    "sign mismatch at n={n} pos={pos}: vanilla={v} zc={z}"
                );
            }
        }
        // Prefix-of relation orders by length.
        if n > 0 {
            let shorter = &base[..n - 1];
            assert_eq!(memcmp_vanilla(shorter, &base).signum(), -1, "n={n}");
            assert_eq!(memcmp_zc(shorter, &base).signum(), -1, "n={n}");
        }
    }
}

#[test]
fn memmove_vanilla_and_zc_agree_under_overlap() {
    // Forward, backward and disjoint moves at every distance 0..16 and
    // threshold-spanning lengths, vs a copy-out oracle.
    for &len in &[0usize, 1, 7, 8, 9, 16, 17, 64, 65, 256] {
        for dist in 0..16usize {
            let size = len + dist + 32;
            let init = pattern(size, len + dist);
            for (src, dst) in [(dist, 0), (0, dist), (8, 8 + dist)] {
                if src + len > size || dst + len > size {
                    continue;
                }
                // Oracle: copy the source range out first, then paste.
                let mut oracle = init.clone();
                let chunk: Vec<u8> = oracle[src..src + len].to_vec();
                oracle[dst..dst + len].copy_from_slice(&chunk);

                let mut b1 = init.clone();
                memmove_vanilla(&mut b1, src, dst, len);
                assert_eq!(b1, oracle, "vanilla memmove len={len} src={src} dst={dst}");

                let mut b2 = init.clone();
                memmove_zc(&mut b2, src, dst, len);
                assert_eq!(b2, oracle, "zc memmove len={len} src={src} dst={dst}");
            }
        }
    }
}

#[test]
fn strlen_vanilla_and_zc_agree() {
    for &n in SIZES {
        // NUL at every position, plus no NUL at all.
        let mut positions: Vec<usize> = (0..n.min(24)).collect();
        positions.extend([n / 2, n.saturating_sub(1)]);
        for &p in &positions {
            if p >= n {
                continue;
            }
            let mut buf: Vec<u8> = (0..n).map(|i| (i % 250 + 1) as u8).collect();
            buf[p] = 0;
            assert_eq!(strlen_vanilla(&buf), p, "n={n} p={p}");
            assert_eq!(strlen_zc(&buf), p, "n={n} p={p}");
        }
        let no_nul: Vec<u8> = vec![7u8; n];
        assert_eq!(strlen_vanilla(&no_nul), n);
        assert_eq!(strlen_zc(&no_nul), n);
    }
}
