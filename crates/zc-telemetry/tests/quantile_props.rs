//! Property tests of the histogram percentile estimators: the log₂
//! buckets lose precision but must never lose *bracketing* — every
//! histogram-derived percentile bounds the exact sample percentile
//! within one bucket — and the windowed estimator must track a step
//! change in the observed load once the old windows age out.

use proptest::prelude::*;
use zc_telemetry::quantile::{
    bucket_index, bucket_lower, bucket_upper, nearest_rank, percentile_bounds,
};
use zc_telemetry::{Quantiles, WindowedQuantiles, HIST_BUCKETS};

/// Exact nearest-rank percentile of a sample set.
fn exact_percentile(samples: &[u64], q: f64) -> u64 {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = nearest_rank(sorted.len() as u64, q);
    sorted[(rank as usize).saturating_sub(1)]
}

/// Histogram of a sample set in the telemetry-wide bucket geometry.
fn histogram(samples: &[u64]) -> [u64; HIST_BUCKETS] {
    let mut counts = [0u64; HIST_BUCKETS];
    for &s in samples {
        counts[bucket_index(s)] += 1;
    }
    counts
}

proptest! {
    /// For arbitrary sample sets, each derived p50/p99/p99.9 brackets
    /// the exact nearest-rank percentile within one log₂ bucket: the
    /// returned bounds are precisely the edges of the bucket holding
    /// the exact value.
    #[test]
    fn percentiles_bracket_exact_within_one_bucket(
        samples in prop::collection::vec(0u64..1u64 << 50, 1..200),
    ) {
        let counts = histogram(&samples);
        for q in [0.50, 0.99, 0.999] {
            let exact = exact_percentile(&samples, q);
            let (lo, hi) = percentile_bounds(&counts, q).expect("non-empty histogram");
            prop_assert!(lo <= exact && exact <= hi,
                "q={}: exact {} outside [{}, {}]", q, exact, lo, hi);
            let b = bucket_index(exact);
            prop_assert_eq!(lo, bucket_lower(b));
            prop_assert_eq!(hi, bucket_upper(b));
        }
    }

    /// Derived quantiles are monotone: p50 <= p99 <= p99.9 on any
    /// histogram.
    #[test]
    fn quantiles_are_monotone(
        samples in prop::collection::vec(0u64..1u64 << 50, 1..200),
    ) {
        let q = Quantiles::from_counts(&histogram(&samples));
        prop_assert!(q.p50 <= q.p99);
        prop_assert!(q.p99 <= q.p999);
    }

    /// The windowed estimator tracks a step change in the load: before
    /// the shift its p50 sits in the low-value bucket; once the shift's
    /// windows displace the old ones, its p50 sits in the high-value
    /// bucket (a whole-history histogram would stay biased forever).
    #[test]
    fn windowed_estimator_tracks_step_change(
        low in 1u64..4096,
        shift in 8u32..20,
        per_window in 1usize..40,
        windows in 2usize..6,
    ) {
        let high = low << shift;
        prop_assert!(bucket_index(high) > bucket_index(low));
        let mut est = WindowedQuantiles::new(windows);
        for _ in 0..windows {
            for _ in 0..per_window {
                est.record(low);
            }
            est.roll();
        }
        // Settled on the old load.
        prop_assert_eq!(est.percentile(0.50), Some(bucket_upper(bucket_index(low))));
        // Step change: the load jumps to `high`.
        for _ in 0..windows {
            for _ in 0..per_window {
                est.record(high);
            }
            est.roll();
        }
        // Every low window has aged out; the estimate has converged.
        // (The open current window is empty, so `windows - 1` sealed
        // high windows remain in history.)
        prop_assert_eq!(est.count(), ((windows - 1) * per_window) as u64);
        prop_assert_eq!(est.percentile(0.50), Some(bucket_upper(bucket_index(high))));
        prop_assert_eq!(est.quantiles().p999, bucket_upper(bucket_index(high)));
    }
}
