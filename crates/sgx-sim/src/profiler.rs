//! Ocall profiler — the paper's §VII extension ("integrating with
//! profiling tools, to offer deployers an additional monitoring knob").
//!
//! [`OcallProfiler`] wraps any [`OcallDispatcher`] and records, per
//! function: call count, routing (switchless/fallback/regular), total and
//! min/max duration, and a log₂ latency histogram. Its report applies
//! the Intel SDK's own selection guidance — *short duration* and
//! *frequently called* — to recommend switchless candidates, i.e. it
//! automates the build-time analysis the paper argues developers cannot
//! do by hand (§III-A), and doubles as a monitor for ZC's runtime
//! behaviour.

use crate::clock::CycleClock;
use parking_lot::Mutex;
use std::fmt;
use switchless_core::{CallPath, CpuSpec, OcallDispatcher, OcallRequest, SwitchlessError};
use zc_telemetry::quantile;
use zc_telemetry::Quantiles;

/// Histogram bucket count — the telemetry-wide log₂ geometry
/// ([`zc_telemetry::HIST_BUCKETS`]); bucket math and percentile
/// estimation are delegated to [`zc_telemetry::quantile`], so this
/// profiler, the phase profiler and the metrics registry share one
/// source of truth.
pub const BUCKETS: usize = zc_telemetry::HIST_BUCKETS;

/// Per-function accumulated statistics.
#[derive(Debug, Clone)]
pub struct FuncProfile {
    /// Function name (from the table) or `#<id>`.
    pub name: String,
    /// Total calls observed.
    pub calls: u64,
    /// Calls per routing outcome.
    pub switchless: u64,
    /// Fallback-routed calls.
    pub fallback: u64,
    /// Regular-routed calls.
    pub regular: u64,
    /// Sum of call durations in cycles.
    pub total_cycles: u64,
    /// Shortest observed call.
    pub min_cycles: u64,
    /// Longest observed call.
    pub max_cycles: u64,
    /// log₂ duration histogram: bucket `i` counts calls in
    /// `[2^i, 2^(i+1))` cycles.
    pub histogram: [u64; BUCKETS],
}

impl FuncProfile {
    fn new(name: String) -> Self {
        FuncProfile {
            name,
            calls: 0,
            switchless: 0,
            fallback: 0,
            regular: 0,
            total_cycles: 0,
            min_cycles: u64::MAX,
            max_cycles: 0,
            histogram: [0; BUCKETS],
        }
    }

    fn record(&mut self, cycles: u64, path: CallPath) {
        self.calls += 1;
        match path {
            CallPath::Switchless => self.switchless += 1,
            CallPath::Fallback => self.fallback += 1,
            CallPath::Regular => self.regular += 1,
        }
        // Saturate rather than wrap: a single pathological duration (or
        // a very long profiling window) must not corrupt the mean, and
        // durations at or beyond the last bucket's lower edge clamp
        // into it instead of indexing out of range.
        self.total_cycles = self.total_cycles.saturating_add(cycles);
        self.min_cycles = self.min_cycles.min(cycles);
        self.max_cycles = self.max_cycles.max(cycles);
        self.histogram[quantile::bucket_index(cycles)] += 1;
    }

    /// Mean call duration in cycles (0 when never called).
    #[must_use]
    pub fn mean_cycles(&self) -> u64 {
        self.total_cycles.checked_div(self.calls).unwrap_or(0)
    }

    /// Median-ish duration: the lower edge of the histogram bucket
    /// containing the 50th percentile (0 when never called).
    #[must_use]
    pub fn p50_bucket_cycles(&self) -> u64 {
        quantile::percentile_bounds(&self.histogram, 0.50)
            .map(|(lo, _)| lo)
            .unwrap_or(0)
    }

    /// p50/p99/p99.9 estimates (conservative upper bucket edges) over
    /// the recorded durations.
    #[must_use]
    pub fn quantiles(&self) -> Quantiles {
        Quantiles::from_counts(&self.histogram)
    }
}

/// Recommendation for one function, following the SDK guidance the paper
/// quotes: mark a routine switchless if it is *short* and *frequent*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recommendation {
    /// Short and frequent: a switchless candidate.
    Switchless,
    /// Long relative to the transition cost: keep regular.
    KeepRegular,
    /// Too few calls to matter either way.
    TooRare,
}

impl fmt::Display for Recommendation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Recommendation::Switchless => "switchless candidate",
            Recommendation::KeepRegular => "keep regular",
            Recommendation::TooRare => "too rare to matter",
        })
    }
}

/// Dispatcher wrapper that profiles every call it forwards.
///
/// # Example
///
/// ```
/// use sgx_sim::{Enclave, RegularOcall};
/// use sgx_sim::profiler::OcallProfiler;
/// use switchless_core::{CpuSpec, OcallDispatcher, OcallRequest, OcallTable};
/// use std::sync::Arc;
///
/// let mut table = OcallTable::new();
/// let nop = table.register("nop", |_: &[u64; 6], _: &[u8], _: &mut Vec<u8>| 0);
/// let table = Arc::new(table);
/// let enclave = Enclave::new(CpuSpec::paper_machine());
/// let inner = RegularOcall::new(Arc::clone(&table), enclave.clone());
/// let prof = OcallProfiler::new(inner, enclave.clock(), Arc::clone(&table));
/// let mut out = Vec::new();
/// prof.dispatch(&OcallRequest::new(nop, &[]), &[], &mut out)?;
/// let report = prof.report();
/// assert_eq!(report.rows[nop.0 as usize].calls, 1);
/// # Ok::<(), switchless_core::SwitchlessError>(())
/// ```
pub struct OcallProfiler<D> {
    inner: D,
    clock: CycleClock,
    profiles: Mutex<Vec<FuncProfile>>,
    started_at: u64,
}

impl<D> fmt::Debug for OcallProfiler<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("OcallProfiler")
            .field("functions", &self.profiles.lock().len())
            .finish()
    }
}

impl<D: OcallDispatcher> OcallProfiler<D> {
    /// Profile calls through `inner`, naming functions from `table`.
    #[must_use]
    pub fn new(
        inner: D,
        clock: CycleClock,
        table: std::sync::Arc<switchless_core::OcallTable>,
    ) -> Self {
        let profiles = (0..table.len())
            .map(|i| {
                let id = switchless_core::FuncId(i as u16);
                FuncProfile::new(table.name(id).unwrap_or("#?").to_string())
            })
            .collect();
        let started_at = clock.now_cycles();
        OcallProfiler {
            inner,
            clock,
            profiles: Mutex::new(profiles),
            started_at,
        }
    }

    /// Build the profile report.
    #[must_use]
    pub fn report(&self) -> ProfileReport {
        ProfileReport {
            rows: self.profiles.lock().clone(),
            window_cycles: self.clock.now_cycles().saturating_sub(self.started_at),
            cpu: *self.clock.spec(),
        }
    }

    /// Access the wrapped dispatcher.
    #[must_use]
    pub fn inner(&self) -> &D {
        &self.inner
    }
}

impl<D: OcallDispatcher> OcallDispatcher for OcallProfiler<D> {
    fn dispatch(
        &self,
        req: &OcallRequest,
        payload_in: &[u8],
        payload_out: &mut Vec<u8>,
    ) -> Result<(i64, CallPath), SwitchlessError> {
        let t0 = self.clock.now_cycles();
        let result = self.inner.dispatch(req, payload_in, payload_out);
        let dt = self.clock.now_cycles().saturating_sub(t0);
        if let Ok((_, path)) = &result {
            let mut profiles = self.profiles.lock();
            let idx = req.func.0 as usize;
            if idx >= profiles.len() {
                profiles.resize_with(idx + 1, || FuncProfile::new(format!("#{idx}")));
            }
            profiles[idx].record(dt, *path);
        }
        result
    }
}

/// Snapshot of all function profiles with recommendation logic.
#[derive(Debug, Clone)]
pub struct ProfileReport {
    /// Per-function rows, indexed by function id.
    pub rows: Vec<FuncProfile>,
    /// Profiled window length in cycles.
    pub window_cycles: u64,
    /// Machine model (for the `T_es` threshold and rates).
    pub cpu: CpuSpec,
}

impl ProfileReport {
    /// Fraction of all calls that hit function `idx`.
    #[must_use]
    pub fn call_share(&self, idx: usize) -> f64 {
        let total: u64 = self.rows.iter().map(|r| r.calls).sum();
        if total == 0 {
            return 0.0;
        }
        self.rows
            .get(idx)
            .map_or(0.0, |r| r.calls as f64 / total as f64)
    }

    /// SDK-guidance recommendation for function `idx`: *short* means a
    /// mean host-side duration below `2 × T_es` (a switchless execution
    /// would at least halve the per-call cost), *frequent* means at
    /// least 1 % of all calls and 100 calls absolute.
    #[must_use]
    pub fn recommendation(&self, idx: usize) -> Recommendation {
        let Some(row) = self.rows.get(idx) else {
            return Recommendation::TooRare;
        };
        if row.calls < 100 || self.call_share(idx) < 0.01 {
            return Recommendation::TooRare;
        }
        // The measured duration includes the transition itself for
        // regular-routed calls; subtract it to estimate host time.
        let mean = row.mean_cycles();
        let host_estimate = if row.regular + row.fallback > row.switchless {
            mean.saturating_sub(self.cpu.t_es_cycles)
        } else {
            mean
        };
        if host_estimate <= 2 * self.cpu.t_es_cycles {
            Recommendation::Switchless
        } else {
            Recommendation::KeepRegular
        }
    }

    /// Names of all functions recommended for switchless execution.
    #[must_use]
    pub fn switchless_candidates(&self) -> Vec<&str> {
        self.rows
            .iter()
            .enumerate()
            .filter(|(i, _)| self.recommendation(*i) == Recommendation::Switchless)
            .map(|(_, r)| r.name.as_str())
            .collect()
    }
}

impl fmt::Display for ProfileReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "ocall profile over {:.3} s:",
            self.cpu.cycles_to_secs(self.window_cycles)
        )?;
        writeln!(
            f,
            "{:>16} {:>9} {:>10} {:>10} {:>10} {:>11} {:>8}  recommendation",
            "function", "calls", "switchless", "fallback", "regular", "mean (cyc)", "share"
        )?;
        for (i, r) in self.rows.iter().enumerate() {
            if r.calls == 0 {
                continue;
            }
            writeln!(
                f,
                "{:>16} {:>9} {:>10} {:>10} {:>10} {:>11} {:>7.1}%  {}",
                r.name,
                r.calls,
                r.switchless,
                r.fallback,
                r.regular,
                r.mean_cycles(),
                self.call_share(i) * 100.0,
                self.recommendation(i)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enclave::Enclave;
    use crate::transition::RegularOcall;
    use std::sync::Arc;
    use switchless_core::{OcallTable, MAX_OCALL_ARGS};

    fn setup() -> (
        OcallProfiler<RegularOcall>,
        switchless_core::FuncId,
        switchless_core::FuncId,
        CycleClock,
    ) {
        let mut table = OcallTable::new();
        let short = table.register(
            "short",
            |_: &[u64; MAX_OCALL_ARGS], _: &[u8], _: &mut Vec<u8>| 0,
        );
        let enclave = Enclave::new(CpuSpec::paper_machine());
        let clock = enclave.clock();
        let c2 = clock.clone();
        let long = table.register(
            "long",
            move |_: &[u64; MAX_OCALL_ARGS], _: &[u8], _: &mut Vec<u8>| {
                c2.spin_cycles(100_000); // ~7x T_es
                0
            },
        );
        let table = Arc::new(table);
        let inner = RegularOcall::new(Arc::clone(&table), enclave);
        (
            OcallProfiler::new(inner, clock.clone(), table),
            short,
            long,
            clock,
        )
    }

    #[test]
    fn records_counts_and_durations() {
        let (prof, short, long, _) = setup();
        let mut out = Vec::new();
        for _ in 0..150 {
            prof.dispatch(&OcallRequest::new(short, &[]), &[], &mut out)
                .unwrap();
        }
        for _ in 0..110 {
            prof.dispatch(&OcallRequest::new(long, &[]), &[], &mut out)
                .unwrap();
        }
        let report = prof.report();
        assert_eq!(report.rows[short.0 as usize].calls, 150);
        assert_eq!(report.rows[long.0 as usize].calls, 110);
        assert!(
            report.rows[long.0 as usize].mean_cycles()
                > report.rows[short.0 as usize].mean_cycles() + 50_000,
            "long must measure much slower than short"
        );
        assert!(
            report.rows[short.0 as usize].min_cycles <= report.rows[short.0 as usize].max_cycles
        );
        assert!(report.window_cycles > 0);
    }

    #[test]
    fn recommendations_follow_sdk_guidance() {
        // Deterministic: build the report from synthetic rows rather
        // than wall-clock measurements (which a loaded host can skew).
        let mut short = FuncProfile::new("short".into());
        let mut long = FuncProfile::new("long".into());
        let cpu = CpuSpec::paper_machine();
        for _ in 0..200 {
            // Regular-routed short call: measured = T_es + small host.
            short.record(cpu.t_es_cycles + 1_000, CallPath::Regular);
            // Long call: host ~7x T_es.
            long.record(cpu.t_es_cycles + 7 * cpu.t_es_cycles, CallPath::Regular);
        }
        let report = ProfileReport {
            rows: vec![short, long],
            window_cycles: 1_000_000,
            cpu,
        };
        assert_eq!(
            report.recommendation(0),
            Recommendation::Switchless,
            "short+frequent must be a candidate"
        );
        assert_eq!(
            report.recommendation(1),
            Recommendation::KeepRegular,
            "calls ~7x T_es must stay regular"
        );
        assert_eq!(report.switchless_candidates(), vec!["short"]);
    }

    #[test]
    fn live_measurement_separates_short_from_long() {
        // Wall-clock smoke test with a generous margin only.
        let (prof, short, long, _) = setup();
        let mut out = Vec::new();
        for _ in 0..50 {
            prof.dispatch(&OcallRequest::new(short, &[]), &[], &mut out)
                .unwrap();
            prof.dispatch(&OcallRequest::new(long, &[]), &[], &mut out)
                .unwrap();
        }
        let report = prof.report();
        assert!(
            report.rows[long.0 as usize].mean_cycles()
                > report.rows[short.0 as usize].mean_cycles(),
            "long must measure slower than short"
        );
    }

    #[test]
    fn rare_functions_are_flagged_rare() {
        let (prof, short, long, _) = setup();
        let mut out = Vec::new();
        for _ in 0..500 {
            prof.dispatch(&OcallRequest::new(short, &[]), &[], &mut out)
                .unwrap();
        }
        prof.dispatch(&OcallRequest::new(long, &[]), &[], &mut out)
            .unwrap();
        let report = prof.report();
        assert_eq!(
            report.recommendation(long.0 as usize),
            Recommendation::TooRare
        );
    }

    #[test]
    fn report_displays_every_called_function() {
        let (prof, short, _, _) = setup();
        let mut out = Vec::new();
        prof.dispatch(&OcallRequest::new(short, &[]), &[], &mut out)
            .unwrap();
        let text = prof.report().to_string();
        assert!(text.contains("short"));
        assert!(text.contains("recommendation"));
        assert!(!text.contains("long"), "uncalled functions are omitted");
    }

    #[test]
    fn histogram_buckets_follow_shared_log_linear_geometry() {
        let mut p = FuncProfile::new("x".into());
        p.record(1, CallPath::Regular);
        p.record(2, CallPath::Regular);
        p.record(3, CallPath::Regular);
        p.record(1024, CallPath::Regular);
        // Values below 4 get singleton buckets; larger values land in
        // 4-per-octave sub-buckets (see zc_telemetry::quantile).
        assert_eq!(p.histogram[quantile::bucket_index(1)], 1);
        assert_eq!(p.histogram[quantile::bucket_index(2)], 1);
        assert_eq!(p.histogram[quantile::bucket_index(3)], 1);
        assert_eq!(p.histogram[quantile::bucket_index(1024)], 1);
        assert_ne!(quantile::bucket_index(2), quantile::bucket_index(3));
        assert_eq!(p.p50_bucket_cycles(), 2);
    }

    #[test]
    fn quantiles_delegate_to_shared_bucket_math() {
        let mut p = FuncProfile::new("x".into());
        for _ in 0..99 {
            p.record(100, CallPath::Switchless);
        }
        p.record(1_000_000, CallPath::Switchless);
        let q = p.quantiles();
        assert_eq!(q.p50, quantile::bucket_upper(quantile::bucket_index(100)));
        assert!(q.p999 >= 1_000_000, "tail sample must pull p99.9 up");
        assert_eq!(
            p.p50_bucket_cycles(),
            quantile::bucket_lower(quantile::bucket_index(100))
        );
    }

    #[test]
    fn histogram_saturates_instead_of_overflowing() {
        // Durations at or beyond the last bucket's lower edge must
        // clamp into that bucket, and the running total must saturate
        // instead of wrapping.
        let mut p = FuncProfile::new("x".into());
        p.record(quantile::bucket_lower(BUCKETS - 1), CallPath::Regular); // first clamped value
        p.record(u64::MAX, CallPath::Regular); // extreme
        p.record(u64::MAX, CallPath::Regular); // would wrap a wrapping sum
        assert_eq!(p.calls, 3);
        assert_eq!(
            p.histogram[BUCKETS - 1],
            3,
            "oversized durations land in the last bucket"
        );
        assert_eq!(p.histogram.iter().sum::<u64>(), 3, "no bucket is skipped");
        assert_eq!(
            p.total_cycles,
            u64::MAX,
            "total saturates instead of wrapping"
        );
        assert_eq!(p.max_cycles, u64::MAX);
        assert_eq!(p.mean_cycles(), u64::MAX / 3);
    }

    #[test]
    fn empty_report_math_is_safe() {
        let r = ProfileReport {
            rows: vec![FuncProfile::new("f".into())],
            window_cycles: 0,
            cpu: CpuSpec::paper_machine(),
        };
        assert_eq!(r.call_share(0), 0.0);
        assert_eq!(r.recommendation(0), Recommendation::TooRare);
        assert_eq!(r.recommendation(99), Recommendation::TooRare);
    }
}
