//! Bounded lock-free MPSC ring buffer (Vyukov-style bounded queue).
//!
//! Multiple producers race a CAS on the head cursor; each slot carries
//! a sequence atomic that hands ownership between producers and the
//! single consumer without locks. When the ring is full the *newest*
//! event is dropped (never the producer blocked) and a drop counter is
//! bumped, so tracing can never stall the caller hot path.

use crate::event::RecordedEvent;
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicU64, Ordering};

struct Slot {
    /// Vyukov sequence: `pos` = empty and claimable by the producer of
    /// `pos`; `pos + 1` = filled, readable by the consumer at `pos`;
    /// `pos + capacity` = recycled for the next lap.
    seq: AtomicU64,
    value: UnsafeCell<MaybeUninit<RecordedEvent>>,
}

pub(crate) struct Ring {
    slots: Box<[Slot]>,
    mask: u64,
    /// Producer cursor (next position to claim).
    head: AtomicU64,
    /// Consumer cursor (next position to read). Single consumer:
    /// `Tracer` serialises access behind a mutex on the drain path.
    tail: AtomicU64,
    dropped: AtomicU64,
}

// SAFETY: slot payloads are only touched by the producer that won the
// CAS for that position (before the release store of seq) or by the
// single consumer after an acquire load observes seq == pos + 1.
unsafe impl Send for Ring {}
unsafe impl Sync for Ring {}

impl Ring {
    pub(crate) fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.next_power_of_two().max(2);
        let slots: Box<[Slot]> = (0..cap)
            .map(|i| Slot {
                seq: AtomicU64::new(i as u64),
                value: UnsafeCell::new(MaybeUninit::uninit()),
            })
            .collect();
        Ring {
            slots,
            mask: (cap - 1) as u64,
            head: AtomicU64::new(0),
            tail: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    pub(crate) fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Push one event; returns `false` (and counts a drop) when full.
    pub(crate) fn push(&self, ev: RecordedEvent) -> bool {
        let mut pos = self.head.load(Ordering::Relaxed);
        loop {
            let slot = &self.slots[(pos & self.mask) as usize];
            let seq = slot.seq.load(Ordering::Acquire);
            if seq == pos {
                match self.head.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // We own the slot until the release store below.
                        unsafe { (*slot.value.get()).write(ev) };
                        slot.seq.store(pos.wrapping_add(1), Ordering::Release);
                        return true;
                    }
                    Err(current) => pos = current,
                }
            } else if seq < pos {
                // The consumer has not recycled this slot yet: full.
                self.dropped.fetch_add(1, Ordering::Relaxed);
                return false;
            } else {
                // Another producer claimed `pos`; chase the head.
                pos = self.head.load(Ordering::Relaxed);
            }
        }
    }

    /// Pop the oldest event.
    ///
    /// # Safety
    /// Must only be called by one thread at a time (single consumer).
    pub(crate) unsafe fn pop(&self) -> Option<RecordedEvent> {
        let pos = self.tail.load(Ordering::Relaxed);
        let slot = &self.slots[(pos & self.mask) as usize];
        let seq = slot.seq.load(Ordering::Acquire);
        if seq == pos.wrapping_add(1) {
            self.tail.store(pos.wrapping_add(1), Ordering::Relaxed);
            let value = unsafe { (*slot.value.get()).assume_init_read() };
            // Recycle for the producer one lap ahead.
            slot.seq
                .store(pos.wrapping_add(self.mask + 1), Ordering::Release);
            Some(value)
        } else {
            None
        }
    }

    pub(crate) fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

impl Drop for Ring {
    fn drop(&mut self) {
        // Exclusive access in drop: drain any unconsumed events so
        // their payloads (which may own heap data) are released.
        while unsafe { self.pop() }.is_some() {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Event, Origin};

    fn ev(n: u64) -> RecordedEvent {
        RecordedEvent {
            t_cycles: n,
            origin: Origin::Sim,
            event: Event::Marker { label: "t" },
        }
    }

    #[test]
    fn fifo_and_overflow() {
        let r = Ring::with_capacity(4);
        assert_eq!(r.capacity(), 4);
        for i in 0..4 {
            assert!(r.push(ev(i)));
        }
        assert!(!r.push(ev(99)), "5th push into capacity-4 ring drops");
        assert_eq!(r.dropped(), 1);
        for i in 0..4 {
            assert_eq!(unsafe { r.pop() }.unwrap().t_cycles, i);
        }
        assert!(unsafe { r.pop() }.is_none());
        // Slots recycle for the next lap.
        assert!(r.push(ev(7)));
        assert_eq!(unsafe { r.pop() }.unwrap().t_cycles, 7);
    }

    #[test]
    fn concurrent_producers_lose_nothing_until_full() {
        use std::sync::Arc;
        let r = Arc::new(Ring::with_capacity(1 << 12));
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    for i in 0..512u64 {
                        assert!(r.push(ev(t * 10_000 + i)));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let mut seen = Vec::new();
        while let Some(e) = unsafe { r.pop() } {
            seen.push(e.t_cycles);
        }
        assert_eq!(seen.len(), 4 * 512);
        // Per-producer order is preserved in the merged stream.
        for t in 0..4u64 {
            let sub: Vec<_> = seen.iter().copied().filter(|v| v / 10_000 == t).collect();
            let mut sorted = sub.clone();
            sorted.sort_unstable();
            assert_eq!(sub, sorted);
        }
        assert_eq!(r.dropped(), 0);
    }
}
