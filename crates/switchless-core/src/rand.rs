//! The workspace's one seeded PRNG: splitmix64.
//!
//! Every stochastic input in the workspace — fault schedules, arrival
//! processes, service-time draws — flows through this generator, so a
//! single `u64` seed reproduces an entire overload-plus-fault scenario
//! byte-identically (DESIGN.md §13). Splitmix64 is chosen for being
//! tiny, splittable (independent substreams via [`SplitMix64::fork`])
//! and exactly specified: the reference outputs are pinned in the unit
//! tests, so a toolchain or refactor that perturbs the stream fails CI
//! instead of silently invalidating every pinned trace.
//!
//! Nothing here reads a clock or the OS entropy pool; the generator is
//! as side-effect-free as the scheduler policy it sits next to.

use serde::{Deserialize, Serialize};

/// Weyl-sequence increment of the splitmix64 reference implementation.
const GOLDEN_GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

/// Seeded splitmix64 generator (Steele, Lea & Flood, OOPSLA '14).
///
/// ```
/// use switchless_core::rand::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Generator seeded with `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)` via the multiply-high reduction
    /// (Lemire); `bound == 0` yields `0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Split off an independent substream.
    ///
    /// The child is seeded from the parent's next output, so forking
    /// advances the parent stream; two forks taken in the same order
    /// from the same seed are identical.
    pub fn fork(&mut self) -> SplitMix64 {
        SplitMix64::new(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vector of the canonical C implementation, seed 0.
    #[test]
    fn matches_reference_outputs_for_seed_zero() {
        let mut g = SplitMix64::new(0);
        assert_eq!(g.next_u64(), 0xe220_a839_7b1d_cdaf);
        assert_eq!(g.next_u64(), 0x6e78_9e6a_a1b9_65f4);
        assert_eq!(g.next_u64(), 0x06c4_5d18_8009_454f);
    }

    #[test]
    fn same_seed_reproduces_forks_and_draws() {
        let run = |seed: u64| {
            let mut g = SplitMix64::new(seed);
            let mut sub = g.fork();
            (0..16)
                .map(|i| {
                    if i % 2 == 0 {
                        g.next_below(1000)
                    } else {
                        sub.next_u64()
                    }
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds must diverge");
    }

    #[test]
    fn bounded_draws_stay_in_range() {
        let mut g = SplitMix64::new(123);
        for bound in [1u64, 2, 3, 10, 1_000_000] {
            for _ in 0..200 {
                assert!(g.next_below(bound) < bound);
            }
        }
        assert_eq!(g.next_below(0), 0);
    }

    #[test]
    fn unit_draws_stay_in_unit_interval() {
        let mut g = SplitMix64::new(99);
        for _ in 0..1000 {
            let u = g.next_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn forked_streams_are_independent_of_parent_continuation() {
        let mut a = SplitMix64::new(5);
        let mut fork_a = a.fork();
        let fork_head: Vec<u64> = (0..4).map(|_| fork_a.next_u64()).collect();
        // Draining the parent further must not perturb the fork.
        let mut b = SplitMix64::new(5);
        let mut fork_b = b.fork();
        for _ in 0..32 {
            b.next_u64();
        }
        let fork_head_b: Vec<u64> = (0..4).map(|_| fork_b.next_u64()).collect();
        assert_eq!(fork_head, fork_head_b);
    }
}
