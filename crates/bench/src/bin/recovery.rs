//! CI recovery smoke: enclave crash/restart behaviour of the ZC
//! mechanism under the DES recovery soak.
//!
//! Drives a closed-loop idempotent workload on the 128-vCPU
//! event-driven kernel through three whole-enclave crash/restart cycles
//! plus one crash-during-replay, then a second all-non-idempotent probe
//! run that measures typed refusals. Everything runs under virtual
//! time, so both runs are byte-deterministic. The binary gates on:
//!
//! * **conservation** — `offered == completed + refused_non_idempotent`
//!   exactly, zero duplicate executions, journal drained to zero live
//!   entries, every crash completing its restart;
//! * **reproducibility** — the soak re-run with the same schedule must
//!   reproduce counters, recovery ledger and latency samples
//!   byte-for-byte;
//! * **recovery latency sanity** — one restart-to-first-completion
//!   sample per crash, each at least the configured restart time and
//!   within an order-of-magnitude envelope of it.
//!
//! It does NOT gate on absolute speed. Writes `BENCH_recovery.json`.
//!
//! Usage: `recovery [--quick] [--out <path>]`

use zc_des::{
    run, CallDesc, Mechanism, SimConfig, SimReport, WorkloadSpec, ZcSimFaults, ZcSimParams,
};

/// Closed-loop callers in every run.
const CALLERS: usize = 32;
/// Logical CPUs of the simulated machine.
const VCPUS: usize = 128;
/// Virtual cycles the enclave stays down per crash.
const RESTART_CYCLES: u64 = 500_000;
/// Restart-to-first-completion ceiling: restart time plus a generous
/// reconciliation-and-redispatch envelope.
const RTFC_CEILING_CYCLES: u64 = RESTART_CYCLES * 10;

fn call_template(non_idempotent: bool) -> CallDesc {
    CallDesc {
        class: 0,
        host_cycles: 500,
        payload_bytes: 128,
        ret_bytes: 32,
        non_idempotent,
        ..CallDesc::default()
    }
}

/// The three scripted crash sites, scaled into the offered range.
fn crash_sites(offered: u64) -> [u64; 3] {
    [offered / 100, offered / 4, (offered * 3) / 4]
}

fn soak_config(ops_per_caller: u64, non_idempotent: bool, replay_crash: bool) -> SimConfig {
    let offered = CALLERS as u64 * ops_per_caller;
    let sites = crash_sites(offered);
    let mut faults = ZcSimFaults::new().with_enclave_restart_cycles(RESTART_CYCLES);
    for &n in &sites {
        faults = faults.crash_enclave_at_call(n);
    }
    if replay_crash {
        faults = faults.crash_enclave_during_replay(0);
    }
    SimConfig::new(
        Mechanism::Zc(ZcSimParams::default()),
        vec![
            WorkloadSpec::ClosedLoop {
                pattern: vec![call_template(non_idempotent)],
                total_ops: ops_per_caller,
            };
            CALLERS
        ],
        1,
    )
    .with_vcpus(VCPUS)
    .with_event_kernel()
    .with_zc_faults(faults)
}

/// Percentile of a sample vector (nearest-rank); 0 when empty.
fn pctile(samples: &[u64], p: usize) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    let mut v = samples.to_vec();
    v.sort_unstable();
    v[(p * (v.len() - 1)).div_ceil(100)]
}

/// Audit the exactly-once ledger of one soak; returns failure messages.
fn audit(tag: &str, r: &SimReport, offered: u64, expect_refusals: bool) -> Vec<String> {
    let mut fails = Vec::new();
    let c = &r.counters;
    let f = &r.fault_recovery;
    if !c.conserves() {
        fails.push(format!("{tag}: conservation violated: {c:?}"));
    }
    if c.total_calls() + c.refused_non_idempotent != offered {
        fails.push(format!(
            "{tag}: offered {offered} != completed {} + refused {}",
            c.total_calls(),
            c.refused_non_idempotent
        ));
    }
    if f.enclave_crashes < 3 {
        fails.push(format!("{tag}: expected >=3 crashes, got {f:?}"));
    }
    if f.enclave_restarts != f.enclave_crashes {
        fails.push(format!("{tag}: unfinished restarts: {f:?}"));
    }
    if f.journal_live != 0 {
        fails.push(format!("{tag}: journal did not drain: {f:?}"));
    }
    if f.dead_workers != 0 {
        fails.push(format!("{tag}: workers died: {f:?}"));
    }
    if expect_refusals {
        if c.refused_non_idempotent == 0 {
            fails.push(format!("{tag}: non-idempotent soak must refuse: {c:?}"));
        }
        if f.journal_replays != 0 {
            fails.push(format!(
                "{tag}: non-idempotent calls must never replay: {f:?}"
            ));
        }
    } else {
        if c.refused_non_idempotent != 0 {
            fails.push(format!("{tag}: idempotent soak must not refuse: {c:?}"));
        }
        if f.journal_replays < 3 {
            fails.push(format!("{tag}: expected >=3 replays, got {f:?}"));
        }
    }
    fails
}

fn soak_json(r: &SimReport, offered: u64) -> String {
    let c = &r.counters;
    let f = &r.fault_recovery;
    let rtfc = &r.recovery_latencies.restart_to_first_completion;
    let redeliver = &r.recovery_latencies.redelivery_cycles;
    format!(
        "{{\"offered\":{offered},\"completed\":{},\"refused_non_idempotent\":{},\
         \"conserves\":{},\"enclave_crashes\":{},\"enclave_restarts\":{},\
         \"journal_replays\":{},\"call_redeliveries\":{},\"journal_live\":{},\
         \"restart_to_first_completion_cycles\":{{\"samples\":{},\"p50\":{},\"p99\":{},\"max\":{}}},\
         \"redelivery_cycles\":{{\"samples\":{},\"p50\":{},\"p99\":{}}},\
         \"duration_cycles\":{}}}",
        c.total_calls(),
        c.refused_non_idempotent,
        c.conserves(),
        f.enclave_crashes,
        f.enclave_restarts,
        f.journal_replays,
        f.call_redeliveries,
        f.journal_live,
        rtfc.len(),
        pctile(rtfc, 50),
        pctile(rtfc, 99),
        rtfc.iter().copied().max().unwrap_or(0),
        redeliver.len(),
        pctile(redeliver, 50),
        pctile(redeliver, 99),
        r.duration_cycles,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_recovery.json".to_string());
    let ops_per_caller: u64 = if quick { 1_000 } else { 5_000 };
    let offered = CALLERS as u64 * ops_per_caller;
    let mut failed = Vec::new();

    // 1. The idempotent soak: 3 crashes + 1 crash-during-replay; every
    //    offered call must complete exactly once.
    eprintln!("recovery: idempotent soak ({CALLERS} callers x {ops_per_caller} ops, 3 crashes)...");
    let idem_cfg = soak_config(ops_per_caller, false, true);
    let idem = run(&idem_cfg);
    failed.extend(audit("idempotent", &idem, offered, false));
    if idem.fault_recovery.call_redeliveries == 0 {
        failed.push("idempotent: crash-during-replay must redeliver".to_string());
    }

    // 2. Recovery-latency sanity: one restart-to-first-completion
    //    sample per *scripted* crash (the replay crash interrupts an
    //    already-measured window), each within the envelope.
    let rtfc = &idem.recovery_latencies.restart_to_first_completion;
    if rtfc.len() < 3 {
        failed.push(format!(
            "idempotent: expected >=3 rtfc samples, got {rtfc:?}"
        ));
    }
    for &s in rtfc {
        if s > RTFC_CEILING_CYCLES {
            failed.push(format!(
                "idempotent: restart-to-first-completion {s} above ceiling {RTFC_CEILING_CYCLES}"
            ));
        }
    }

    // 3. Reproducibility: the same schedule must reproduce the full
    //    report — counters, recovery ledger and latency samples.
    eprintln!("recovery: reproducibility re-run...");
    let rerun = run(&idem_cfg);
    let reproducible = rerun.counters == idem.counters
        && rerun.duration_cycles == idem.duration_cycles
        && rerun.fault_recovery == idem.fault_recovery
        && rerun.recovery_latencies == idem.recovery_latencies;
    if !reproducible {
        failed.push("idempotent: same-schedule re-run diverged".to_string());
    }

    // 4. The refusal probe: all calls non-idempotent; in-flight calls
    //    at each crash must surface as typed refusals, never replay.
    eprintln!("recovery: non-idempotent refusal probe...");
    let refuse = run(&soak_config(ops_per_caller, true, false));
    failed.extend(audit("refusal", &refuse, offered, true));

    // 5. Report.
    let sites = crash_sites(offered);
    let json = format!(
        "{{\n  \"schema\": \"bench_recovery_v1\",\n  \"quick\": {quick},\n  \
         \"callers\": {CALLERS},\n  \"vcpus\": {VCPUS},\n  \
         \"ops_per_caller\": {ops_per_caller},\n  \
         \"crash_sites\": [{},{},{}],\n  \"restart_cycles\": {RESTART_CYCLES},\n  \
         \"reproducible\": {reproducible},\n  \
         \"idempotent_soak\": {},\n  \"refusal_probe\": {}\n}}\n",
        sites[0],
        sites[1],
        sites[2],
        soak_json(&idem, offered),
        soak_json(&refuse, offered),
    );
    assert_eq!(
        json.matches('{').count(),
        json.matches('}').count(),
        "unbalanced report JSON"
    );
    std::fs::write(&out, &json).expect("write benchmark json");
    eprintln!("recovery: wrote {out}");

    if !failed.is_empty() {
        for f in &failed {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
}

// The soak invariants are also exercised (in quick size) by `cargo
// test`, so drift in the DES defaults shows up before CI runs the
// binary.
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_soak_conserves_and_replays() {
        let offered = CALLERS as u64 * 500;
        let r = run(&soak_config(500, false, true));
        assert!(audit("test", &r, offered, false).is_empty());
        assert!(r.fault_recovery.call_redeliveries >= 1);
    }

    #[test]
    fn refusal_probe_refuses_and_conserves() {
        let offered = CALLERS as u64 * 500;
        let r = run(&soak_config(500, true, false));
        assert!(audit("test", &r, offered, true).is_empty());
    }

    #[test]
    fn soaks_are_reproducible() {
        let cfg = soak_config(300, false, false);
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.fault_recovery, b.fault_recovery);
        assert_eq!(a.recovery_latencies, b.recovery_latencies);
    }

    #[test]
    fn percentiles_are_nearest_rank() {
        assert_eq!(pctile(&[], 99), 0);
        assert_eq!(pctile(&[7], 50), 7);
        assert_eq!(pctile(&[30, 10, 20], 50), 20);
        assert_eq!(pctile(&[30, 10, 20], 99), 30);
    }
}
