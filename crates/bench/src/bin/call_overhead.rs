//! CI perf smoke: where every cycle of a switchless call goes.
//!
//! Runs three deterministic virtual-clock DES scenarios — ZC-SWITCHLESS
//! (switchless path), ZC with an undersized worker pool (every call
//! takes the immediate-fallback path) and the Intel SDK mechanism
//! (switchless + regular paths) — each with a fresh telemetry hub, and
//! emits one [`SloReport`] per scenario: per-path p50/p99/p99.9 latency,
//! goodput, wasted-cycle ratio and the six-phase cycle breakdown
//! (DESIGN.md §12).
//!
//! Everything runs on the event-driven kernel under virtual time, so
//! the reports are byte-deterministic; the binary re-runs each scenario
//! and fails if the JSONL differs. It also gates on *conservation* —
//! per-phase cycles must sum to within 1% of measured whole-call cycles
//! on every path — and on the reports parsing cleanly. It does NOT gate
//! on absolute speed.
//!
//! Writes `BENCH_call_overhead.json` at the repo root.
//!
//! Usage: `call_overhead [--quick] [--out <path>]`

use std::sync::Arc;
use switchless_core::CallPath;
use zc_des::ocall::intel::IntelSimConfig;
use zc_des::{run, CallDesc, Mechanism, SimConfig, SimReport, WorkloadSpec, ZcSimParams};
use zc_telemetry::{SloReport, Telemetry};

/// Conservation gate: worst per-path `|phase_sum - total| / total`.
const CONSERVATION_TOLERANCE: f64 = 0.01;

/// A mixed ocall: modest payloads, a ~1.3 us host function.
fn call(class: usize) -> CallDesc {
    CallDesc {
        class,
        pre_compute_cycles: 200,
        host_cycles: 5_000,
        payload_bytes: 256,
        ret_bytes: 64,
        non_idempotent: false,
    }
}

/// One named scenario: a config builder, re-run for the determinism
/// check.
struct Scenario {
    label: &'static str,
    /// Paths this scenario must exercise.
    must_see: &'static [CallPath],
    build: fn(u64) -> SimConfig,
}

fn zc_config(ops: u64) -> SimConfig {
    SimConfig::new(
        Mechanism::Zc(ZcSimParams::default()),
        vec![
            WorkloadSpec::ClosedLoop {
                pattern: vec![call(0)],
                total_ops: ops,
            };
            4
        ],
        1,
    )
    .with_event_kernel()
}

fn zc_fallback_config(ops: u64) -> SimConfig {
    // A 16-byte pool cannot hold the 256-byte payload: every call
    // releases its claimed worker and takes the immediate-fallback path.
    let params = ZcSimParams {
        pool_bytes: 16,
        ..ZcSimParams::default()
    };
    SimConfig::new(
        Mechanism::Zc(params),
        vec![
            WorkloadSpec::ClosedLoop {
                pattern: vec![call(0)],
                total_ops: ops,
            };
            4
        ],
        1,
    )
    .with_event_kernel()
}

fn intel_config(ops: u64) -> SimConfig {
    // Class 0 is in the static switchless set, class 1 is not — the
    // run exercises the switchless and regular paths side by side.
    SimConfig::new(
        Mechanism::Intel(IntelSimConfig::new(2, [0])),
        vec![
            WorkloadSpec::ClosedLoop {
                pattern: vec![call(0), call(1)],
                total_ops: ops,
            };
            4
        ],
        2,
    )
    .with_event_kernel()
}

/// Run one scenario on a fresh hub and derive its SLO report.
fn run_scenario(build: fn(u64) -> SimConfig, label: &str, ops: u64) -> (SimReport, SloReport) {
    let hub = Telemetry::new();
    let cfg = build(ops).with_telemetry(Arc::clone(&hub));
    let report = run(&cfg);
    let slo = report.slo_report(&hub, label);
    (report, slo)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| "BENCH_call_overhead.json".to_string());
    let ops = if quick { 50 } else { 500 };

    let scenarios = [
        Scenario {
            label: "zc",
            must_see: &[CallPath::Switchless],
            build: zc_config,
        },
        Scenario {
            label: "zc_fallback",
            must_see: &[CallPath::Fallback],
            build: zc_fallback_config,
        },
        Scenario {
            label: "intel",
            must_see: &[CallPath::Switchless, CallPath::Regular],
            build: intel_config,
        },
    ];

    let mut failed = false;
    let mut reports = Vec::new();
    for sc in &scenarios {
        eprintln!(
            "call_overhead: scenario '{}', 4 callers x {ops} ops...",
            sc.label
        );
        let (sim, slo) = run_scenario(sc.build, sc.label, ops);
        // Determinism: an identical virtual-clock run must reproduce the
        // report byte-for-byte.
        let (_, slo2) = run_scenario(sc.build, sc.label, ops);
        if slo.to_jsonl() != slo2.to_jsonl() {
            eprintln!(
                "FAIL[{}]: repeat run produced a different SLO report",
                sc.label
            );
            failed = true;
        }
        let total: u64 = sim.counters.total_calls();
        assert_eq!(total, ops * 4, "lost calls in scenario '{}'", sc.label);
        for &path in sc.must_see {
            let seen = slo.path(path).map_or(0, |p| p.calls);
            if seen == 0 {
                eprintln!(
                    "FAIL[{}]: expected traffic on the {} path, saw none",
                    sc.label,
                    zc_telemetry::slo::path_name(path)
                );
                failed = true;
            }
        }
        let err = slo.max_conservation_error();
        if err > CONSERVATION_TOLERANCE {
            eprintln!(
                "FAIL[{}]: phase cycles must sum to within {:.0}% of call cycles, worst error {err:.6}",
                sc.label,
                CONSERVATION_TOLERANCE * 100.0
            );
            failed = true;
        }
        print!("{slo}");
        reports.push(slo);
    }

    let mut json = String::with_capacity(4096);
    json.push_str(&format!(
        "{{\n  \"schema\": \"bench_call_overhead_v1\",\n  \"quick\": {quick},\n  \
         \"ops_per_caller\": {ops},\n  \"conservation_tolerance\": {CONSERVATION_TOLERANCE},\n  \
         \"scenarios\": [\n"
    ));
    for (i, slo) in reports.iter().enumerate() {
        json.push_str("    ");
        json.push_str(&slo.to_json());
        json.push_str(if i + 1 < reports.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");

    // Parse gate: the document must be structurally sound JSON (balanced
    // and with every scenario present) before CI trusts it.
    for sc in &scenarios {
        assert!(
            json.contains(&format!("\"label\":\"{}\"", sc.label)),
            "report missing scenario '{}'",
            sc.label
        );
    }
    assert_eq!(
        json.matches('{').count(),
        json.matches('}').count(),
        "unbalanced report JSON"
    );

    std::fs::write(&out, &json).expect("write benchmark json");
    eprintln!("call_overhead: wrote {out}");

    if failed {
        std::process::exit(1);
    }
}

// Keep the dominant-path expectations honest if the DES defaults drift:
// the scenarios are also exercised (in quick size) by `cargo test`.
#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_exercise_their_paths_and_conserve() {
        for (build, label, path) in [
            (
                zc_config as fn(u64) -> SimConfig,
                "zc",
                CallPath::Switchless,
            ),
            (zc_fallback_config, "zc_fallback", CallPath::Fallback),
            (intel_config, "intel", CallPath::Switchless),
        ] {
            let (_, slo) = run_scenario(build, label, 20);
            assert!(slo.path(path).is_some(), "{label}: no {path:?} traffic");
            assert!(
                slo.max_conservation_error() <= CONSERVATION_TOLERANCE,
                "{label}"
            );
        }
    }

    #[test]
    fn quick_kernel_mode_is_event_driven() {
        assert_eq!(zc_config(1).kernel_mode, zc_des::KernelMode::EventDriven);
    }
}
