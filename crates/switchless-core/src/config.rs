//! Configuration types for the two switchless mechanisms under study.
//!
//! [`IntelConfig`] captures everything an SGX developer must decide *at
//! build time* with the Intel SDK's switchless library — the exact
//! friction ZC-SWITCHLESS removes. [`ZcConfig`] by contrast carries only
//! machine-derived scheduler constants; there is nothing workload-specific
//! to tune ("configless").

use crate::cpu::CpuSpec;
use crate::func::FuncId;
use crate::overload::OverloadParams;
use crate::policy::PolicyParams;
use crate::recovery::RecoveryParams;
use crate::supervise::SuperviseParams;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Default retry counts of the Intel SDK (developer reference §III-C):
/// both `retries_before_fallback` and `retries_before_sleep` are 20 000.
pub const INTEL_DEFAULT_RETRIES: u32 = 20_000;

/// Static build-time configuration of the Intel SGX SDK switchless
/// library (reimplemented in the `intel-switchless` crate).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntelConfig {
    /// Ocall functions marked `transition_using_threads` in the EDL: only
    /// these may execute switchlessly.
    pub switchless_funcs: BTreeSet<FuncId>,
    /// Fixed number of untrusted worker threads.
    pub num_uworkers: usize,
    /// Pauses a *caller* spends waiting for a worker to pick up its task
    /// before cancelling and falling back to a regular ocall (`rbf`).
    pub retries_before_fallback: u32,
    /// Pauses a *worker* spends polling for tasks before sleeping (`rbs`).
    pub retries_before_sleep: u32,
    /// Capacity of the shared task pool (SDK default: one slot per
    /// worker-facing task "window"; we default to `2 * num_uworkers`,
    /// minimum 4).
    pub task_pool_capacity: usize,
    /// Respawn crashed/hung workers instead of letting the pool shrink
    /// permanently. Off by default: the SDK library has no such
    /// mechanism, so the default stays SDK-faithful.
    pub respawn_workers: bool,
    /// Overload control ([`OverloadParams`]). `None` (the default,
    /// SDK-faithful) admits every call unconditionally; `Some` enables
    /// the admission/deadline/brownout plane shared with the ZC
    /// runtime.
    pub overload: Option<OverloadParams>,
    /// Enclave-restart recovery ([`RecoveryParams`]). `None` (the
    /// default, SDK-faithful) means an enclave loss strands in-flight
    /// calls; `Some` enables the durable call journal and
    /// exactly-once redelivery plane shared with the ZC runtime.
    pub recovery: Option<RecoveryParams>,
}

impl IntelConfig {
    /// SDK-default configuration with `workers` untrusted workers and the
    /// given switchless function set.
    #[must_use]
    pub fn new(workers: usize, switchless: impl IntoIterator<Item = FuncId>) -> Self {
        IntelConfig {
            switchless_funcs: switchless.into_iter().collect(),
            num_uworkers: workers,
            retries_before_fallback: INTEL_DEFAULT_RETRIES,
            retries_before_sleep: INTEL_DEFAULT_RETRIES,
            task_pool_capacity: (2 * workers).max(4),
            respawn_workers: false,
            overload: None,
            recovery: None,
        }
    }

    /// Is `func` configured to attempt switchless execution?
    #[must_use]
    pub fn is_switchless(&self, func: FuncId) -> bool {
        self.switchless_funcs.contains(&func)
    }

    /// Builder-style override of `retries_before_fallback`.
    #[must_use]
    pub fn with_retries_before_fallback(mut self, rbf: u32) -> Self {
        self.retries_before_fallback = rbf;
        self
    }

    /// Builder-style override of `retries_before_sleep`.
    #[must_use]
    pub fn with_retries_before_sleep(mut self, rbs: u32) -> Self {
        self.retries_before_sleep = rbs;
        self
    }

    /// Builder-style override of the task pool capacity.
    #[must_use]
    pub fn with_task_pool_capacity(mut self, cap: usize) -> Self {
        self.task_pool_capacity = cap.max(1);
        self
    }

    /// Builder-style enable of worker respawning (self-healing pool).
    #[must_use]
    pub fn with_respawn(mut self) -> Self {
        self.respawn_workers = true;
        self
    }

    /// Builder-style enable of overload control with explicit
    /// parameters.
    #[must_use]
    pub fn with_overload_params(mut self, params: OverloadParams) -> Self {
        self.overload = Some(params);
        self
    }

    /// Builder-style enable of enclave-restart recovery with default
    /// parameters ([`RecoveryParams::default`]).
    #[must_use]
    pub fn with_recovery(mut self) -> Self {
        self.recovery = Some(RecoveryParams::default());
        self
    }

    /// Builder-style enable of recovery with explicit parameters.
    #[must_use]
    pub fn with_recovery_params(mut self, params: RecoveryParams) -> Self {
        self.recovery = Some(params);
        self
    }
}

impl Default for IntelConfig {
    /// Two workers, no switchless functions, SDK-default retries.
    fn default() -> Self {
        IntelConfig::new(2, [])
    }
}

/// Configuration of the ZC-SWITCHLESS runtime.
///
/// All fields derive from the machine model; none encode workload
/// knowledge. This is the paper's headline property: *configless*.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ZcConfig {
    /// Machine model (costs and core count).
    pub cpu: CpuSpec,
    /// Scheduling-phase quantum `Q` in cycles (paper: 10 ms).
    pub quantum_cycles: u64,
    /// Inverse micro-quantum fraction (paper: `µ = 1/100`).
    pub mu_inverse: u64,
    /// Workers created at startup (paper §V: `N/2`, the scheduler then
    /// adapts within `0..=N/2`).
    pub initial_workers: usize,
    /// Per-worker untrusted request-pool size in bytes. Pool exhaustion
    /// triggers one real ocall to reallocate (paper §IV-B), visible as
    /// latency spikes in Fig. 8.
    pub pool_bytes: usize,
    /// Fallback weight of the scheduler argmin (see
    /// [`crate::policy::PolicyParams::fallback_weight`]).
    pub fallback_weight: u64,
    /// Caller-declared output capacity in bytes: the most reply payload
    /// a single ocall may copy back into the enclave. Host-declared
    /// reply lengths are clamped to this bound by the trusted-side
    /// guard (machine-derived, not workload knowledge: it bounds the
    /// enclave memory one hostile reply can touch).
    pub max_reply_bytes: usize,
    /// Self-healing supervision ([`SuperviseParams`]). `None` (the
    /// default) preserves the paper's original lifecycle: crashed
    /// workers stay quarantined and hung workers are abandoned at
    /// drain. `Some` enables the supervisor thread: respawn with
    /// backoff, probation healing, the caller-side watchdog and the
    /// poison-request blacklist.
    pub supervise: Option<SuperviseParams>,
    /// Overload control ([`OverloadParams`]). `None` (the default)
    /// preserves the paper's unconditional admission: every call
    /// queues or falls back, however hopeless. `Some` enables the
    /// admission gate, deadline shedding, the brownout ladder and the
    /// fallback-storm breaker — all machine-derived, so the runtime
    /// stays configless.
    pub overload: Option<OverloadParams>,
    /// Enclave-restart recovery ([`RecoveryParams`]). `None` (the
    /// default) preserves the paper's lifecycle: an enclave loss
    /// strands in-flight callers until the watchdog fires. `Some`
    /// enables the durable call journal, whole-enclave restart and
    /// exactly-once redelivery (see [`crate::recovery`]) — all
    /// machine-derived, so the runtime stays configless.
    pub recovery: Option<RecoveryParams>,
}

impl ZcConfig {
    /// Paper-faithful configuration for the given machine.
    #[must_use]
    pub fn for_cpu(cpu: CpuSpec) -> Self {
        ZcConfig {
            cpu,
            quantum_cycles: cpu.quantum_cycles(10),
            mu_inverse: 100,
            initial_workers: cpu.zc_max_workers(),
            pool_bytes: 64 * 1024,
            fallback_weight: crate::policy::DEFAULT_FALLBACK_WEIGHT,
            max_reply_bytes: 1024 * 1024,
            supervise: None,
            overload: None,
            recovery: None,
        }
    }

    /// Maximum worker count the scheduler will use (`N/2`).
    #[must_use]
    pub fn max_workers(&self) -> usize {
        self.cpu.zc_max_workers().max(1)
    }

    /// Scheduler policy parameters corresponding to this configuration.
    #[must_use]
    pub fn policy_params(&self) -> PolicyParams {
        PolicyParams {
            t_es_cycles: self.cpu.t_es_cycles,
            quantum_cycles: self.quantum_cycles,
            mu_inverse: self.mu_inverse,
            max_workers: self.max_workers(),
            fallback_weight: self.fallback_weight,
        }
    }

    /// Builder-style override of the scheduling quantum (milliseconds).
    #[must_use]
    pub fn with_quantum_ms(mut self, ms: u64) -> Self {
        self.quantum_cycles = self.cpu.quantum_cycles(ms);
        self
    }

    /// Builder-style override of `µ⁻¹`.
    #[must_use]
    pub fn with_mu_inverse(mut self, inv: u64) -> Self {
        self.mu_inverse = inv.max(1);
        self
    }

    /// Builder-style override of the initial worker count.
    #[must_use]
    pub fn with_initial_workers(mut self, n: usize) -> Self {
        self.initial_workers = n;
        self
    }

    /// Builder-style override of the per-worker pool size.
    #[must_use]
    pub fn with_pool_bytes(mut self, bytes: usize) -> Self {
        self.pool_bytes = bytes.max(256);
        self
    }

    /// Builder-style override of the scheduler fallback weight.
    #[must_use]
    pub fn with_fallback_weight(mut self, weight: u64) -> Self {
        self.fallback_weight = weight.max(1);
        self
    }

    /// Builder-style override of the caller-declared reply capacity.
    #[must_use]
    pub fn with_max_reply_bytes(mut self, bytes: usize) -> Self {
        self.max_reply_bytes = bytes;
        self
    }

    /// Builder-style enable of self-healing supervision with
    /// machine-derived defaults ([`SuperviseParams::for_cpu`]).
    #[must_use]
    pub fn with_supervision(mut self) -> Self {
        self.supervise = Some(SuperviseParams::for_cpu(self.cpu));
        self
    }

    /// Builder-style enable of supervision with explicit parameters.
    #[must_use]
    pub fn with_supervise_params(mut self, params: SuperviseParams) -> Self {
        self.supervise = Some(params);
        self
    }

    /// Builder-style enable of overload control with machine-derived
    /// defaults ([`OverloadParams::for_cpu`]).
    #[must_use]
    pub fn with_overload(mut self) -> Self {
        self.overload = Some(OverloadParams::for_cpu(&self.cpu));
        self
    }

    /// Builder-style enable of overload control with explicit
    /// parameters.
    #[must_use]
    pub fn with_overload_params(mut self, params: OverloadParams) -> Self {
        self.overload = Some(params);
        self
    }

    /// Builder-style enable of enclave-restart recovery with
    /// machine-derived defaults ([`RecoveryParams::for_cpu`]).
    #[must_use]
    pub fn with_recovery(mut self) -> Self {
        self.recovery = Some(RecoveryParams::for_cpu(self.cpu));
        self
    }

    /// Builder-style enable of recovery with explicit parameters.
    #[must_use]
    pub fn with_recovery_params(mut self, params: RecoveryParams) -> Self {
        self.recovery = Some(params);
        self
    }
}

impl Default for ZcConfig {
    fn default() -> Self {
        ZcConfig::for_cpu(CpuSpec::paper_machine())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intel_defaults_match_sdk() {
        let c = IntelConfig::default();
        assert_eq!(c.retries_before_fallback, 20_000);
        assert_eq!(c.retries_before_sleep, 20_000);
        assert_eq!(c.num_uworkers, 2);
        assert!(c.switchless_funcs.is_empty());
    }

    #[test]
    fn intel_switchless_membership() {
        let c = IntelConfig::new(4, [FuncId(1), FuncId(3)]);
        assert!(c.is_switchless(FuncId(1)));
        assert!(c.is_switchless(FuncId(3)));
        assert!(!c.is_switchless(FuncId(2)));
        assert_eq!(c.task_pool_capacity, 8);
    }

    #[test]
    fn intel_builder_overrides() {
        let c = IntelConfig::new(2, [])
            .with_retries_before_fallback(100)
            .with_retries_before_sleep(50)
            .with_task_pool_capacity(0);
        assert_eq!(c.retries_before_fallback, 100);
        assert_eq!(c.retries_before_sleep, 50);
        assert_eq!(c.task_pool_capacity, 1, "capacity clamps to >=1");
    }

    #[test]
    fn zc_defaults_are_paper_faithful() {
        let c = ZcConfig::default();
        assert_eq!(c.quantum_cycles, 38_000_000);
        assert_eq!(c.mu_inverse, 100);
        assert_eq!(c.initial_workers, 4);
        assert_eq!(c.max_workers(), 4);
        let p = c.policy_params();
        assert_eq!(p.max_workers, 4);
        assert_eq!(p.t_es_cycles, 13_500);
    }

    #[test]
    fn zc_builder_overrides() {
        let c = ZcConfig::default()
            .with_quantum_ms(20)
            .with_mu_inverse(0)
            .with_initial_workers(1)
            .with_pool_bytes(0);
        assert_eq!(c.quantum_cycles, 76_000_000);
        assert_eq!(c.mu_inverse, 1, "mu_inverse clamps to >=1");
        assert_eq!(c.initial_workers, 1);
        assert_eq!(c.pool_bytes, 256, "pool clamps to a usable minimum");
    }

    #[test]
    fn reply_capacity_defaults_and_overrides() {
        assert_eq!(ZcConfig::default().max_reply_bytes, 1024 * 1024);
        assert_eq!(
            ZcConfig::default().with_max_reply_bytes(32).max_reply_bytes,
            32
        );
    }

    #[test]
    fn supervision_is_opt_in() {
        assert!(ZcConfig::default().supervise.is_none());
        assert!(!IntelConfig::default().respawn_workers);
        let zc = ZcConfig::default().with_supervision();
        assert_eq!(
            zc.supervise,
            Some(SuperviseParams::for_cpu(CpuSpec::paper_machine()))
        );
        let custom = SuperviseParams::default().with_poison_threshold(5);
        assert_eq!(
            ZcConfig::default().with_supervise_params(custom).supervise,
            Some(custom)
        );
        assert!(IntelConfig::default().with_respawn().respawn_workers);
    }

    #[test]
    fn recovery_is_opt_in() {
        assert!(ZcConfig::default().recovery.is_none());
        assert!(IntelConfig::default().recovery.is_none());
        let zc = ZcConfig::default().with_recovery();
        assert_eq!(
            zc.recovery,
            Some(RecoveryParams::for_cpu(CpuSpec::paper_machine()))
        );
        let custom = RecoveryParams::default().with_journal_slots(16);
        assert_eq!(
            ZcConfig::default().with_recovery_params(custom).recovery,
            Some(custom)
        );
        assert!(IntelConfig::default()
            .with_recovery_params(custom)
            .recovery
            .is_some());
    }

    #[test]
    fn zc_max_workers_never_zero() {
        let mut cpu = CpuSpec::paper_machine();
        cpu.logical_cpus = 1;
        let c = ZcConfig::for_cpu(cpu);
        assert_eq!(c.max_workers(), 1);
    }
}
