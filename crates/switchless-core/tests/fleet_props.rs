//! Property tests of the fleet allocator's fairness invariants: for
//! arbitrary tenant weights, traffic mixes, probe vectors and verdicts,
//! no tenant with nonzero offered load is ever allocated below its
//! floor (budget permitting), the budget is never exceeded, and
//! decisions are a deterministic function of the inputs.

use proptest::prelude::*;
use switchless_core::cpu::CpuSpec;
use switchless_core::fleet::allocate;
use switchless_core::policy::PolicyParams;
use switchless_core::{FleetAllocator, FleetParams, TenantDemand, TenantVerdict};

fn fleet_params(budget: usize) -> FleetParams {
    FleetParams::new(PolicyParams::from_cpu(&CpuSpec::paper_machine()), budget)
}

/// Raw generated tenant: (weight, offered, probes, verdict index).
type RawTenant = (u64, u64, Vec<u64>, u8);

fn arb_fleet() -> impl Strategy<Value = Vec<RawTenant>> {
    prop::collection::vec(
        (
            1u64..1_000,
            0u64..1_000_000,
            prop::collection::vec(0u64..1_000_000, 0..8),
            0u8..4,
        ),
        1..8,
    )
}

fn demands_from(raw: &[RawTenant]) -> Vec<TenantDemand> {
    raw.iter()
        .map(|(weight, offered, probes, v)| {
            TenantDemand::new(*weight, *offered, probes.clone())
                .with_verdict(TenantVerdict::ALL[*v as usize % TenantVerdict::ALL.len()])
        })
        .collect()
}

proptest! {
    /// The assignment never exceeds the budget, never exceeds the
    /// per-shard ceiling, and never lifts a Byzantine tenant above the
    /// containment floor.
    #[test]
    fn budget_and_caps_always_hold(raw in arb_fleet(), budget in 1usize..16) {
        let demands = demands_from(&raw);
        let p = fleet_params(budget);
        let a = allocate(&demands, &p);
        prop_assert_eq!(a.len(), demands.len());
        prop_assert!(a.iter().sum::<usize>() <= p.budget);
        for (t, d) in demands.iter().enumerate() {
            prop_assert!(a[t] <= p.policy.max_workers);
            if d.verdict == TenantVerdict::Faulty {
                prop_assert!(a[t] <= usize::from(d.offered > 0),
                    "faulty tenant {} above floor: {:?}", t, a);
            }
        }
    }

    /// Fairness floor: when the budget covers every tenant with
    /// nonzero offered load, each such tenant is allocated at least
    /// one worker — regardless of its weight, its neighbours' demand
    /// or anyone's verdict.
    #[test]
    fn floor_never_violated_under_sufficient_budget(raw in arb_fleet()) {
        let demands = demands_from(&raw);
        let eligible = demands.iter().filter(|d| d.offered > 0).count();
        let p = fleet_params(eligible.max(1));
        let a = allocate(&demands, &p);
        for (t, d) in demands.iter().enumerate() {
            if d.offered > 0 {
                prop_assert!(a[t] >= 1, "tenant {} starved below floor: {:?}", t, a);
            }
        }
    }

    /// Same input ⇒ same assignment: the pure allocator and a fresh
    /// stateful allocator agree with themselves across repeated calls
    /// on identical snapshots.
    #[test]
    fn allocation_is_deterministic(raw in arb_fleet(), budget in 1usize..16) {
        let demands = demands_from(&raw);
        let p = fleet_params(budget);
        let a = allocate(&demands, &p);
        for _ in 0..3 {
            prop_assert_eq!(allocate(&demands, &p), a.clone());
        }
        let d1 = FleetAllocator::new(p, demands.len()).decide(&demands);
        let d2 = FleetAllocator::new(p, demands.len()).decide(&demands);
        prop_assert_eq!(d1, d2);
    }

    /// A misbehaving tenant's verdict cap never changes what a
    /// well-behaved tenant would have received had the offender simply
    /// demanded nothing beyond its cap — containment is charged to the
    /// offending shard only.
    #[test]
    fn containment_charges_only_the_offender(raw in arb_fleet(), budget in 2usize..16) {
        if raw.len() < 2 {
            return Ok(());
        }
        let mut demands = demands_from(&raw);
        let p = fleet_params(budget);
        // Make tenant 0 Byzantine with nonzero demand.
        demands[0].verdict = TenantVerdict::Faulty;
        demands[0].offered = demands[0].offered.max(1);
        let capped = allocate(&demands, &p);
        // Replace the offender with a tenant that demands exactly the
        // floor it was contained to.
        let mut quiet = demands.clone();
        quiet[0] = TenantDemand::new(demands[0].weight, demands[0].offered, vec![0]);
        let solo = allocate(&quiet, &p);
        prop_assert_eq!(&capped[1..], &solo[1..],
            "honest tenants' allocations changed under containment");
    }
}
