//! The ZC-SWITCHLESS worker state machine (paper Fig. 6).
//!
//! Each worker owns a shared buffer whose `status` word holds one of the
//! states below. Callers and the scheduler drive transitions with atomic
//! compare-and-swap; [`WorkerState::can_transition`] encodes exactly which
//! edges are legal so runtimes (and property tests) can reject illegal
//! interleavings.

use serde::{Deserialize, Serialize};
use std::fmt;

/// State of a switchless worker thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum WorkerState {
    /// Idle and claimable by any enclave caller.
    Unused = 0,
    /// Claimed by a caller that is preparing a request.
    Reserved = 1,
    /// Request posted; the worker is (or will be) executing it.
    Processing = 2,
    /// Execution finished; results await collection by the caller.
    Waiting = 3,
    /// Deactivated by the scheduler; the thread is parked.
    Paused = 4,
    /// Terminating: final cleanup then thread exit.
    Exit = 5,
}

impl WorkerState {
    /// All states, in discriminant order.
    pub const ALL: [WorkerState; 6] = [
        WorkerState::Unused,
        WorkerState::Reserved,
        WorkerState::Processing,
        WorkerState::Waiting,
        WorkerState::Paused,
        WorkerState::Exit,
    ];

    /// Decode a raw status word.
    #[must_use]
    pub fn from_u8(v: u8) -> Option<WorkerState> {
        WorkerState::ALL.get(v as usize).copied()
    }

    /// Encode for storage in an atomic status word.
    #[must_use]
    pub fn as_u8(self) -> u8 {
        self as u8
    }

    /// Is `self -> to` a legal transition of the paper's state machine?
    ///
    /// Legal edges:
    ///
    /// * `Unused -> Reserved` — caller claims an idle worker;
    /// * `Reserved -> Processing` — caller posted its request;
    /// * `Reserved -> Unused` — caller aborts before posting (e.g. pool
    ///   allocation failed);
    /// * `Processing -> Waiting` — worker finished the host function;
    /// * `Waiting -> Unused` — caller collected the results;
    /// * `Unused -> Paused` — scheduler deactivates an idle worker;
    /// * `Paused -> Unused` — scheduler reactivates a worker;
    /// * `Unused -> Exit` and `Paused -> Exit` — program termination.
    #[must_use]
    pub fn can_transition(self, to: WorkerState) -> bool {
        use WorkerState::*;
        matches!(
            (self, to),
            (Unused, Reserved)
                | (Reserved, Processing)
                | (Reserved, Unused)
                | (Processing, Waiting)
                | (Waiting, Unused)
                | (Unused, Paused)
                | (Paused, Unused)
                | (Unused, Exit)
                | (Paused, Exit)
        )
    }

    /// `true` if a caller may claim a worker in this state.
    #[must_use]
    pub fn is_claimable(self) -> bool {
        self == WorkerState::Unused
    }

    /// `true` if this is a terminal state.
    #[must_use]
    pub fn is_terminal(self) -> bool {
        self == WorkerState::Exit
    }

    /// `true` while the worker is owned by some caller (claimed but not
    /// yet released).
    #[must_use]
    pub fn is_owned_by_caller(self) -> bool {
        matches!(
            self,
            WorkerState::Reserved | WorkerState::Processing | WorkerState::Waiting
        )
    }
}

impl fmt::Display for WorkerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            WorkerState::Unused => "UNUSED",
            WorkerState::Reserved => "RESERVED",
            WorkerState::Processing => "PROCESSING",
            WorkerState::Waiting => "WAITING",
            WorkerState::Paused => "PAUSED",
            WorkerState::Exit => "EXIT",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use WorkerState::*;

    #[test]
    fn roundtrip_u8() {
        for s in WorkerState::ALL {
            assert_eq!(WorkerState::from_u8(s.as_u8()), Some(s));
        }
        assert_eq!(WorkerState::from_u8(6), None);
        assert_eq!(WorkerState::from_u8(255), None);
    }

    #[test]
    fn happy_path_is_legal() {
        assert!(Unused.can_transition(Reserved));
        assert!(Reserved.can_transition(Processing));
        assert!(Processing.can_transition(Waiting));
        assert!(Waiting.can_transition(Unused));
    }

    #[test]
    fn scheduler_edges_are_legal() {
        assert!(Unused.can_transition(Paused));
        assert!(Paused.can_transition(Unused));
        assert!(Unused.can_transition(Exit));
        assert!(Paused.can_transition(Exit));
    }

    #[test]
    fn scheduler_cannot_pause_a_busy_worker() {
        for s in [Reserved, Processing, Waiting] {
            assert!(!s.can_transition(Paused), "{s} -> PAUSED must be illegal");
            assert!(!s.can_transition(Exit), "{s} -> EXIT must be illegal");
        }
    }

    #[test]
    fn exit_is_terminal() {
        for s in WorkerState::ALL {
            assert!(!Exit.can_transition(s), "EXIT -> {s} must be illegal");
        }
        assert!(Exit.is_terminal());
    }

    #[test]
    fn no_self_loops() {
        for s in WorkerState::ALL {
            assert!(!s.can_transition(s));
        }
    }

    #[test]
    fn ownership_classification() {
        assert!(Unused.is_claimable());
        assert!(!Paused.is_claimable());
        assert!(Reserved.is_owned_by_caller());
        assert!(Processing.is_owned_by_caller());
        assert!(Waiting.is_owned_by_caller());
        assert!(!Unused.is_owned_by_caller());
        assert!(!Paused.is_owned_by_caller());
    }

    #[test]
    fn exactly_nine_legal_edges() {
        let mut count = 0;
        for a in WorkerState::ALL {
            for b in WorkerState::ALL {
                if a.can_transition(b) {
                    count += 1;
                }
            }
        }
        assert_eq!(count, 9);
    }

    #[test]
    fn display_matches_paper_names() {
        assert_eq!(Unused.to_string(), "UNUSED");
        assert_eq!(Processing.to_string(), "PROCESSING");
    }
}
