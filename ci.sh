#!/usr/bin/env bash
# Local/CI gate for the whole workspace. Everything runs offline: the
# workspace vendors its few third-party interfaces as local shim crates
# under shims/ (see README "Offline builds"), so no network or registry
# access is needed beyond a Rust toolchain.
#
# Usage: ./ci.sh [--quick]
#   --quick   skip the triple test run used to shake out flaky tests
set -euo pipefail
cd "$(dirname "$0")"

quick=0
[[ "${1:-}" == "--quick" ]] && quick=1

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo check (telemetry disabled)"
# The telemetry feature must stay optional: with it off, the runtimes
# and the simulator compile back to the exact untraced hot paths.
cargo check -q -p zc-switchless -p intel-switchless -p zc-des --no-default-features

echo "==> cargo test (workspace)"
cargo test -q --workspace

echo "==> DES kernel throughput smoke (event-driven vs round-robin)"
# Times both DES kernels on the oversubscribed 128-vCPU ZC scenario and
# writes BENCH_des_throughput.json. Full mode enforces the acceptance
# floor: the event kernel must sustain >=100x the round-robin kernel's
# simulated-calls-per-wall-second (DESIGN.md §11).
cargo build --release -q -p zc-bench --bin bench_des_throughput
if [[ $quick -eq 0 ]]; then
    ./target/release/bench_des_throughput
else
    ./target/release/bench_des_throughput --quick
fi

echo "==> call-overhead perf smoke (per-phase SLO reports)"
# Profiles where every cycle of a switchless call goes on the ZC,
# fallback and Intel paths and writes BENCH_call_overhead.json. The
# binary itself gates on the reports parsing cleanly, on per-phase
# cycles summing to within 1% of whole-call cycles (conservation), and
# on same-seed byte-identical reports — never on absolute speed
# (DESIGN.md §12).
cargo build --release -q -p zc-bench --bin call_overhead
if [[ $quick -eq 0 ]]; then
    ./target/release/call_overhead
else
    ./target/release/call_overhead --quick
fi

echo "==> overload sweep smoke (admission, shedding, goodput)"
# Sweeps seeded open-loop MMPP traffic at 0.5x/1x/2x of measured
# saturation capacity on the 128-vCPU event kernel and writes
# BENCH_overload.json. The binary gates on exact conservation
# (offered == completed + shed + abandoned at every point), same-seed
# byte-identical reproduction of the 2x point, >=70% of saturation
# capacity held as goodput at 2x overload and bounded p99 sojourn —
# never on absolute speed (DESIGN.md §13).
cargo build --release -q -p zc-bench --bin overload
if [[ $quick -eq 0 ]]; then
    ./target/release/overload
else
    ./target/release/overload --quick
fi

echo "==> recovery smoke (enclave crash/restart, exactly-once ledger)"
# Drives the DES recovery soak — three whole-enclave crash/restart
# cycles plus a crash-during-replay on the 128-vCPU event kernel, then
# an all-non-idempotent refusal probe — and writes BENCH_recovery.json.
# The binary gates on exact conservation (offered == completed +
# refused_non_idempotent, journal drained, every crash restarted),
# same-schedule byte-identical reproduction, and bounded
# restart-to-first-completion latency — never on absolute speed
# (DESIGN.md §14).
cargo build --release -q -p zc-bench --bin recovery
if [[ $quick -eq 0 ]]; then
    ./target/release/recovery
else
    ./target/release/recovery --quick
fi

echo "==> multitenant fleet smoke (bulkhead isolation, global budget)"
# Runs the noisy-neighbour fleet soak — a well-behaved tenant sharing
# the global worker budget with a 4x-saturation hog, an enclave
# crash-looper and an all-six-Byzantine tenant — and writes
# BENCH_multitenant.json. The binary gates on exact per-tenant and
# global conservation, the isolation criterion (>=90% of solo goodput,
# p99 sojourn within 2x of the solo baseline, guard violations only on
# the offending shard), and same-seed byte-identical reproduction —
# never on absolute speed (DESIGN.md §15).
cargo build --release -q -p zc-bench --bin multitenant
if [[ $quick -eq 0 ]]; then
    ./target/release/multitenant
else
    ./target/release/multitenant --quick
fi

# Collect every benchmark report into the perf trajectory uploaded by
# CI — one directory per run, so regressions can be traced across
# commits instead of vanishing with the runner.
mkdir -p results/bench_trajectory
cp BENCH_*.json results/bench_trajectory/
echo "==> bench trajectory: $(ls results/bench_trajectory)"

if [[ $quick -eq 0 ]]; then
    # The fault-injection, property and telemetry-trace suites must be
    # deterministic on the virtual clock: two more full runs guard
    # against flakes, plus an explicit pass of the trace-determinism,
    # chaos-soak and adversarial-soak suites (each test itself compares
    # two same-seed runs, so each pass here is a bounded deterministic
    # soak).
    for i in 2 3; do
        echo "==> cargo test (flake check, run $i/3)"
        cargo test -q --workspace
        echo "==> cargo test --test telemetry_trace (determinism, run $i/3)"
        cargo test -q --test telemetry_trace
        echo "==> cargo test --test chaos_soak (seeded soak, run $i/3)"
        cargo test -q --test chaos_soak
        echo "==> cargo test --test byzantine_soak (hostile host, run $i/3)"
        cargo test -q -p zc-switchless --test byzantine_soak --test byzantine_props
        echo "==> cargo test -p zc-des overload soak (MMPP, run $i/3)"
        cargo test -q -p zc-des zc_mmpp_overload
        echo "==> cargo test --test recovery_soak (crash/restart cycles, run $i/3)"
        cargo test -q --test recovery_soak
        echo "==> cargo test -p zc-des recovery conservation (run $i/3)"
        cargo test -q -p zc-des --test recovery_conservation
        echo "==> cargo test --test fleet_isolation (noisy neighbours, run $i/3)"
        cargo test -q -p zc-des --test fleet_isolation
    done
fi

echo "ci.sh: all green"
