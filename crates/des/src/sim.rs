//! Experiment assembly: machine + mechanism + workload → report.

use crate::event_kernel::EventKernel;
use crate::kernel::{Kernel, Machine, DEFAULT_RR_QUANTUM};
use crate::metrics::{Sample, SimCounters, Timeline};
use crate::ocall::hotcalls::{HotWorkerActor, HotcallsConfig, HotcallsDispatcher, HotcallsWorld};
use crate::ocall::intel::{IntelDispatcher, IntelSimConfig, IntelWorkerActor, IntelWorld};
use crate::ocall::regular::RegularDispatcher;
use crate::ocall::zc::{
    ZcDispatcher, ZcEnclaveActor, ZcSchedulerActor, ZcSimFaults, ZcSupervisorActor, ZcWorkerActor,
    ZcWorld,
};
use crate::ocall::{CostModel, Dispatcher};
use crate::workload::{CallerActor, WorkloadSpec};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::rc::Rc;
use switchless_core::cpu::CpuSpec;
use switchless_core::policy::PolicyParams;
use switchless_core::stats::WorkerResidency;

/// ZC model parameters (paper defaults; all overridable for ablations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ZcSimParams {
    /// Scheduling quantum in milliseconds (paper: 10).
    pub quantum_ms: u64,
    /// Inverse micro-quantum fraction (paper: 100).
    pub mu_inverse: u64,
    /// Initial worker count (paper: `N/2`); `None` = max.
    pub initial_workers: Option<usize>,
    /// Maximum workers (paper: `N/2`); `None` = `N/2`.
    pub max_workers: Option<usize>,
    /// Per-worker untrusted pool bytes.
    pub pool_bytes: u64,
    /// Scheduler fallback weight (see
    /// [`switchless_core::policy::PolicyParams::fallback_weight`]).
    pub fallback_weight: u64,
}

impl Default for ZcSimParams {
    fn default() -> Self {
        ZcSimParams {
            quantum_ms: 10,
            mu_inverse: 100,
            initial_workers: None,
            max_workers: None,
            pool_bytes: 64 * 1024,
            fallback_weight: switchless_core::policy::DEFAULT_FALLBACK_WEIGHT,
        }
    }
}

/// Which DES kernel drives the run (DESIGN.md §11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelMode {
    /// The round-robin [`Kernel`]: preemptive quanta, spinners hold
    /// cores. Cycle-accurate under core contention — the paper-fidelity
    /// mode, and the default.
    #[default]
    CycleAccurate,
    /// The priority-queue [`EventKernel`]: no preemption, spin-waits
    /// park and wake on flag writes. Cycle-identical to the round-robin
    /// kernel whenever threads ≤ vCPUs (see the cross-kernel
    /// equivalence suite), and orders of magnitude faster at 128+
    /// vCPUs.
    EventDriven,
}

/// Which switchless mechanism the simulation runs.
#[derive(Debug, Clone, PartialEq)]
pub enum Mechanism {
    /// All calls as regular ocalls.
    NoSl,
    /// The Intel SDK mechanism with a static configuration.
    Intel(IntelSimConfig),
    /// ZC-SWITCHLESS with its adaptive scheduler.
    Zc(ZcSimParams),
    /// HotCalls: dedicated always-spinning workers, no fallback.
    Hotcalls(HotcallsConfig),
}

/// Full experiment description.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Machine model.
    pub cpu: CpuSpec,
    /// Which DES kernel drives the run.
    pub kernel_mode: KernelMode,
    /// OS round-robin quantum in cycles (cycle-accurate mode only).
    pub rr_quantum: u64,
    /// Boundary cost model.
    pub costs: CostModel,
    /// Mechanism under test.
    pub mechanism: Mechanism,
    /// One workload per caller thread.
    pub workloads: Vec<WorkloadSpec>,
    /// Number of call classes used by the workloads.
    pub classes: usize,
    /// Timeline sample interval in cycles (`0` = final sample only).
    pub sample_interval_cycles: u64,
    /// Hard stop in cycles (safety net for open-loop runs).
    pub deadline_cycles: u64,
    /// When non-zero, record core occupancy and render a text Gantt
    /// chart with this many columns into [`SimReport::gantt`].
    pub gantt_buckets: usize,
    /// Deterministic worker-fault schedule for the ZC mechanism: spawns
    /// a supervisor actor applying the crashes/hangs/Byzantine
    /// corruptions at their virtual times and arms every caller's
    /// watchdog. Ignored by non-ZC mechanisms. `None` (the default)
    /// models a fault-free, honest-host machine.
    pub zc_faults: Option<ZcSimFaults>,
    /// Telemetry hub receiving scheduler events (stamped with kernel
    /// virtual time) and end-of-run counters. `None` falls back to the
    /// process-global hub ([`zc_telemetry::global::current`]), so bench
    /// binaries can observe runs without threading a handle through.
    #[cfg(feature = "telemetry")]
    pub telemetry: Option<std::sync::Arc<zc_telemetry::Telemetry>>,
}

impl SimConfig {
    /// Experiment on the paper machine with default costs, a 60-virtual-
    /// second deadline and no intermediate sampling.
    #[must_use]
    pub fn new(mechanism: Mechanism, workloads: Vec<WorkloadSpec>, classes: usize) -> Self {
        let cpu = CpuSpec::paper_machine();
        SimConfig {
            cpu,
            kernel_mode: KernelMode::default(),
            rr_quantum: DEFAULT_RR_QUANTUM,
            costs: CostModel::paper(),
            mechanism,
            workloads,
            classes,
            sample_interval_cycles: 0,
            deadline_cycles: cpu.freq_hz * 120,
            gantt_buckets: 0,
            zc_faults: None,
            #[cfg(feature = "telemetry")]
            telemetry: None,
        }
    }

    /// Builder-style telemetry hub (see [`SimConfig::telemetry`]).
    #[cfg(feature = "telemetry")]
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: std::sync::Arc<zc_telemetry::Telemetry>) -> Self {
        self.telemetry = Some(telemetry);
        self
    }

    /// Builder-style kernel selection (see [`KernelMode`]).
    #[must_use]
    pub fn with_kernel_mode(mut self, mode: KernelMode) -> Self {
        self.kernel_mode = mode;
        self
    }

    /// Shorthand for
    /// [`with_kernel_mode`](SimConfig::with_kernel_mode)`(KernelMode::EventDriven)`.
    #[must_use]
    pub fn with_event_kernel(self) -> Self {
        self.with_kernel_mode(KernelMode::EventDriven)
    }

    /// Builder-style vCPU count: overrides the machine's logical CPU
    /// count (and with it derived quantities such as the ZC worker cap,
    /// `N/2`). The event kernel scales to 128+ vCPUs; the cycle-accurate
    /// kernel accepts any count but slows down past the paper's 8.
    #[must_use]
    pub fn with_vcpus(mut self, vcpus: usize) -> Self {
        self.cpu = self.cpu.with_logical_cpus(vcpus);
        self
    }

    /// Builder-style timeline sampling interval.
    #[must_use]
    pub fn with_sampling(mut self, interval_cycles: u64) -> Self {
        self.sample_interval_cycles = interval_cycles;
        self
    }

    /// Builder-style deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline_cycles: u64) -> Self {
        self.deadline_cycles = deadline_cycles;
        self
    }

    /// Builder-style Gantt rendering (see [`SimReport::gantt`]).
    #[must_use]
    pub fn with_gantt(mut self, buckets: usize) -> Self {
        self.gantt_buckets = buckets;
        self
    }

    /// Builder-style ZC worker-fault schedule (see
    /// [`SimConfig::zc_faults`]).
    #[must_use]
    pub fn with_zc_faults(mut self, faults: ZcSimFaults) -> Self {
        self.zc_faults = Some(faults);
        self
    }
}

/// Fault-injection and recovery summary of one ZC run (all zero for
/// fault-free runs and non-ZC mechanisms).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultRecovery {
    /// Injected crashes applied.
    pub crashes: u64,
    /// Injected hangs applied.
    pub hangs: u64,
    /// Worker slots recovered (supervisor revivals plus watchdog-driven
    /// self-recoveries).
    pub respawns: u64,
    /// In-flight calls cancelled by caller watchdogs (each completed on
    /// the regular path instead — never lost).
    pub cancelled: u64,
    /// Byzantine corruptions detected by the trusted-side guards (each
    /// quarantined its worker slot until revival).
    #[serde(default)]
    pub guard_violations: u64,
    /// Workers still dead when the run ended (0 = full recovery).
    pub dead_workers: u64,
    /// Whole-enclave crashes injected by the fault schedule.
    #[serde(default)]
    pub enclave_crashes: u64,
    /// Completed enclave restarts (recovery-plane epoch at run end).
    #[serde(default)]
    pub enclave_restarts: u64,
    /// Journaled calls replayed after a restart (idempotent re-runs).
    #[serde(default)]
    pub journal_replays: u64,
    /// Journaled results redelivered without re-execution.
    #[serde(default)]
    pub call_redeliveries: u64,
    /// Non-idempotent calls refused by post-crash reconciliation.
    #[serde(default)]
    pub refused_non_idempotent: u64,
    /// Journal entries still live at run end (0 = every journaled call
    /// was reconciled and retired).
    #[serde(default)]
    pub journal_live: u64,
}

/// Recovery-latency samples of one run (empty without enclave faults).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryLatencies {
    /// Restart-completion → first completed call, per restart (cycles).
    pub restart_to_first_completion: Vec<u64>,
    /// Crash-detection → resolution of each call that straddled a
    /// crash and was redelivered or replayed (cycles).
    pub redelivery_cycles: Vec<u64>,
}

/// Result of one simulation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimReport {
    /// Virtual time when the last caller finished (or the deadline).
    pub duration_cycles: u64,
    /// Final counters.
    pub counters: SimCounters,
    /// Timeline samples (empty unless sampling was enabled).
    pub timeline: Timeline,
    /// Total busy cycles over all threads.
    pub total_busy_cycles: u64,
    /// Busy cycles of caller threads.
    pub caller_busy_cycles: u64,
    /// Busy cycles of worker threads.
    pub worker_busy_cycles: u64,
    /// ZC worker-count residency (empty histogram for other mechanisms).
    pub residency: WorkerResidency,
    /// Mean active ZC workers weighted by time (0 otherwise).
    pub mean_active_workers: f64,
    /// Fault-injection and recovery summary (all zero unless
    /// [`SimConfig::zc_faults`] was set).
    #[serde(default)]
    pub fault_recovery: FaultRecovery,
    /// Enclave-recovery latency samples (empty without enclave faults).
    #[serde(default)]
    pub recovery_latencies: RecoveryLatencies,
    /// Machine model the run used.
    pub cpu: CpuSpec,
    /// Text Gantt chart of core occupancy (only when
    /// [`SimConfig::gantt_buckets`] was non-zero).
    pub gantt: Option<String>,
}

impl SimReport {
    /// Run duration in (virtual) seconds.
    #[must_use]
    pub fn duration_secs(&self) -> f64 {
        self.cpu.cycles_to_secs(self.duration_cycles)
    }

    /// Per-path SLO report of this run, built from the phase profiler of
    /// the hub the simulation ran with (the same schema the
    /// `call_overhead` bench emits). Times are virtual: percentiles,
    /// goodput and the per-phase breakdown are derived from kernel
    /// cycles at the simulated CPU frequency.
    #[cfg(feature = "telemetry")]
    #[must_use]
    pub fn slo_report(
        &self,
        hub: &zc_telemetry::Telemetry,
        label: &str,
    ) -> zc_telemetry::SloReport {
        zc_telemetry::SloReport::from_profile(
            label,
            &hub.profile().snapshot(),
            self.cpu.freq_hz,
            self.duration_cycles,
        )
    }

    /// Machine-wide average CPU utilisation in percent over the run.
    #[must_use]
    pub fn cpu_percent(&self) -> f64 {
        let capacity = self
            .duration_cycles
            .saturating_mul(self.cpu.logical_cpus as u64);
        if capacity == 0 {
            return 0.0;
        }
        (self.total_busy_cycles as f64 / capacity as f64 * 100.0).min(100.0)
    }

    /// Mean throughput of one caller in ops/second.
    #[must_use]
    pub fn caller_throughput(&self, caller: usize) -> f64 {
        let secs = self.duration_secs();
        if secs <= 0.0 {
            return 0.0;
        }
        self.counters
            .ops_per_caller
            .get(caller)
            .copied()
            .unwrap_or(0) as f64
            / secs
    }

    /// Mean per-call latency over all callers, in microseconds (wall
    /// time × callers / total calls — the kissdb/OpenSSL "average
    /// latency" metric).
    #[must_use]
    pub fn mean_latency_us(&self) -> f64 {
        let total = self.counters.total_calls();
        if total == 0 {
            return 0.0;
        }
        self.duration_secs() * 1e6 * self.workload_threads() as f64 / total as f64
    }

    fn workload_threads(&self) -> usize {
        self.counters.ops_per_caller.len()
    }
}

/// Run one experiment to completion (all callers done or deadline).
pub fn run(config: &SimConfig) -> SimReport {
    let mut kernel: Box<dyn Machine> = match config.kernel_mode {
        KernelMode::CycleAccurate => Box::new(Kernel::new(
            config.cpu.logical_cpus,
            config.rr_quantum,
            config.cpu.pause_cycles,
        )),
        KernelMode::EventDriven => Box::new(EventKernel::new(
            config.cpu.logical_cpus,
            config.cpu.pause_cycles,
        )),
    };
    if config.gantt_buckets > 0 {
        kernel.enable_tracing();
    }
    let callers = config.workloads.len();
    let counters = Rc::new(RefCell::new(SimCounters::new(callers, config.classes)));
    #[cfg(feature = "telemetry")]
    let telemetry = config
        .telemetry
        .clone()
        .or_else(zc_telemetry::global::current);

    // Build the mechanism world, workers and per-caller dispatchers.
    type DispatcherFactory = Box<dyn FnMut(usize) -> Box<dyn Dispatcher>>;
    let mut make_dispatcher: DispatcherFactory;
    let mut zc_world_handle: Option<Rc<RefCell<ZcWorld>>> = None;

    match &config.mechanism {
        Mechanism::NoSl => {
            let costs = config.costs;
            #[cfg(feature = "telemetry")]
            let hub = telemetry.clone();
            make_dispatcher = Box::new(move |_caller| {
                let d = RegularDispatcher::new(costs);
                #[cfg(feature = "telemetry")]
                let d = match &hub {
                    Some(h) => d.with_telemetry(std::sync::Arc::clone(h), _caller as u32),
                    None => d,
                };
                Box::new(d)
            });
        }
        Mechanism::Intel(icfg) => {
            let world = IntelWorld::new(&mut *kernel, icfg.clone(), callers);
            for i in 0..icfg.workers {
                let tid = kernel.spawn(Box::new(IntelWorkerActor::new(Rc::clone(&world), i)));
                world.borrow_mut().worker_tids.push(tid);
            }
            let costs = config.costs;
            let counters2 = Rc::clone(&counters);
            let world2 = Rc::clone(&world);
            #[cfg(feature = "telemetry")]
            let hub = telemetry.clone();
            make_dispatcher = Box::new(move |caller| {
                let d =
                    IntelDispatcher::new(Rc::clone(&world2), Rc::clone(&counters2), costs, caller);
                #[cfg(feature = "telemetry")]
                let d = match &hub {
                    Some(h) => d.with_telemetry(std::sync::Arc::clone(h)),
                    None => d,
                };
                Box::new(d)
            });
        }
        Mechanism::Hotcalls(hcfg) => {
            let world = HotcallsWorld::new(&mut *kernel, hcfg.clone(), callers);
            for i in 0..hcfg.workers {
                let tid = kernel.spawn(Box::new(HotWorkerActor::new(Rc::clone(&world), i)));
                world.borrow_mut().worker_tids.push(tid);
            }
            let costs = config.costs;
            let counters2 = Rc::clone(&counters);
            let world2 = Rc::clone(&world);
            make_dispatcher = Box::new(move |caller| {
                Box::new(HotcallsDispatcher::new(
                    Rc::clone(&world2),
                    Rc::clone(&counters2),
                    costs,
                    caller,
                ))
            });
        }
        Mechanism::Zc(zp) => {
            let max_workers = zp.max_workers.unwrap_or(config.cpu.zc_max_workers()).max(1);
            let initial = zp.initial_workers.unwrap_or(max_workers).min(max_workers);
            let world = ZcWorld::new(&mut *kernel, max_workers, callers, zp.pool_bytes);
            for i in 0..max_workers {
                let tid = kernel.spawn(Box::new(ZcWorkerActor::new(Rc::clone(&world), i)));
                world.borrow_mut().worker_tids.push(tid);
            }
            let params = PolicyParams {
                t_es_cycles: config.cpu.t_es_cycles,
                quantum_cycles: config.cpu.quantum_cycles(zp.quantum_ms),
                mu_inverse: zp.mu_inverse,
                max_workers,
                fallback_weight: zp.fallback_weight,
            };
            let scheduler =
                ZcSchedulerActor::new(Rc::clone(&world), Rc::clone(&counters), params, initial);
            #[cfg(feature = "telemetry")]
            let scheduler = match &telemetry {
                Some(hub) => scheduler.with_telemetry(std::sync::Arc::clone(hub)),
                None => scheduler,
            };
            kernel.spawn(Box::new(scheduler));
            if let Some(faults) = &config.zc_faults {
                let supervisor = ZcSupervisorActor::new(Rc::clone(&world), faults);
                #[cfg(feature = "telemetry")]
                let supervisor = match &telemetry {
                    Some(hub) => supervisor.with_telemetry(std::sync::Arc::clone(hub)),
                    None => supervisor,
                };
                kernel.spawn(Box::new(supervisor));
                if faults.has_enclave_faults() {
                    // Enclave faults: build the recovery plane and the
                    // lifecycle actor that drives restarts through it.
                    world.borrow_mut().install_enclave_faults(faults);
                    let tid = kernel.spawn(Box::new(ZcEnclaveActor::new(Rc::clone(&world))));
                    world.borrow_mut().enclave_tid = Some(tid);
                }
            }
            let watchdog = config.zc_faults.as_ref().map(|f| f.watchdog_pauses);
            let costs = config.costs;
            let counters2 = Rc::clone(&counters);
            let world2 = Rc::clone(&world);
            zc_world_handle = Some(Rc::clone(&world));
            #[cfg(feature = "telemetry")]
            let hub = telemetry.clone();
            make_dispatcher = Box::new(move |caller| {
                let d = ZcDispatcher::new(Rc::clone(&world2), Rc::clone(&counters2), costs, caller);
                let d = match watchdog {
                    Some(pauses) => d.with_watchdog(pauses),
                    None => d,
                };
                #[cfg(feature = "telemetry")]
                let d = match &hub {
                    Some(h) => d.with_telemetry(std::sync::Arc::clone(h)),
                    None => d,
                };
                Box::new(d)
            });
        }
    }

    for (i, spec) in config.workloads.iter().enumerate() {
        let d = make_dispatcher(i);
        kernel.spawn(Box::new(CallerActor::new(
            i,
            d,
            Rc::clone(&counters),
            spec.clone(),
        )));
    }
    drop(make_dispatcher);

    // Drive the run, sampling the timeline externally.
    let mut timeline = Timeline::default();
    let take_sample = |kernel: &dyn Machine, timeline: &mut Timeline| {
        let c = counters.borrow();
        timeline.samples.push(Sample {
            t_cycles: kernel.now(),
            ops_per_caller: c.ops_per_caller.clone(),
            busy_cycles: kernel.total_busy_cycles(),
            fallbacks: c.fallback,
            switchless: c.switchless,
            active_workers: zc_world_handle
                .as_ref()
                .map_or(0, |w| w.borrow().active_workers),
        });
    };

    take_sample(&*kernel, &mut timeline);
    let interval = if config.sample_interval_cycles == 0 {
        config.deadline_cycles
    } else {
        config.sample_interval_cycles
    };
    loop {
        let next = (kernel.now() + interval).min(config.deadline_cycles);
        // Stop the instant the last caller finishes: simulating idle
        // workers and the scheduler past that point would pollute the
        // CPU and residency metrics.
        kernel.run_while(next, || counters.borrow().callers_live > 0);
        take_sample(&*kernel, &mut timeline);
        let done = counters.borrow().callers_live == 0;
        if done || kernel.now() >= config.deadline_cycles || kernel.live_threads() == 0 {
            break;
        }
    }

    let counters_final = counters.borrow().clone();
    let duration_cycles = if counters_final.callers_live == 0 && counters_final.last_completion > 0
    {
        counters_final.last_completion
    } else {
        kernel.now()
    };
    #[cfg(feature = "telemetry")]
    let zc_decisions = zc_world_handle.as_ref().map_or(0, |w| w.borrow().decisions);
    let fault_recovery = zc_world_handle
        .as_ref()
        .map_or_else(FaultRecovery::default, |w| {
            let w = w.borrow();
            let rec = w.recovery.as_ref().map(|p| p.snapshot());
            FaultRecovery {
                crashes: w.crashes,
                hangs: w.hangs,
                respawns: w.respawns,
                cancelled: w.cancelled,
                guard_violations: w.guard_violations,
                dead_workers: w.workers.iter().filter(|s| s.dead).count() as u64,
                enclave_crashes: rec.as_ref().map_or(0, |s| s.crashes),
                enclave_restarts: rec.as_ref().map_or(0, |s| s.epoch),
                journal_replays: rec.as_ref().map_or(0, |s| s.replayed),
                call_redeliveries: rec.as_ref().map_or(0, |s| s.redelivered),
                refused_non_idempotent: rec.as_ref().map_or(0, |s| s.refused_non_idempotent),
                journal_live: rec.as_ref().map_or(0, |s| s.journal_live as u64),
            }
        });
    let recovery_latencies =
        zc_world_handle
            .as_ref()
            .map_or_else(RecoveryLatencies::default, |w| {
                let w = w.borrow();
                RecoveryLatencies {
                    restart_to_first_completion: w.restart_to_first_completion.clone(),
                    redelivery_cycles: w.redelivery_cycles.clone(),
                }
            });
    let (residency, mean_active) = zc_world_handle.map_or_else(
        || (WorkerResidency::new(0), 0.0),
        |w| {
            let w = w.borrow();
            (w.residency.clone(), w.residency.mean_workers())
        },
    );
    let gantt = (config.gantt_buckets > 0)
        .then(|| crate::gantt::render_kernel(&*kernel, config.gantt_buckets));
    #[cfg(feature = "telemetry")]
    if let Some(hub) = &telemetry {
        // Publish the run's counters into the hub registry in one pass
        // (counters accumulate across runs sharing a hub), and mark the
        // end of the run on the event timeline at Origin::Sim.
        let m = hub.metrics();
        m.counter("des_calls_total{path=\"switchless\"}")
            .add(counters_final.switchless);
        m.counter("des_calls_total{path=\"fallback\"}")
            .add(counters_final.fallback);
        m.counter("des_calls_total{path=\"regular\"}")
            .add(counters_final.regular);
        m.counter("des_pool_reallocs_total")
            .add(counters_final.pool_reallocs);
        m.counter("des_scheduler_decisions_total").add(zc_decisions);
        m.counter("des_watchdog_cancels_total")
            .add(counters_final.cancelled);
        m.counter("des_worker_crashes_total")
            .add(fault_recovery.crashes);
        m.counter("des_worker_hangs_total")
            .add(fault_recovery.hangs);
        m.counter("des_worker_respawns_total")
            .add(fault_recovery.respawns);
        m.counter("des_guard_violations_total")
            .add(fault_recovery.guard_violations);
        m.counter("des_offered_total").add(counters_final.offered);
        m.counter("des_client_sheds_total")
            .add(counters_final.ops_shed);
        m.counter("des_abandoned_total")
            .add(counters_final.ops_abandoned);
        m.counter("des_enclave_crashes_total")
            .add(fault_recovery.enclave_crashes);
        m.counter("des_enclave_restarts_total")
            .add(fault_recovery.enclave_restarts);
        m.counter("des_journal_replays_total")
            .add(fault_recovery.journal_replays);
        m.counter("des_call_redeliveries_total")
            .add(fault_recovery.call_redeliveries);
        m.counter("des_calls_refused_total")
            .add(fault_recovery.refused_non_idempotent);
        m.gauge("des_duration_cycles").set(duration_cycles);
        m.gauge("des_mean_active_workers_milli")
            .set((mean_active * 1000.0) as u64);
        hub.record(
            duration_cycles,
            zc_telemetry::Origin::Sim,
            zc_telemetry::Event::Marker {
                label: "sim_run_end",
            },
        );
    }
    SimReport {
        duration_cycles,
        total_busy_cycles: kernel.total_busy_cycles(),
        caller_busy_cycles: kernel.group_busy_cycles("caller"),
        worker_busy_cycles: kernel.group_busy_cycles("worker"),
        counters: counters_final,
        timeline,
        residency,
        mean_active_workers: mean_active,
        fault_recovery,
        recovery_latencies,
        cpu: config.cpu,
        gantt,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ocall::CallDesc;

    fn simple_call(host: u64) -> CallDesc {
        CallDesc {
            host_cycles: host,
            payload_bytes: 64,
            ret_bytes: 0,
            ..CallDesc::default()
        }
    }

    fn closed(ops: u64, host: u64) -> WorkloadSpec {
        WorkloadSpec::ClosedLoop {
            pattern: vec![simple_call(host)],
            total_ops: ops,
        }
    }

    #[test]
    fn no_sl_baseline_runs() {
        let r = run(&SimConfig::new(
            Mechanism::NoSl,
            vec![closed(1_000, 500)],
            1,
        ));
        assert_eq!(r.counters.total_calls(), 1_000);
        assert_eq!(r.counters.regular, 1_000);
        assert_eq!(r.counters.switchless, 0);
        // Duration ≈ 1000 * (13500 + copy + 500).
        assert!(r.duration_cycles >= 1_000 * 14_000);
        assert!(r.duration_cycles < 1_000 * 16_000);
    }

    #[test]
    fn intel_switchless_runs_mostly_switchless() {
        let cfg = SimConfig::new(
            Mechanism::Intel(IntelSimConfig::new(2, [0])),
            vec![closed(1_000, 500); 2],
            1,
        );
        let r = run(&cfg);
        assert_eq!(r.counters.total_calls(), 2_000);
        assert!(
            r.counters.switchless > 1_800,
            "dedicated workers should serve nearly all calls switchlessly, got {}",
            r.counters.switchless
        );
        assert!(r.worker_busy_cycles > 0);
    }

    #[test]
    fn intel_non_switchless_class_goes_regular() {
        let cfg = SimConfig::new(
            Mechanism::Intel(IntelSimConfig::new(2, [7])), // class 7 only
            vec![closed(500, 500)],
            1,
        );
        let r = run(&cfg);
        assert_eq!(r.counters.regular, 500);
        assert_eq!(r.counters.switchless, 0);
    }

    #[test]
    fn hotcalls_serves_everything_switchlessly_without_fallback() {
        use crate::ocall::hotcalls::HotcallsConfig;
        let cfg = SimConfig::new(
            Mechanism::Hotcalls(HotcallsConfig::new(2, [0])),
            vec![closed(2_000, 500); 3],
            1,
        );
        let r = run(&cfg);
        assert_eq!(r.counters.total_calls(), 6_000);
        assert_eq!(r.counters.switchless, 6_000, "hotcalls never falls back");
        assert_eq!(r.counters.fallback, 0);
        assert!(r.worker_busy_cycles > 0);
    }

    #[test]
    fn hotcalls_burns_cpu_even_when_idle_intel_sleeps() {
        use crate::ocall::hotcalls::HotcallsConfig;
        use crate::ocall::intel::IntelSimConfig;
        // A workload with long in-enclave gaps between calls: hot workers
        // keep spinning through the gaps, Intel workers sleep after rbs.
        let sparse = WorkloadSpec::ClosedLoop {
            pattern: vec![CallDesc {
                pre_compute_cycles: 10_000_000, // ~2.6 ms of enclave work
                host_cycles: 500,
                ..CallDesc::default()
            }],
            total_ops: 20,
        };
        let hot = run(&SimConfig::new(
            Mechanism::Hotcalls(HotcallsConfig::new(2, [0])),
            vec![sparse.clone()],
            1,
        ));
        let intel = run(&SimConfig::new(
            Mechanism::Intel(IntelSimConfig::new(2, [0]).with_rbs(1_000)),
            vec![sparse],
            1,
        ));
        assert!(
            hot.worker_busy_cycles > intel.worker_busy_cycles * 2,
            "hot workers ({}) must burn far more than sleeping intel workers ({})",
            hot.worker_busy_cycles,
            intel.worker_busy_cycles
        );
    }

    #[test]
    fn zc_runs_and_schedules() {
        let cfg = SimConfig::new(
            Mechanism::Zc(ZcSimParams::default()),
            vec![closed(20_000, 500); 2],
            1,
        );
        let r = run(&cfg);
        assert_eq!(r.counters.total_calls(), 40_000);
        assert!(
            r.counters.switchless > 0,
            "zc must serve some calls switchlessly"
        );
        assert!(
            r.residency.total_cycles() > 0,
            "scheduler must record residency"
        );
    }

    #[test]
    fn zc_faster_than_no_sl_for_short_frequent_calls() {
        // The paper's core claim: switchless wins for short calls.
        let wl = vec![closed(10_000, 200); 4];
        let no_sl = run(&SimConfig::new(Mechanism::NoSl, wl.clone(), 1));
        let zc = run(&SimConfig::new(
            Mechanism::Zc(ZcSimParams::default()),
            wl,
            1,
        ));
        assert!(
            zc.duration_cycles < no_sl.duration_cycles,
            "zc ({}) must beat no_sl ({}) on short calls",
            zc.duration_cycles,
            no_sl.duration_cycles
        );
    }

    fn chaos_faults() -> ZcSimFaults {
        // 3 crashes + 2 hangs inside the first ~1.3 virtual ms, spread
        // over distinct workers (slot 0 is hit twice, after its revival).
        ZcSimFaults::new()
            .crash_at(1_000_000, 0)
            .crash_at(3_000_000, 1)
            .crash_at(5_000_000, 0)
            .hang_at(2_000_000, 2)
            .hang_at(4_000_000, 3)
            .with_respawn_delay(800_000)
            .with_watchdog_pauses(5_000)
    }

    /// A ZC soak config parameterized over machine scale: `vcpus`
    /// logical CPUs and `callers` closed-loop callers of `ops` calls
    /// each, with the given fault schedule. The `vcpus = 8` shape is
    /// the paper machine; larger shapes ride the event-driven kernel
    /// (selected by the caller via [`SimConfig::with_event_kernel`]).
    fn fault_soak_cfg(faults: ZcSimFaults, vcpus: usize, callers: usize, ops: u64) -> SimConfig {
        SimConfig::new(
            Mechanism::Zc(ZcSimParams::default()),
            vec![closed(ops, 500); callers],
            1,
        )
        .with_vcpus(vcpus)
        .with_zc_faults(faults)
    }

    #[test]
    fn zc_crashes_and_hangs_recover_without_losing_calls() {
        // 2 callers + 4 workers + scheduler + supervisor = 8 threads on
        // 8 cores: the supervisor gets a core the moment its timers
        // fire, so the schedule is applied at (not merely after) its
        // nominal virtual times and slot 0 is revived before its second
        // crash.
        let cfg = fault_soak_cfg(chaos_faults(), 8, 2, 30_000);
        let r = run(&cfg);
        // Conservation: every issued call completes exactly once.
        assert_eq!(r.counters.total_calls(), 60_000);
        assert_eq!(r.counters.ops_per_caller, vec![30_000; 2]);
        // All scheduled faults applied (times are spaced beyond the
        // revive delay, so no injection hits an already-dead worker).
        assert_eq!(r.fault_recovery.crashes, 3);
        assert_eq!(r.fault_recovery.hangs, 2);
        // Every failed slot recovered; none stayed dead.
        assert!(
            r.fault_recovery.respawns >= 5,
            "each fault must be revived, got {:?}",
            r.fault_recovery
        );
        assert_eq!(r.fault_recovery.dead_workers, 0, "{:?}", r.fault_recovery);
        // Cancelled calls completed on the regular path, never vanished.
        assert!(r.counters.cancelled <= r.counters.fallback);
        assert!(r.counters.conserves());
    }

    fn byzantine_faults() -> ZcSimFaults {
        // All six corruption kinds inside the first ~1.6 virtual ms,
        // spread over the 4 workers (slots 0 and 1 are hit twice, after
        // their revivals).
        ZcSimFaults::new()
            .flip_status_at(1_000_000, 0)
            .garbage_command_at(2_000_000, 1)
            .oversize_reply_at(3_000_000, 2)
            .undersize_reply_at(4_000_000, 3)
            .stale_seq_at(5_000_000, 0)
            .torn_request_at(6_000_000, 1)
            .with_respawn_delay(800_000)
            .with_watchdog_pauses(5_000)
    }

    #[test]
    fn zc_byzantine_host_recovers_without_losing_calls() {
        let cfg = fault_soak_cfg(byzantine_faults(), 8, 2, 30_000);
        let r = run(&cfg);
        // Conservation: every issued call completes exactly once, even
        // under a lying host.
        assert_eq!(r.counters.total_calls(), 60_000);
        assert_eq!(r.counters.ops_per_caller, vec![30_000; 2]);
        // Every injected corruption was detected and quarantined.
        assert_eq!(r.fault_recovery.guard_violations, 6);
        assert_eq!(r.fault_recovery.crashes, 0);
        // Every quarantined slot recovered; none stayed dead.
        assert!(
            r.fault_recovery.respawns >= 6,
            "each quarantined slot must be revived, got {:?}",
            r.fault_recovery
        );
        assert_eq!(r.fault_recovery.dead_workers, 0, "{:?}", r.fault_recovery);
        // Re-routed calls completed on the regular path, never vanished.
        assert!(r.counters.cancelled <= r.counters.fallback);
        assert!(r.counters.conserves());
    }

    #[test]
    fn zc_chaos_soak_recovers_at_128_vcpus_on_event_kernel() {
        // The same crash/hang schedule at the lifted scale: 128 vCPUs
        // (64-worker pool) and 32 callers on the event-driven kernel.
        // Self-healing must be scale-invariant: every fault still
        // revives and every call still completes exactly once.
        let cfg = fault_soak_cfg(chaos_faults(), 128, 32, 10_000).with_event_kernel();
        let r = run(&cfg);
        assert_eq!(r.counters.total_calls(), 320_000);
        assert_eq!(r.counters.ops_per_caller, vec![10_000; 32]);
        assert_eq!(r.fault_recovery.crashes, 3, "{:?}", r.fault_recovery);
        assert_eq!(r.fault_recovery.hangs, 2, "{:?}", r.fault_recovery);
        assert!(r.fault_recovery.respawns >= 5, "{:?}", r.fault_recovery);
        assert_eq!(r.fault_recovery.dead_workers, 0, "{:?}", r.fault_recovery);
        assert!(r.counters.cancelled <= r.counters.fallback);
        assert!(r.counters.conserves());
    }

    #[test]
    fn zc_byzantine_soak_recovers_at_128_vcpus_on_event_kernel() {
        // All six corruption kinds against the 128-vCPU event-kernel
        // machine: the trusted-side guards must detect and quarantine
        // each one regardless of pool size.
        let cfg = fault_soak_cfg(byzantine_faults(), 128, 32, 10_000).with_event_kernel();
        let r = run(&cfg);
        assert_eq!(r.counters.total_calls(), 320_000);
        assert_eq!(
            r.fault_recovery.guard_violations, 6,
            "{:?}",
            r.fault_recovery
        );
        assert_eq!(r.fault_recovery.crashes, 0, "{:?}", r.fault_recovery);
        assert!(r.fault_recovery.respawns >= 6, "{:?}", r.fault_recovery);
        assert_eq!(r.fault_recovery.dead_workers, 0, "{:?}", r.fault_recovery);
        assert!(r.counters.cancelled <= r.counters.fallback);
        assert!(r.counters.conserves());
    }

    /// Three whole-enclave crashes spread across the run plus an
    /// enclave stall: the ≥3-cycle crash/restart recovery soak.
    fn enclave_chaos_faults() -> ZcSimFaults {
        ZcSimFaults::new()
            .crash_enclave_at_call(100)
            .crash_enclave_at_call(5_000)
            .crash_enclave_at_call(20_000)
            .stall_enclave_at_call(10_000, 50_000)
            .with_enclave_restart_cycles(500_000)
    }

    #[test]
    fn zc_enclave_crash_soak_recovers_with_exact_accounting() {
        // 2 closed-loop callers × 15k idempotent calls across three
        // enclave crash/restart cycles and one stall. Every offered
        // call must complete exactly once (idempotent calls straddling
        // a crash are replayed, completed-but-undelivered ones are
        // redelivered from the journal) and the journal must drain.
        let cfg = fault_soak_cfg(enclave_chaos_faults(), 8, 2, 15_000);
        let r = run(&cfg);
        assert_eq!(r.counters.total_calls(), 30_000);
        assert_eq!(r.counters.ops_per_caller, vec![15_000; 2]);
        assert_eq!(r.counters.refused_non_idempotent, 0);
        assert!(r.counters.conserves());
        let f = &r.fault_recovery;
        assert_eq!(f.enclave_crashes, 3, "{f:?}");
        assert_eq!(f.enclave_restarts, 3, "{f:?}");
        assert!(f.journal_replays >= 3, "{f:?}");
        assert_eq!(f.refused_non_idempotent, 0, "{f:?}");
        assert_eq!(f.journal_live, 0, "journal must drain: {f:?}");
        assert_eq!(r.recovery_latencies.restart_to_first_completion.len(), 3);
        assert!(!r.recovery_latencies.redelivery_cycles.is_empty());
    }

    #[test]
    fn zc_enclave_crash_refuses_non_idempotent_calls() {
        // All calls are non-idempotent: every call whose fate straddles
        // the crash must be refused (never silently replayed), and the
        // refusals must balance the conservation identity.
        let call = CallDesc {
            host_cycles: 500,
            payload_bytes: 64,
            non_idempotent: true,
            ..CallDesc::default()
        };
        let cfg = SimConfig::new(
            Mechanism::Zc(ZcSimParams::default()),
            vec![
                WorkloadSpec::ClosedLoop {
                    pattern: vec![call],
                    total_ops: 5_000,
                };
                2
            ],
            1,
        )
        .with_vcpus(8)
        .with_zc_faults(
            ZcSimFaults::new()
                .crash_enclave_at_call(100)
                .with_enclave_restart_cycles(500_000),
        );
        let r = run(&cfg);
        let f = &r.fault_recovery;
        assert_eq!(f.enclave_crashes, 1, "{f:?}");
        assert!(r.counters.refused_non_idempotent >= 1, "{:?}", r.counters);
        assert_eq!(
            r.counters.refused_non_idempotent, f.refused_non_idempotent,
            "world and counter views must agree"
        );
        assert_eq!(f.journal_replays, 0, "nothing may replay: {f:?}");
        assert_eq!(
            r.counters.total_calls() + r.counters.refused_non_idempotent,
            10_000
        );
        assert!(r.counters.conserves());
        assert_eq!(f.journal_live, 0, "{f:?}");
    }

    #[test]
    fn zc_crash_during_replay_redelivers_without_reexecution() {
        // A second crash lands right after the first replay journals
        // its completion: reconciliation after the second restart must
        // redeliver the recorded result, not execute a third time.
        let cfg = fault_soak_cfg(
            ZcSimFaults::new()
                .crash_enclave_at_call(100)
                .crash_enclave_during_replay(0)
                .with_enclave_restart_cycles(500_000),
            8,
            2,
            5_000,
        );
        let r = run(&cfg);
        let f = &r.fault_recovery;
        assert_eq!(f.enclave_crashes, 2, "{f:?}");
        assert_eq!(f.enclave_restarts, 2, "{f:?}");
        assert!(f.call_redeliveries >= 1, "{f:?}");
        assert_eq!(r.counters.total_calls(), 10_000);
        assert!(r.counters.conserves());
        assert_eq!(f.journal_live, 0, "{f:?}");
    }

    #[test]
    fn zc_enclave_recovery_soak_at_128_vcpus_on_event_kernel() {
        // The recovery plane at the lifted scale: 128 vCPUs and 32
        // callers on the event-driven kernel, three crash/restart
        // cycles. Exactly-once accounting must be scale-invariant.
        let cfg = fault_soak_cfg(enclave_chaos_faults(), 128, 32, 5_000).with_event_kernel();
        let r = run(&cfg);
        assert_eq!(r.counters.total_calls(), 160_000);
        assert_eq!(r.counters.ops_per_caller, vec![5_000; 32]);
        assert!(r.counters.conserves());
        let f = &r.fault_recovery;
        assert_eq!(f.enclave_crashes, 3, "{f:?}");
        assert_eq!(f.enclave_restarts, 3, "{f:?}");
        assert!(f.journal_replays >= 3, "{f:?}");
        assert_eq!(f.journal_live, 0, "{f:?}");
        assert_eq!(f.dead_workers, 0, "{f:?}");
        assert_eq!(r.recovery_latencies.restart_to_first_completion.len(), 3);
    }

    #[test]
    fn zc_enclave_recovery_runs_are_deterministic() {
        // Same seed-free closed-loop schedule, same report — including
        // the recovery counters and latency samples — byte for byte.
        let cfg = fault_soak_cfg(enclave_chaos_faults(), 128, 8, 2_000).with_event_kernel();
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.duration_cycles, b.duration_cycles);
        assert_eq!(a.fault_recovery, b.fault_recovery);
        assert_eq!(a.recovery_latencies, b.recovery_latencies);
    }

    #[test]
    fn zc_enclave_faults_compose_with_worker_faults() {
        // Worker crashes and an enclave crash in one schedule: the
        // supervisor revives workers, the recovery plane restarts the
        // enclave, and the accounting still balances.
        let faults = chaos_faults()
            .crash_enclave_at_call(2_000)
            .with_enclave_restart_cycles(500_000);
        let cfg = fault_soak_cfg(faults, 8, 2, 10_000);
        let r = run(&cfg);
        assert_eq!(r.counters.total_calls(), 20_000);
        assert!(r.counters.conserves());
        let f = &r.fault_recovery;
        assert_eq!(f.crashes, 3, "{f:?}");
        assert_eq!(f.hangs, 2, "{f:?}");
        assert_eq!(f.enclave_crashes, 1, "{f:?}");
        assert_eq!(f.dead_workers, 0, "{f:?}");
        assert_eq!(f.journal_live, 0, "{f:?}");
    }

    /// 32 open-loop callers of sustained ~2× MMPP traffic against the
    /// ZC mechanism on the 128-vCPU event-kernel machine, with a
    /// client-side dispatch budget — the overload regime of ISSUE 8.
    fn mmpp_overload_cfg(seed: u64) -> SimConfig {
        use crate::arrival::{ArrivalProcess, ServiceDist};
        use crate::workload::OpenLoad;
        let load = OpenLoad::new(
            simple_call(500),
            ArrivalProcess::Mmpp {
                calm_gap_cycles: 8_000,
                burst_gap_cycles: 1_000,
                calm_dwell_cycles: 200_000,
                burst_dwell_cycles: 100_000,
            },
            seed,
            20_000_000,
        )
        .with_service(ServiceDist::Exponential { mean_cycles: 400 })
        .with_deadline_budget(100_000);
        SimConfig::new(
            Mechanism::Zc(ZcSimParams::default()),
            vec![WorkloadSpec::Open(load); 32],
            1,
        )
        .with_vcpus(128)
        .with_event_kernel()
    }

    #[test]
    fn zc_mmpp_overload_soak_sheds_conserves_and_bounds_p99() {
        let r = run(&mmpp_overload_cfg(1));
        let c = &r.counters;
        assert!(
            c.offered > 100_000,
            "sustained MMPP load must offer heavily, got {}",
            c.offered
        );
        assert!(
            c.ops_shed > 0,
            "bursts outrun the caller, the budget must shed"
        );
        assert!(
            c.conserves(),
            "offered {} != completed {} + shed {} + abandoned {}",
            c.offered,
            c.total_calls(),
            c.ops_shed,
            c.ops_abandoned
        );
        assert!(
            c.goodput_ratio() > 0.3,
            "shedding must protect goodput, got {:.2}",
            c.goodput_ratio()
        );
        // Admitted calls ride the budget: queueing is capped at 100k
        // cycles, service at ~64×mean, so p99 sojourn (factor-of-2
        // histogram granularity) stays far below the 20M-cycle window.
        let p99 = c.sojourn_quantile_cycles(99);
        assert!(p99 > 0);
        assert!(p99 <= 1 << 19, "p99 sojourn unbounded: {p99} cycles");
    }

    #[test]
    fn zc_mmpp_overload_soak_is_byte_identical_across_runs() {
        let a = run(&mmpp_overload_cfg(9));
        let b = run(&mmpp_overload_cfg(9));
        assert_eq!(a.counters, b.counters, "same seed, same full trace");
        assert_eq!(a.duration_cycles, b.duration_cycles);
        assert_eq!(a.total_busy_cycles, b.total_busy_cycles);
        let c = run(&mmpp_overload_cfg(10));
        assert_ne!(a.counters, c.counters, "different seed, different trace");
    }

    #[test]
    fn zc_byzantine_runs_are_deterministic() {
        let cfg = SimConfig::new(
            Mechanism::Zc(ZcSimParams::default()),
            vec![closed(5_000, 500); 3],
            1,
        )
        .with_zc_faults(byzantine_faults());
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a.duration_cycles, b.duration_cycles);
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.fault_recovery, b.fault_recovery);
        assert_eq!(a.total_busy_cycles, b.total_busy_cycles);
    }

    #[test]
    fn zc_fault_runs_are_deterministic() {
        let cfg = SimConfig::new(
            Mechanism::Zc(ZcSimParams::default()),
            vec![closed(5_000, 500); 3],
            1,
        )
        .with_zc_faults(chaos_faults());
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a.duration_cycles, b.duration_cycles);
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.fault_recovery, b.fault_recovery);
        assert_eq!(a.total_busy_cycles, b.total_busy_cycles);
    }

    #[test]
    fn zc_faults_out_of_range_workers_are_ignored() {
        let cfg = SimConfig::new(
            Mechanism::Zc(ZcSimParams::default()),
            vec![closed(1_000, 500)],
            1,
        )
        .with_zc_faults(ZcSimFaults::new().crash_at(1_000_000, 999));
        let r = run(&cfg);
        assert_eq!(r.counters.total_calls(), 1_000);
        assert_eq!(r.fault_recovery.crashes, 0);
    }

    #[test]
    fn deadline_bounds_runaway_workloads() {
        let cfg = SimConfig::new(Mechanism::NoSl, vec![closed(u64::MAX / 2, 1_000)], 1)
            .with_deadline(10_000_000);
        let r = run(&cfg);
        assert!(r.duration_cycles <= 10_000_001);
        assert!(r.counters.callers_live > 0);
    }

    #[test]
    fn sampling_produces_a_timeline() {
        let cfg =
            SimConfig::new(Mechanism::NoSl, vec![closed(1_000, 500)], 1).with_sampling(1_000_000);
        let r = run(&cfg);
        assert!(r.timeline.samples.len() > 3);
        // Ops are monotonically non-decreasing.
        for w in r.timeline.samples.windows(2) {
            assert!(w[1].ops_per_caller[0] >= w[0].ops_per_caller[0]);
            assert!(w[1].busy_cycles >= w[0].busy_cycles);
        }
    }

    #[test]
    fn determinism_same_config_same_report() {
        let cfg = SimConfig::new(
            Mechanism::Zc(ZcSimParams::default()),
            vec![closed(2_000, 300); 3],
            1,
        );
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a.duration_cycles, b.duration_cycles);
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.total_busy_cycles, b.total_busy_cycles);
    }

    #[test]
    fn gantt_rendering_shows_callers_and_workers() {
        let cfg = SimConfig::new(
            Mechanism::Zc(ZcSimParams::default()),
            vec![closed(500, 2_000); 2],
            1,
        )
        .with_gantt(40);
        let r = run(&cfg);
        let g = r.gantt.expect("gantt requested");
        assert_eq!(g.lines().count(), 8, "one row per core:\n{g}");
        assert!(g.contains('|'), "{g}");
        // Without the flag, no gantt is produced.
        let r2 = run(&SimConfig::new(Mechanism::NoSl, vec![closed(10, 100)], 1));
        assert!(r2.gantt.is_none());
    }

    #[test]
    fn report_metrics_are_consistent() {
        let r = run(&SimConfig::new(Mechanism::NoSl, vec![closed(100, 100)], 1));
        assert!(r.duration_secs() > 0.0);
        assert!(r.cpu_percent() > 0.0 && r.cpu_percent() <= 100.0);
        assert!(r.caller_throughput(0) > 0.0);
        assert!(r.mean_latency_us() > 0.0);
    }
}
