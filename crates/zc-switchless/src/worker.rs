//! The ZC worker thread loop.
//!
//! A worker spins on its [`WorkerBuffer`] status word:
//!
//! * `PROCESSING` — a caller posted a request: invoke the host function,
//!   publish results, move to `WAITING`;
//! * `UNUSED` — idle: honour the scheduler command (`Deactivate` → park
//!   in `PAUSED`, `Exit` → terminate) or keep pause-spinning for work;
//! * `RESERVED` / `WAITING` — owned by a caller mid-handoff: spin.
//!
//! Idle spinning is the *deliberate* CPU cost the ZC scheduler manages:
//! for every active worker there is always exactly one busy-waiting
//! thread (paper §IV-A).

use crate::buffer::{SchedCommand, WorkerBuffer};
use crate::runtime::{Shared, YIELD_EVERY};
use switchless_core::{WorkerFault, WorkerState};

/// Body of worker thread `index` serving buffer `me` (passed explicitly
/// rather than read from the slot: a supervisor respawn swaps the slot
/// to a fresh buffer, and each thread generation must keep serving the
/// buffer it was spawned with). Returns when the worker reaches the
/// `EXIT` state.
pub(crate) fn worker_loop(shared: &Shared, index: usize, me: &WorkerBuffer) {
    me.set_thread(std::thread::current());
    let meter = shared
        .accounting
        .as_ref()
        .map(|acc| acc.register(format!("zc-worker-{index}")));
    let mut busy_since = shared.clock.now_cycles();
    let mut spins: u32 = 0;

    loop {
        match me.state() {
            WorkerState::Processing => {
                spins = 0;
                if !execute(shared, me, index) {
                    // Injected crash: the thread dies abruptly. The buffer
                    // stays POISONED in PROCESSING, so it can never be
                    // claimed again — the quarantine the caller re-routes
                    // around.
                    break;
                }
            }
            WorkerState::Unused => match me.sched_command() {
                SchedCommand::Exit => {
                    if me.try_transition(WorkerState::Unused, WorkerState::Exit) {
                        break;
                    }
                }
                SchedCommand::Deactivate => {
                    if me.try_transition(WorkerState::Unused, WorkerState::Paused) {
                        // Account the spin time up to here as busy, the
                        // parked time as idle.
                        let now = shared.clock.now_cycles();
                        if let Some(m) = &meter {
                            m.add_busy(now.saturating_sub(busy_since));
                        }
                        let parked_at = now;
                        park_until_released(me);
                        busy_since = shared.clock.now_cycles();
                        if let Some(m) = &meter {
                            m.add_idle(busy_since.saturating_sub(parked_at));
                        }
                        if me.state() == WorkerState::Exit {
                            // Final cleanup happened inside the park loop.
                            if let Some(m) = &meter {
                                m.add_busy(0);
                            }
                            return;
                        }
                    }
                }
                SchedCommand::Run => {
                    shared.clock.pause();
                    spins = spins.wrapping_add(1);
                    if spins.is_multiple_of(YIELD_EVERY) {
                        std::thread::yield_now();
                    }
                }
            },
            WorkerState::Reserved | WorkerState::Waiting => {
                // Caller-owned interim states: stay hot.
                shared.clock.pause();
                spins = spins.wrapping_add(1);
                if spins.is_multiple_of(YIELD_EVERY) {
                    std::thread::yield_now();
                }
            }
            WorkerState::Paused => {
                // Only reachable on a spurious unpark race; re-park.
                park_until_released(me);
                if me.state() == WorkerState::Exit {
                    break;
                }
            }
            WorkerState::Exit => break,
        }
    }
    if let Some(m) = &meter {
        m.add_busy(shared.clock.now_cycles().saturating_sub(busy_since));
    }
}

/// Park while `PAUSED`. Returns when the scheduler reactivates the worker
/// (state left `PAUSED`) or after self-transitioning to `EXIT` on an exit
/// command.
fn park_until_released(me: &WorkerBuffer) {
    loop {
        if me.sched_command() == SchedCommand::Exit {
            // Either we win PAUSED -> EXIT, or the scheduler already
            // moved us out of PAUSED (reactivation raced the shutdown).
            if me.try_transition(WorkerState::Paused, WorkerState::Exit)
                || me.state() == WorkerState::Exit
            {
                return;
            }
        }
        if me.state() != WorkerState::Paused {
            return; // reactivated
        }
        std::thread::park();
    }
}

/// Execute the posted request and publish results
/// (`PROCESSING -> WAITING`). Returns `false` if an injected crash
/// terminated the worker (the caller's request was *not* invoked).
fn execute(shared: &Shared, me: &WorkerBuffer, index: usize) -> bool {
    #[cfg(not(feature = "telemetry"))]
    let _ = index;
    #[cfg(feature = "telemetry")]
    macro_rules! trace_fault {
        ($kind:ident) => {
            shared.telemetry_event(
                zc_telemetry::Origin::Worker(index as u32),
                zc_telemetry::Event::Fault {
                    kind: zc_telemetry::FaultKind::$kind,
                },
            )
        };
    }
    if let Some(faults) = &shared.faults {
        match faults.on_worker_call() {
            WorkerFault::None => {}
            WorkerFault::Stall(cycles) => {
                #[cfg(feature = "telemetry")]
                trace_fault!(WorkerStall);
                shared.clock.spin_cycles(cycles);
            }
            WorkerFault::Crash => {
                #[cfg(feature = "telemetry")]
                trace_fault!(WorkerCrash);
                // Poison *before* touching the slot: the request has not
                // been invoked yet, so the caller re-executing it through
                // the fallback path is side-effect-safe.
                me.poison();
                return false;
            }
            WorkerFault::Hang => {
                #[cfg(feature = "telemetry")]
                trace_fault!(WorkerHang);
                me.poison();
                // Wedge forever: unparks (e.g. from shutdown) just re-park.
                // Shutdown must abandon this thread via its drain timeout.
                loop {
                    std::thread::park();
                }
            }
        }
    }
    if me.is_poisoned() {
        // The caller-side watchdog cancelled this call (e.g. after an
        // injected stall outlived the deadline) and re-routed it to a
        // regular ocall. The request must NOT be invoked here too —
        // retire the thread instead; the supervisor respawns the slot.
        return false;
    }
    me.with_pool(|pool| {
        me.with_slot(|slot| {
            let req = slot
                .request
                .take()
                .expect("PROCESSING worker without a posted request");
            let (off, len) = slot.payload_in;
            let payload_in = pool.slice(off, len);
            // Contain host-function panics: an unwinding worker would
            // leave its caller spinning forever. The host side is
            // untrusted anyway — a crash there maps to an error return,
            // mirroring how a killed ocall surfaces in SGX.
            let ret = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                shared
                    .table
                    .invoke(&req, payload_in, &mut slot.payload_out)
                    .unwrap_or(-1)
            }))
            .unwrap_or(-1);
            slot.reply.ret = ret;
            slot.reply.payload_len = slot.payload_out.len() as u32;
        });
    });
    let ok = me.try_transition(WorkerState::Processing, WorkerState::Waiting);
    debug_assert!(ok, "PROCESSING -> WAITING must not be contended");
    true
}
