//! Zero-cost indirection over the telemetry phase recorder.
//!
//! Same shim as `zc_switchless::prof` (the crates cannot share a
//! `pub(crate)` module): with the `telemetry` feature on, [`Rec`] wraps
//! an optional [`zc_telemetry::PhaseRecorder`] — `None` when no hub is
//! installed, so a hub-less runtime pays one branch per mark and never
//! reads the clock. With the feature off, [`Rec`] is a ZST whose
//! methods are empty `#[inline]` bodies: the `now` closures are never
//! invoked, so the hot path compiles to exactly the uninstrumented code.

#[cfg(feature = "telemetry")]
pub(crate) use zc_telemetry::Phase;

/// Per-call phase stopwatch handle threaded through the dispatch path.
#[cfg(feature = "telemetry")]
#[derive(Debug)]
pub(crate) struct Rec(Option<zc_telemetry::PhaseRecorder>);

#[cfg(feature = "telemetry")]
impl Rec {
    /// Recording handle starting at `now()`.
    #[inline]
    pub(crate) fn start(now: impl FnOnce() -> u64) -> Self {
        Rec(Some(zc_telemetry::PhaseRecorder::start(now)))
    }

    /// Non-recording handle (telemetry feature on, no hub installed).
    #[inline]
    pub(crate) fn disabled() -> Self {
        Rec(None)
    }

    #[inline]
    pub(crate) fn mark(&mut self, phase: Phase, now: impl FnOnce() -> u64) {
        if let Some(r) = &mut self.0 {
            r.mark(phase, now);
        }
    }

    #[inline]
    pub(crate) fn set_execute_hint(&mut self, cycles: u64) {
        if let Some(r) = &mut self.0 {
            r.set_execute_hint(cycles);
        }
    }

    #[inline]
    pub(crate) fn transfer(&mut self, from: Phase, to: Phase, cycles: u64) {
        if let Some(r) = &mut self.0 {
            r.transfer(from, to, cycles);
        }
    }

    /// Close the recording: per-phase breakdown plus total, or `None`
    /// for a disabled handle.
    #[inline]
    pub(crate) fn finish(self, now: impl FnOnce() -> u64) -> Option<([u64; 6], u64)> {
        self.0.map(|r| r.finish(now))
    }
}

/// Feature-off phase names (never read; keeps call sites identical).
#[cfg(not(feature = "telemetry"))]
#[derive(Debug, Clone, Copy)]
#[allow(dead_code)]
pub(crate) enum Phase {
    Reserve,
    CopyIn,
    Signal,
    Wait,
    Execute,
    CopyOut,
}

/// Feature-off stand-in: a ZST with empty inline methods. The `now`
/// closures are never called, so no clock reads survive compilation.
#[cfg(not(feature = "telemetry"))]
#[derive(Debug)]
pub(crate) struct Rec;

#[cfg(not(feature = "telemetry"))]
#[allow(dead_code)]
impl Rec {
    #[inline]
    pub(crate) fn start(_now: impl FnOnce() -> u64) -> Self {
        Rec
    }

    #[inline]
    pub(crate) fn disabled() -> Self {
        Rec
    }

    #[inline]
    pub(crate) fn mark(&mut self, _phase: Phase, _now: impl FnOnce() -> u64) {}

    #[inline]
    pub(crate) fn set_execute_hint(&mut self, _cycles: u64) {}

    #[inline]
    pub(crate) fn transfer(&mut self, _from: Phase, _to: Phase, _cycles: u64) {}

    #[inline]
    pub(crate) fn finish(self, _now: impl FnOnce() -> u64) -> Option<([u64; 6], u64)> {
        None
    }
}
