//! kissdb under ZC-SWITCHLESS: a key/value store whose file I/O rides
//! adaptive switchless ocalls (the paper's §V-A scenario).
//!
//! Run with: `cargo run --release --example kissdb_store`

use std::sync::Arc;
use switchless_core::{CpuSpec, OcallTable, ZcConfig};
use zc_switchless_repro::sgx_sim::{hostfs::FsFuncs, Enclave, HostFs};
use zc_switchless_repro::zc_switchless::ZcRuntime;
use zc_switchless_repro::zc_workloads::{EnclaveIo, KissDb};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fs = HostFs::new();
    let mut table = OcallTable::new();
    let funcs = FsFuncs::register(&mut table, &fs);
    let enclave = Enclave::new(CpuSpec::paper_machine());
    let zc = ZcRuntime::start(ZcConfig::default(), Arc::new(table), enclave)?;

    // Open the store: 8-byte keys and values, as in the paper's bench.
    let io = EnclaveIo::new(&zc, funcs);
    let mut db = KissDb::open(io, "/store.db", 1024, 8, 8)?;

    let n: u64 = 5_000;
    let t0 = std::time::Instant::now();
    for i in 0..n {
        db.put(&i.to_le_bytes(), &(i * i).to_le_bytes())?;
    }
    let set_ms = t0.elapsed().as_secs_f64() * 1e3;

    let t0 = std::time::Instant::now();
    let mut hits = 0u64;
    for i in 0..n {
        if let Some(v) = db.get(&i.to_le_bytes())? {
            assert_eq!(u64::from_le_bytes(v.try_into().unwrap()), i * i);
            hits += 1;
        }
    }
    let get_ms = t0.elapsed().as_secs_f64() * 1e3;
    db.close()?;

    let snap = zc.stats().snapshot();
    println!("kissdb over ZC-SWITCHLESS");
    println!(
        "  {n} SETs in {set_ms:.1} ms ({:.1} us/op)",
        set_ms * 1e3 / n as f64
    );
    println!(
        "  {hits}/{n} GETs in {get_ms:.1} ms ({:.1} us/op)",
        get_ms * 1e3 / n as f64
    );
    println!(
        "  ocalls: {} switchless, {} fallback, {} pool reallocs",
        snap.switchless, snap.fallback, snap.pool_reallocs
    );
    println!(
        "  db file: {} bytes",
        fs.file_size("/store.db").unwrap_or(0)
    );
    println!("  scheduler decisions: {}", zc.scheduler_decisions());
    zc.shutdown();
    Ok(())
}
