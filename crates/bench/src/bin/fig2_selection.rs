//! Fig. 2 + §III-A inline numbers: runtime of configurations C1–C5 for
//! 100 000 ocalls (3:1 `f`:`g` mix) over 1–5 Intel switchless workers.
//!
//! Usage: `fig2_selection [--quick]`

use zc_bench::experiments::synthetic::{fig2, run_synthetic, SynthConfig, SynthParams};
use zc_bench::table::{f3, Table};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let params = SynthParams {
        total_ops: if quick { 10_000 } else { 100_000 },
        ..SynthParams::default()
    };

    // §III-A inline numbers at 2 workers.
    let mut inline = Table::new(
        "Sec III-A: C1..C5 runtime (paper: 0.9 / 1.6 / 1.3 / 1.3 / 1.0 s)",
        &["config", "runtime (s)", "vs C1"],
    );
    let reports: Vec<_> = SynthConfig::ALL
        .iter()
        .map(|&c| (c, run_synthetic(c, params)))
        .collect();
    let c1 = reports[0].1.duration_secs();
    for (c, r) in &reports {
        inline.row(vec![
            c.label().to_string(),
            f3(r.duration_secs()),
            format!("{:.2}x", r.duration_secs() / c1),
        ]);
    }
    inline.emit(Some(std::path::Path::new("results/sec3a_inline.csv")));

    let t = fig2(params, &[1, 2, 3, 4, 5]);
    t.emit(Some(std::path::Path::new("results/fig2_selection.csv")));
}
