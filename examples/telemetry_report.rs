//! End-to-end telemetry demo: run the real-thread ZC runtime **on
//! virtual time** under a bursty workload, then a DES simulation on the
//! paper machine, both reporting into one telemetry hub — and export
//! everything three ways:
//!
//! * `results/telemetry_report.jsonl` — one JSON object per event;
//! * `results/telemetry_report.prom` — Prometheus text exposition;
//! * `results/telemetry_report.trace.json` — Chrome `trace_event` JSON
//!   (load in `chrome://tracing` or Perfetto).
//!
//! Along the way it prints the scheduler's decision timeline — the
//! measured fallback counts `F_i` and derived costs `U_i` behind every
//! argmin — and a per-function routing table built from call spans.
//!
//! Run with: `cargo run --release --example telemetry_report`

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;
use switchless_core::{CallPath, CpuSpec, OcallDispatcher, OcallRequest, OcallTable, ZcConfig};
use zc_switchless_repro::sgx_sim::Enclave;
use zc_switchless_repro::zc_switchless::ZcRuntime;
use zc_telemetry::export::{events_to_jsonl, to_chrome_trace, to_prometheus};
use zc_telemetry::{Event, RecordedEvent, Telemetry};

fn run_runtime(hub: &Arc<Telemetry>) -> Result<ZcRuntime, Box<dyn std::error::Error>> {
    println!("=== real threads on virtual time ===");
    let mut table = OcallTable::new();
    let enclave = Enclave::new_virtual(CpuSpec::paper_machine());
    let clock = enclave.clock();
    let c2 = clock.clone();
    let fast = table.register("fast_op", move |_: &[u64; 6], _: &[u8], _: &mut Vec<u8>| {
        c2.spin_cycles(2_000);
        0
    });
    let c3 = clock.clone();
    let slow = table.register("slow_op", move |_: &[u64; 6], _: &[u8], _: &mut Vec<u8>| {
        c3.spin_cycles(150_000);
        0
    });
    // Short quantum so several scheduling decisions land in the demo.
    let cfg = ZcConfig::for_cpu(*enclave.spec()).with_quantum_ms(2);
    let zc = ZcRuntime::start_with_telemetry(cfg, Arc::new(table), enclave, Arc::clone(hub), None)?;

    let mut out = Vec::new();
    for phase in 0..4 {
        let bursty = phase % 2 == 0;
        let mut ops = 0u64;
        if bursty {
            for i in 0..3_000u64 {
                let func = if i % 50 == 0 { slow } else { fast };
                zc.dispatch(&OcallRequest::new(func, &[i]), b"payload", &mut out)?;
                ops += 1;
            }
        } else {
            // Idle: let two quanta of virtual time pass with no calls.
            clock.advance_cycles(2 * zc.config().policy_params().quantum_cycles);
        }
        println!(
            "phase {phase} ({:5}): {ops:5} ocalls, active workers now: {}",
            if bursty { "burst" } else { "idle" },
            zc.active_workers()
        );
    }
    let report = zc.shutdown_with_timeout(Duration::from_secs(5));
    println!(
        "drained {} in-flight calls ({} abandoned)",
        report.drained, report.abandoned
    );
    // Hand the (stopped) runtime back so its metrics collector stays
    // registered until the final snapshot is taken.
    Ok(zc)
}

fn run_simulation(hub: &Arc<Telemetry>) {
    println!("\n=== deterministic simulator (paper machine) ===");
    use zc_switchless_repro::zc_des::ocall::CallDesc;
    use zc_switchless_repro::zc_des::{run, Mechanism, SimConfig, WorkloadSpec, ZcSimParams};

    let call = CallDesc {
        host_cycles: 3_000,
        ret_bytes: 8,
        ..CallDesc::default()
    };
    let cfg = SimConfig::new(
        Mechanism::Zc(ZcSimParams::default()),
        vec![
            WorkloadSpec::ClosedLoop {
                pattern: vec![call],
                total_ops: 50_000,
            };
            2
        ],
        1,
    )
    .with_telemetry(Arc::clone(hub));
    let r = run(&cfg);
    println!(
        "sim: {} calls in {:.3} virtual s, mean active workers {:.2}",
        r.counters.total_calls(),
        r.duration_secs(),
        r.mean_active_workers
    );
}

fn print_decisions(events: &[RecordedEvent]) {
    println!("\n--- scheduler decision timeline (F_i measured, U_i derived) ---");
    let mut n = 0;
    for ev in events {
        if let Event::Decision { decision } = &ev.event {
            n += 1;
            let f: Vec<u64> = decision.probes.iter().map(|p| p.fallbacks).collect();
            println!(
                "t={:>12}cyc [{}] chose M'={} | F_i={:?} U_i={:?}",
                ev.t_cycles,
                ev.origin.label(),
                decision.chosen_workers,
                f,
                decision.costs
            );
            if n >= 10 {
                println!("... (first 10 shown)");
                break;
            }
        }
    }
    if n == 0 {
        println!("(no completed configuration phase — run longer)");
    }
}

fn print_call_table(events: &[RecordedEvent]) {
    println!("\n--- routed calls by function ---");
    // func -> (switchless, fallback, regular, total cycles)
    let mut rows: BTreeMap<u16, (u64, u64, u64, u64)> = BTreeMap::new();
    for ev in events {
        if let Event::CallRouted {
            func,
            path,
            duration_cycles,
            ..
        } = &ev.event
        {
            let row = rows.entry(*func).or_default();
            match path {
                CallPath::Switchless => row.0 += 1,
                CallPath::Fallback => row.1 += 1,
                CallPath::Regular => row.2 += 1,
            }
            row.3 = row.3.saturating_add(*duration_cycles);
        }
    }
    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>12}",
        "func", "switchless", "fallback", "regular", "mean (cyc)"
    );
    for (func, (s, f, r, cycles)) in &rows {
        let calls = s + f + r;
        println!(
            "{func:>6} {s:>10} {f:>10} {r:>10} {:>12}",
            cycles.checked_div(calls).unwrap_or(0)
        );
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let hub = Telemetry::new();
    let _zc = run_runtime(&hub)?;
    run_simulation(&hub);

    let events = hub.tracer().drain();
    let snapshot = hub.metrics().snapshot();
    print_decisions(&events);
    print_call_table(&events);

    let transitions = events
        .iter()
        .filter(|e| matches!(e.event, Event::WorkerTransition { .. }))
        .count();
    println!(
        "\ncaptured {} events ({} worker transitions, {} dropped)",
        events.len(),
        transitions,
        hub.tracer().dropped()
    );

    std::fs::create_dir_all("results")?;
    std::fs::write("results/telemetry_report.jsonl", events_to_jsonl(&events))?;
    std::fs::write("results/telemetry_report.prom", to_prometheus(&snapshot))?;
    std::fs::write(
        "results/telemetry_report.trace.json",
        to_chrome_trace(&events, CpuSpec::paper_machine().freq_hz),
    )?;
    println!(
        "wrote results/telemetry_report.jsonl, .prom and .trace.json ({} metrics)",
        snapshot.entries.len()
    );
    Ok(())
}
