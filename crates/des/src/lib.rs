//! Deterministic discrete-event simulation of a multi-core SGX machine.
//!
//! The host running this reproduction has a single core, while the
//! paper's experiments need eight logical CPUs saturated with
//! busy-waiting worker threads. This crate therefore simulates the
//! *machine* — cores, preemptive scheduling, spin-waits, sleeps — in
//! virtual time, and runs the switchless-call protocols on top:
//!
//! * [`kernel`] — the cycle-accurate kernel: virtual cores, round-robin
//!   preemption, flags (spin-wait rendezvous), park/unpark.
//! * [`event_kernel`] — the priority-queue kernel: time jumps to the
//!   next scheduled event, spin-waits park instead of holding cores,
//!   and the core count scales to 128+ vCPUs. Selected per run via
//!   [`sim::KernelMode`]; both kernels run the same actors through the
//!   shared [`kernel::Machine`] trait (DESIGN.md §11).
//! * [`ocall`] — the three mechanisms under study as virtual-thread
//!   protocols: regular ocalls, the Intel switchless mechanism
//!   (task pool, `rbf`/`rbs`) and ZC-SWITCHLESS (idle-worker handoff,
//!   immediate fallback, adaptive scheduler driven by
//!   [`switchless_core::policy`]).
//! * [`workload`] — caller behaviours: closed-loop call mixes, the
//!   phase-driven dynamic load of the lmbench experiment, and seeded
//!   open-loop stochastic traffic ([`arrival`]) with client-side
//!   deadline shedding for overload studies.
//! * [`sim`] — experiment assembly: build a machine + mechanism +
//!   workload, run it, collect a [`sim::SimReport`].
//! * [`fleet`] — multi-tenant assembly: M ZC shard stacks as bulkhead
//!   fault domains in one kernel, with per-tenant counters and a global
//!   worker-budget allocator actor ([`fleet::run_fleet`]).
//!
//! All results are in cycles of the modelled CPU and bit-for-bit
//! reproducible across hosts. Enable [`Kernel::enable_tracing`] and
//! render with [`gantt`] to see per-core occupancy timelines.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arrival;
pub mod event_kernel;
pub mod fleet;
pub mod gantt;
pub mod kernel;
pub mod metrics;
pub mod ocall;
pub mod sim;
pub mod workload;

pub use arrival::{ArrivalGen, ArrivalProcess, ServiceDist, ServiceSampler};
pub use event_kernel::EventKernel;
pub use fleet::{run_fleet, FleetReport, FleetSpec, TenantSimReport, TenantSimSpec};
pub use kernel::{Actor, FlagId, Kernel, Machine, SpinTarget, Syscall, SyscallResult, Tid};
pub use ocall::zc::ZcSimFaults;
pub use ocall::{CallDesc, CostModel, Dispatcher, Step};
pub use sim::{
    run, FaultRecovery, KernelMode, Mechanism, RecoveryLatencies, SimConfig, SimReport, ZcSimParams,
};
pub use workload::{CallClass, OpenLoad, PhasedLoad, WorkloadSpec};
