//! Run every figure, table and ablation of the reproduction in one go.
//!
//! Usage: `all_figures [--quick]` — `--quick` trades scale for speed
//! (seconds instead of ~15 minutes). Tables print to stdout; CSVs land
//! under `results/`, along with one `telemetry_<figure>.jsonl` per
//! figure (metrics snapshot + event trace of the runs behind it).

use std::path::Path;
use zc_bench::experiments::{ablations, kissdb, lmbench, memcpy, openssl, synthetic};
use zc_bench::telemetry::FigureScope;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let banner = |s: &str| println!("\n=== {s} ===\n");

    banner("Sec III-A / Fig 2: switchless selection");
    let params = synthetic::SynthParams {
        total_ops: if quick { 10_000 } else { 100_000 },
        ..synthetic::SynthParams::default()
    };
    let scope = FigureScope::begin("fig2_selection");
    synthetic::fig2(params, &[1, 2, 3, 4, 5]).emit(Some(Path::new("results/fig2_selection.csv")));
    scope.finish();

    banner("Fig 3: g-duration sweep");
    let g: Vec<u64> = if quick {
        vec![0, 500]
    } else {
        vec![0, 100, 200, 300, 400, 500]
    };
    let scope = FigureScope::begin("fig3_duration");
    synthetic::fig3(params, &g, &[1, 3, 5]).emit(Some(Path::new("results/fig3_duration.csv")));
    scope.finish();

    banner("Fig 7 / Fig 13: memcpy (real hardware)");
    let ops = if quick { 2_000 } else { 20_000 };
    let scope = FigureScope::begin("fig7_fig13_memcpy");
    memcpy::fig7(ops, &memcpy::PAPER_SIZES)
        .emit(Some(Path::new("results/fig7_memcpy_vanilla.csv")));
    memcpy::fig13(ops, &memcpy::PAPER_SIZES).emit(Some(Path::new("results/fig13_memcpy_zc.csv")));
    scope.finish();

    banner("Fig 8 / Fig 9: kissdb");
    let keys: Vec<u64> = if quick {
        vec![500, 2_000]
    } else {
        vec![500, 1_000, 2_500, 5_000, 7_500, 10_000]
    };
    let scope = FigureScope::begin("fig8_fig9_kissdb");
    for w in [2usize, 4] {
        kissdb::fig8(&keys, w).emit(Some(Path::new(&format!(
            "results/fig8_kissdb_latency_{w}w.csv"
        ))));
        kissdb::fig9(&keys, w).emit(Some(Path::new(&format!(
            "results/fig9_kissdb_cpu_{w}w.csv"
        ))));
    }
    scope.finish();

    banner("Fig 10: OpenSSL-substitute");
    let (fb, ch) = if quick {
        (256 * 1024, 4 * 1024)
    } else {
        (8 * 1024 * 1024, 16 * 1024)
    };
    let scope = FigureScope::begin("fig10_openssl");
    for w in [2usize, 4] {
        openssl::fig10(fb, ch, w).emit(Some(Path::new(&format!("results/fig10_openssl_{w}w.csv"))));
    }
    openssl::zc_residency(fb, ch).emit(Some(Path::new("results/fig10_zc_residency.csv")));
    scope.finish();

    banner("Fig 11 / Fig 12: lmbench dynamic");
    let p = if quick {
        lmbench::LmbenchParams {
            phase_secs: 1,
            ..lmbench::LmbenchParams::default()
        }
    } else {
        lmbench::LmbenchParams::default()
    };
    let scope = FigureScope::begin("fig11_fig12_lmbench");
    for w in [2usize, 4] {
        let reports = lmbench::run_all(&p, w);
        lmbench::fig11(&p, &reports, w).emit(Some(Path::new(&format!(
            "results/fig11_lmbench_tput_{w}w.csv"
        ))));
        lmbench::fig12(&reports, w).emit(Some(Path::new(&format!(
            "results/fig12_lmbench_cpu_{w}w.csv"
        ))));
    }
    scope.finish();

    banner("Ablations A1-A6");
    let ops = if quick { 500 } else { 5_000 };
    let scope = FigureScope::begin("ablations");
    ablations::rbf_sweep(&[0, 64, 1_000, 20_000, 200_000], 6, 2, ops, 200_000)
        .emit(Some(Path::new("results/ablation_rbf.csv")));
    ablations::fallback_ablation(6, ops).emit(Some(Path::new("results/ablation_fallback.csv")));
    let k = if quick { 1_000 } else { 5_000 };
    ablations::quantum_sweep(k, &[1, 5, 10, 50], &[10, 100, 1_000])
        .emit(Some(Path::new("results/ablation_quantum.csv")));
    ablations::fallback_weight_sweep(k, &[1, 2, 4, 8, 16, 32])
        .emit(Some(Path::new("results/ablation_weight.csv")));
    ablations::tes_sweep(k, &[1_000, 3_500, 13_500, 25_000, 50_000])
        .emit(Some(Path::new("results/ablation_tes.csv")));
    ablations::mechanism_comparison(if quick { 500 } else { 3_000 })
        .emit(Some(Path::new("results/ablation_mechanisms.csv")));
    ablations::chaos_sweep(
        if quick { 2_000 } else { 10_000 },
        &[380_000, 800_000, 3_800_000],
    )
    .emit(Some(Path::new("results/ablation_chaos.csv")));
    scope.finish();
}
