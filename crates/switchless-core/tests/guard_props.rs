//! Property tests of the trusted-side validation boundary: arbitrary
//! host-written bytes, lengths and sequence tags must never panic any
//! guard, and every verdict must agree with the documented policy.

use proptest::prelude::*;
use switchless_core::{GuardKind, ReplyGuard, SharedWordGuard, WorkerState};

proptest! {
    /// Status decoding is a total function over the byte domain: every
    /// byte either round-trips through a [`WorkerState`] or is reported
    /// as a `BadStatusWord` carrying the offending byte.
    #[test]
    fn status_decode_total_over_all_bytes(raw in any::<u8>()) {
        match SharedWordGuard.decode_status(raw) {
            Ok(s) => prop_assert_eq!(s.as_u8(), raw),
            Err(v) => {
                prop_assert_eq!(v.kind, GuardKind::BadStatusWord);
                prop_assert_eq!(v.got, u64::from(raw));
                prop_assert!(WorkerState::from_u8(raw).is_none());
            }
        }
    }

    /// The release-mode transition check agrees with the paper's
    /// legality table on every state pair, and a rejection carries the
    /// raw `from`/`to` evidence bytes.
    #[test]
    fn transition_check_agrees_with_legality_table(
        from_idx in 0..WorkerState::ALL.len(),
        to_idx in 0..WorkerState::ALL.len(),
    ) {
        let (from, to) = (WorkerState::ALL[from_idx], WorkerState::ALL[to_idx]);
        match SharedWordGuard.check_transition(from, to) {
            Ok(()) => prop_assert!(from.can_transition(to)),
            Err(v) => {
                prop_assert!(!from.can_transition(to));
                prop_assert_eq!(v.kind, GuardKind::IllegalTransition);
                prop_assert_eq!(v.got, u64::from(to.as_u8()));
                prop_assert_eq!(v.want, u64::from(from.as_u8()));
            }
        }
    }

    /// Command decoding converts any rejected byte into a violation
    /// (never a panic) and passes accepted bytes through unchanged.
    #[test]
    fn command_decode_total_over_all_bytes(raw in any::<u8>(), cutoff in any::<u8>()) {
        let decode = |v: u8| (v < cutoff).then_some(v);
        match SharedWordGuard.decode_command(raw, decode) {
            Ok(v) => prop_assert!(v == raw && raw < cutoff),
            Err(e) => {
                prop_assert!(raw >= cutoff);
                prop_assert_eq!(e.kind, GuardKind::BadCommandWord);
                prop_assert_eq!(e.got, u64::from(raw));
            }
        }
    }

    /// Reply-length validation never panics for any (declared, actual,
    /// capacity) triple, rejects every mismatch with the right kind, and
    /// on acceptance never lets more than `min(actual, capacity)` bytes
    /// through.
    #[test]
    fn reply_check_never_panics_and_clamps(
        declared in any::<u32>(),
        actual in 0usize..(1 << 24),
        capacity in 0usize..(1 << 24),
    ) {
        let guard = ReplyGuard::new(capacity);
        match guard.check_reply(declared, actual) {
            Ok(verdict) => {
                prop_assert_eq!(declared as usize, actual, "only honest lengths pass");
                prop_assert!(verdict.copy_len <= capacity);
                prop_assert!(verdict.copy_len <= actual);
                prop_assert_eq!(verdict.copy_len, actual.min(capacity));
                prop_assert_eq!(verdict.truncated, actual > capacity);
            }
            Err(v) if (declared as usize) > actual => {
                prop_assert_eq!(v.kind, GuardKind::OversizedReply);
                prop_assert_eq!((v.got, v.want), (declared as u64, actual as u64));
            }
            Err(v) => {
                prop_assert!((declared as usize) < actual);
                prop_assert_eq!(v.kind, GuardKind::UndersizedReply);
                prop_assert_eq!((v.got, v.want), (declared as u64, actual as u64));
            }
        }
    }

    /// Sequence-tag matching accepts exactly the in-flight tag; any
    /// other value — stale, replayed, or random garbage — is rejected
    /// with both tags as evidence.
    #[test]
    fn sequence_check_accepts_only_the_inflight_tag(expected in any::<u64>(), got in any::<u64>()) {
        match ReplyGuard::new(0).check_sequence(expected, got) {
            Ok(()) => prop_assert_eq!(expected, got),
            Err(v) => {
                prop_assert!(expected != got);
                prop_assert_eq!(v.kind, GuardKind::StaleSequence);
                prop_assert_eq!((v.got, v.want), (got, expected));
            }
        }
    }
}
