//! Ablations beyond the paper's figures.
//!
//! * [`rbf_sweep`] — demonstrates the §III-C `retries_before_fallback`
//!   pathology directly: with more callers than workers, every blocked
//!   caller burns `rbf` pauses (2.8 M cycles at the SDK default) before
//!   falling back, instead of paying one 13.5 k-cycle transition.
//! * [`quantum_sweep`] — sensitivity of the ZC scheduler to its quantum
//!   `Q` and micro-quantum fraction `µ` (the paper fixes `Q` = 10 ms,
//!   `µ` = 1/100 "empirically"; this shows the neighbourhood is flat).

use super::fscommon::{self, NamedMechanism};
use super::kissdb;
use crate::table::{f2, f3, Table};
use zc_des::ocall::intel::IntelSimConfig;
use zc_des::ocall::CallDesc;
use zc_des::{Mechanism, SimConfig, SimReport, WorkloadSpec, ZcSimFaults, ZcSimParams};

/// Run an oversubscribed Intel configuration (`callers` > `workers`) with
/// a given `rbf`.
#[must_use]
pub fn run_rbf(
    rbf: u64,
    callers: usize,
    workers: usize,
    ops_per_caller: u64,
    host_cycles: u64,
) -> SimReport {
    let call = CallDesc {
        class: 0,
        host_cycles,
        ..CallDesc::default()
    };
    let cfg = IntelSimConfig::new(workers, [0]).with_rbf(rbf);
    let workloads = vec![
        WorkloadSpec::ClosedLoop {
            pattern: vec![call],
            total_ops: ops_per_caller,
        };
        callers
    ];
    zc_des::run(&SimConfig::new(Mechanism::Intel(cfg), workloads, 1))
}

/// A1: runtime and waste as a function of `rbf`.
#[must_use]
pub fn rbf_sweep(
    rbfs: &[u64],
    callers: usize,
    workers: usize,
    ops_per_caller: u64,
    host_cycles: u64,
) -> Table {
    let mut table = Table::new(
        format!(
            "Ablation A1: Intel rbf sweep ({callers} callers, {workers} workers, \
             {ops_per_caller} ops each, {host_cycles}-cycle host calls)"
        ),
        &[
            "rbf (pauses)",
            "runtime (s)",
            "%cpu",
            "switchless",
            "fallback",
        ],
    );
    for &rbf in rbfs {
        let r = run_rbf(rbf, callers, workers, ops_per_caller, host_cycles);
        table.row(vec![
            rbf.to_string(),
            f3(r.duration_secs()),
            f2(r.cpu_percent()),
            r.counters.switchless.to_string(),
            r.counters.fallback.to_string(),
        ]);
    }
    table
}

/// Run the kissdb trace under ZC with overridden scheduler constants.
#[must_use]
pub fn run_quantum(trace: &[CallDesc], quantum_ms: u64, mu_inverse: u64) -> SimReport {
    let mech = NamedMechanism {
        label: format!("zc-q{quantum_ms}-mu{mu_inverse}"),
        mechanism: Mechanism::Zc(ZcSimParams {
            quantum_ms,
            mu_inverse,
            ..ZcSimParams::default()
        }),
    };
    kissdb::run(trace, &mech)
}

/// A3: sweep the scheduler's fallback weight on a kissdb workload.
/// `weight = 1` is the paper's literal `U = F·T_es + M·T` objective (see
/// the reproduction note on
/// [`switchless_core::policy::PolicyParams::fallback_weight`]).
#[must_use]
pub fn fallback_weight_sweep(n_keys: u64, weights: &[u64]) -> Table {
    let trace = kissdb::set_trace(n_keys);
    let mut table = Table::new(
        format!("Ablation A3: zc fallback-weight sweep (kissdb, {n_keys} keys)"),
        &[
            "weight",
            "runtime (s)",
            "%cpu",
            "mean workers",
            "switchless",
            "fallback",
        ],
    );
    for &w in weights {
        let mech = NamedMechanism {
            label: format!("zc-w{w}"),
            mechanism: Mechanism::Zc(ZcSimParams {
                fallback_weight: w,
                ..ZcSimParams::default()
            }),
        };
        let r = kissdb::run(&trace, &mech);
        table.row(vec![
            w.to_string(),
            f3(r.duration_secs()),
            f2(r.cpu_percent()),
            f2(r.mean_active_workers),
            r.counters.switchless.to_string(),
            r.counters.fallback.to_string(),
        ]);
    }
    table
}

/// A2: ZC scheduler constants sweep on a kissdb workload.
#[must_use]
pub fn quantum_sweep(n_keys: u64, quanta_ms: &[u64], mu_inverses: &[u64]) -> Table {
    let trace = kissdb::set_trace(n_keys);
    let mut table = Table::new(
        format!("Ablation A2: zc scheduler Q/µ sweep (kissdb, {n_keys} keys)"),
        &[
            "Q (ms)",
            "1/µ",
            "runtime (s)",
            "%cpu",
            "mean workers",
            "fallback",
        ],
    );
    for &q in quanta_ms {
        for &mu in mu_inverses {
            let r = run_quantum(&trace, q, mu);
            table.row(vec![
                q.to_string(),
                mu.to_string(),
                f3(r.duration_secs()),
                f2(r.cpu_percent()),
                f2(r.mean_active_workers),
                r.counters.fallback.to_string(),
            ]);
        }
    }
    table
}

/// ZC immediate-fallback ablation: compare zc against an Intel
/// configuration identical except for the rbf busy-wait, on the same
/// oversubscribed workload — isolating the paper's "no busy-waiting on
/// claim" design choice (§IV-C).
#[must_use]
pub fn fallback_ablation(callers: usize, ops_per_caller: u64) -> Table {
    let call = CallDesc {
        class: fscommon::FREAD,
        host_cycles: 2_000,
        ..CallDesc::default()
    };
    let workloads = vec![
        WorkloadSpec::ClosedLoop {
            pattern: vec![call],
            total_ops: ops_per_caller,
        };
        callers
    ];
    let mut table = Table::new(
        format!("Ablation: immediate fallback vs rbf busy-wait ({callers} callers)"),
        &["mechanism", "runtime (s)", "%cpu", "fallback"],
    );
    let zc = zc_des::run(&SimConfig::new(
        Mechanism::Zc(ZcSimParams {
            // Pin the worker count to 2 so only the claim path differs.
            max_workers: Some(2),
            initial_workers: Some(2),
            quantum_ms: 10_000, // effectively static for the run
            ..ZcSimParams::default()
        }),
        workloads.clone(),
        fscommon::CLASS_COUNT,
    ));
    let intel = zc_des::run(&SimConfig::new(
        Mechanism::Intel(IntelSimConfig::new(2, [fscommon::FREAD])),
        workloads,
        fscommon::CLASS_COUNT,
    ));
    for (label, r) in [
        ("zc (immediate fallback)", &zc),
        ("intel (rbf=20000)", &intel),
    ] {
        table.row(vec![
            label.to_string(),
            f3(r.duration_secs()),
            f2(r.cpu_percent()),
            r.counters.fallback.to_string(),
        ]);
    }
    table
}

/// A5: CPU-waste profile across all four mechanisms (no_sl, HotCalls,
/// Intel, zc) on a bursty workload with idle gaps — the design-space
/// comparison behind the paper's related-work positioning: HotCalls buys
/// latency with permanently pinned cores; zc approaches its latency
/// while releasing cores in the gaps.
#[must_use]
pub fn mechanism_comparison(n_keys: u64) -> Table {
    use zc_des::ocall::hotcalls::HotcallsConfig;
    let trace = kissdb::set_trace(n_keys);
    // Insert idle gaps longer than Intel's rbs sleep threshold
    // (20 000 pauses = 2.8 M cycles): sleeping Intel workers and parked
    // zc workers release their cores through the gaps, hot workers spin.
    let sparse: Vec<CallDesc> = trace
        .iter()
        .map(|c| CallDesc {
            pre_compute_cycles: c.pre_compute_cycles + 5_000_000,
            ..*c
        })
        .collect();
    let fs_classes = [fscommon::FSEEKO, fscommon::FREAD, fscommon::FWRITE];
    let mechanisms: Vec<(&str, Mechanism)> = vec![
        ("no_sl", Mechanism::NoSl),
        (
            "hotcalls-2",
            Mechanism::Hotcalls(HotcallsConfig::new(2, fs_classes)),
        ),
        (
            "i-all-2",
            Mechanism::Intel(IntelSimConfig::new(2, fs_classes)),
        ),
        ("zc", Mechanism::Zc(ZcSimParams::default())),
    ];
    let mut table = Table::new(
        format!("Ablation A5: mechanism comparison (kissdb + 5M-cycle think, {n_keys} keys)"),
        &[
            "mechanism",
            "runtime (s)",
            "%cpu",
            "worker busy Mcyc",
            "switchless",
            "fallback",
        ],
    );
    for (label, mech) in mechanisms {
        let per = sparse.len().div_ceil(2);
        let workloads: Vec<WorkloadSpec> = sparse
            .chunks(per.max(1))
            .map(|c| WorkloadSpec::ClosedLoop {
                pattern: c.to_vec(),
                total_ops: c.len() as u64,
            })
            .collect();
        let r = zc_des::run(&SimConfig::new(mech, workloads, fscommon::CLASS_COUNT));
        table.row(vec![
            label.to_string(),
            f3(r.duration_secs()),
            f2(r.cpu_percent()),
            f2(r.worker_busy_cycles as f64 / 1e6),
            r.counters.switchless.to_string(),
            r.counters.fallback.to_string(),
        ]);
    }
    table
}

/// A4: sensitivity of the mechanism ranking to the transition cost
/// `T_es` — from TrustZone-like world switches (~3.5 k cycles, paper
/// §IV-D) through SGX v1 (13.5 k) to pessimistic microcode (50 k).
/// Switchless mechanisms matter more as transitions get dearer.
#[must_use]
pub fn tes_sweep(n_keys: u64, tes_values: &[u64]) -> Table {
    let trace = kissdb::set_trace(n_keys);
    let mut table = Table::new(
        format!("Ablation A4: transition-cost sweep (kissdb, {n_keys} keys)"),
        &[
            "T_es (cycles)",
            "no_sl (s)",
            "i-all-2 (s)",
            "zc (s)",
            "zc vs no_sl",
        ],
    );
    for &tes in tes_values {
        let mut cpu = switchless_core::CpuSpec::paper_machine();
        cpu.t_es_cycles = tes;
        let run_with = |mech: Mechanism| {
            let per = trace.len().div_ceil(2);
            let workloads: Vec<WorkloadSpec> = trace
                .chunks(per.max(1))
                .map(|c| WorkloadSpec::ClosedLoop {
                    pattern: c.to_vec(),
                    total_ops: c.len() as u64,
                })
                .collect();
            let mut cfg = SimConfig::new(mech, workloads, fscommon::CLASS_COUNT);
            cfg.cpu = cpu;
            cfg.costs.t_es_cycles = tes;
            zc_des::run(&cfg)
        };
        let no_sl = run_with(Mechanism::NoSl);
        let intel = run_with(Mechanism::Intel(IntelSimConfig::new(
            2,
            [fscommon::FSEEKO, fscommon::FREAD, fscommon::FWRITE],
        )));
        let zc = run_with(Mechanism::Zc(ZcSimParams::default()));
        table.row(vec![
            tes.to_string(),
            f3(no_sl.duration_secs()),
            f3(intel.duration_secs()),
            f3(zc.duration_secs()),
            format!(
                "{:.2}x",
                no_sl.duration_secs() / zc.duration_secs().max(1e-12)
            ),
        ]);
    }
    table
}

/// Run a closed-loop ZC workload under an optional chaos schedule
/// (2 callers: with the 4 workers, scheduler and supervisor this fills
/// the paper machine's 8 cores exactly, so supervisor timers fire at
/// their nominal virtual times).
#[must_use]
pub fn run_chaos(faults: Option<ZcSimFaults>, ops_per_caller: u64, host_cycles: u64) -> SimReport {
    let call = CallDesc {
        class: 0,
        host_cycles,
        ..CallDesc::default()
    };
    let workloads = vec![
        WorkloadSpec::ClosedLoop {
            pattern: vec![call],
            total_ops: ops_per_caller,
        };
        2
    ];
    let mut cfg = SimConfig::new(Mechanism::Zc(ZcSimParams::default()), workloads, 1);
    cfg.zc_faults = faults;
    zc_des::run(&cfg)
}

/// The seeded chaos schedule shared with `tests/chaos_soak.rs`:
/// 3 crashes + 2 hangs inside the first ~1.3 virtual ms.
#[must_use]
pub fn chaos_schedule(respawn_delay: u64, watchdog_pauses: u64) -> ZcSimFaults {
    ZcSimFaults::new()
        .crash_at(1_000_000, 0)
        .crash_at(3_000_000, 1)
        .crash_at(5_000_000, 0)
        .hang_at(2_000_000, 2)
        .hang_at(4_000_000, 3)
        .with_respawn_delay(respawn_delay)
        .with_watchdog_pauses(watchdog_pauses)
}

/// A6: cost of chaos and of recovery latency. A fault-free baseline
/// against the seeded 3-crash/2-hang schedule across supervisor
/// respawn delays: the longer failed slots stay dead, the more calls
/// pay the fallback transition, while conservation holds throughout.
#[must_use]
pub fn chaos_sweep(ops_per_caller: u64, respawn_delays: &[u64]) -> Table {
    let mut table = Table::new(
        format!(
            "Ablation A6: chaos soak, 3 crashes + 2 hangs \
             (2 callers, {ops_per_caller} ops each)"
        ),
        &[
            "respawn delay (us)",
            "runtime (s)",
            "%cpu",
            "switchless",
            "fallback",
            "cancelled",
            "respawns",
        ],
    );
    let mut emit = |label: String, r: &SimReport| {
        table.row(vec![
            label,
            f3(r.duration_secs()),
            f2(r.cpu_percent()),
            r.counters.switchless.to_string(),
            r.counters.fallback.to_string(),
            r.counters.cancelled.to_string(),
            r.fault_recovery.respawns.to_string(),
        ]);
    };
    let baseline = run_chaos(None, ops_per_caller, 500);
    emit("no faults".into(), &baseline);
    for &delay in respawn_delays {
        let r = run_chaos(Some(chaos_schedule(delay, 5_000)), ops_per_caller, 500);
        assert_eq!(
            r.counters.total_calls(),
            2 * ops_per_caller,
            "chaos must not lose calls"
        );
        let cycles_per_us = switchless_core::CpuSpec::paper_machine().freq_hz / 1_000_000;
        emit((delay / cycles_per_us).to_string(), &r);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn huge_rbf_hurts_oversubscribed_intel() {
        // 6 callers, 2 workers, LONG host calls (the paper's Take-away
        // 7 precondition): with the SDK default a blocked caller spins
        // through its queue wait and then serializes behind 2 workers;
        // with rbf=64 it falls back and runs the host call on its own
        // core in parallel.
        let small = run_rbf(64, 6, 2, 300, 200_000);
        let huge = run_rbf(20_000, 6, 2, 300, 200_000);
        assert!(
            huge.duration_cycles > small.duration_cycles,
            "rbf=20000 ({}) must be slower than rbf=64 ({})",
            huge.duration_cycles,
            small.duration_cycles
        );
    }

    #[test]
    fn zc_immediate_fallback_beats_intel_spin_when_oversubscribed() {
        let t = fallback_ablation(6, 1_500);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn mechanism_comparison_includes_all_four() {
        let t = mechanism_comparison(300);
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn tes_sweep_shows_switchless_value_grows_with_transition_cost() {
        let t = tes_sweep(400, &[3_500, 13_500, 50_000]);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn quantum_sweep_produces_grid() {
        let t = quantum_sweep(200, &[5, 10], &[50, 100]);
        assert_eq!(t.len(), 4);
    }
}
