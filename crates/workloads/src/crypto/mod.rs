//! OpenSSL-substitute workload: AES-256-CBC file encryption/decryption.
//!
//! The paper's §V-B benchmark runs two enclave threads: one reads
//! plaintext chunks from a file, encrypts them in the enclave and writes
//! ciphertext to another file; the other reads ciphertext and decrypts
//! it. All file accesses are `fopen`/`fread`/`fwrite`/`fclose` ocalls;
//! the crypto itself is in-enclave compute.
//!
//! Ciphertext files are framed: each chunk is stored as a little-endian
//! `u32` length followed by the CBC ciphertext, with the IV chained
//! across chunks (the last ciphertext block of chunk *k* is the IV of
//! chunk *k+1*).

pub mod aes;
pub mod cbc;

pub use aes::{Aes256, BLOCK, KEY_SIZE};
pub use cbc::CbcError;

use crate::efile::{EnclaveIo, IoError};
use sgx_sim::hostfs::OpenMode;

/// Errors from the file pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PipelineError {
    /// File I/O failed.
    Io(IoError),
    /// Ciphertext was malformed.
    Cbc(CbcError),
    /// A ciphertext frame header was truncated or absurd.
    BadFrame,
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::Io(e) => write!(f, "pipeline i/o error: {e}"),
            PipelineError::Cbc(e) => write!(f, "pipeline cipher error: {e}"),
            PipelineError::BadFrame => write!(f, "malformed ciphertext frame"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<IoError> for PipelineError {
    fn from(e: IoError) -> Self {
        PipelineError::Io(e)
    }
}

impl From<CbcError> for PipelineError {
    fn from(e: CbcError) -> Self {
        PipelineError::Cbc(e)
    }
}

/// Encrypt `src` into framed ciphertext at `dst`, reading `chunk_bytes`
/// of plaintext per ocall. Returns `(plaintext_bytes, ciphertext_bytes)`.
///
/// # Errors
///
/// [`PipelineError::Io`] on file errors.
pub fn encrypt_file(
    io: &EnclaveIo<'_>,
    aes: &Aes256,
    iv: &[u8; BLOCK],
    src: &str,
    dst: &str,
    chunk_bytes: usize,
) -> Result<(u64, u64), PipelineError> {
    assert!(chunk_bytes > 0, "chunk size must be positive");
    let in_fd = io.open(src, OpenMode::Read)?;
    let out_fd = io.open(dst, OpenMode::Write)?;
    let mut iv = *iv;
    let mut buf = Vec::new();
    let (mut total_in, mut total_out) = (0u64, 0u64);
    loop {
        let n = io.read(in_fd, chunk_bytes, &mut buf)?;
        if n == 0 {
            break;
        }
        total_in += n as u64;
        let ct = cbc::encrypt(aes, &iv, &buf[..n]);
        // Chain the IV: last ciphertext block of this chunk.
        iv.copy_from_slice(&ct[ct.len() - BLOCK..]);
        let mut frame = Vec::with_capacity(4 + ct.len());
        frame.extend_from_slice(&(ct.len() as u32).to_le_bytes());
        frame.extend_from_slice(&ct);
        io.write(out_fd, &frame)?;
        total_out += frame.len() as u64;
    }
    io.close(in_fd)?;
    io.close(out_fd)?;
    Ok((total_in, total_out))
}

/// Decrypt framed ciphertext at `src` into `dst`. Returns
/// `(ciphertext_bytes, plaintext_bytes)`.
///
/// # Errors
///
/// [`PipelineError::BadFrame`] / [`PipelineError::Cbc`] on malformed
/// input, [`PipelineError::Io`] on file errors.
pub fn decrypt_file(
    io: &EnclaveIo<'_>,
    aes: &Aes256,
    iv: &[u8; BLOCK],
    src: &str,
    dst: &str,
) -> Result<(u64, u64), PipelineError> {
    let in_fd = io.open(src, OpenMode::Read)?;
    let out_fd = io.open(dst, OpenMode::Write)?;
    let mut iv = *iv;
    let mut hdr = Vec::new();
    let mut ct = Vec::new();
    let (mut total_in, mut total_out) = (0u64, 0u64);
    loop {
        let n = io.read(in_fd, 4, &mut hdr)?;
        if n == 0 {
            break;
        }
        if n != 4 {
            return Err(PipelineError::BadFrame);
        }
        let len = u32::from_le_bytes(hdr[..4].try_into().expect("4 bytes")) as usize;
        if len == 0 || !len.is_multiple_of(BLOCK) || len > 1 << 30 {
            return Err(PipelineError::BadFrame);
        }
        io.read_exact(in_fd, len, &mut ct)
            .map_err(|_| PipelineError::BadFrame)?;
        total_in += 4 + len as u64;
        let pt = cbc::decrypt(aes, &iv, &ct)?;
        iv.copy_from_slice(&ct[ct.len() - BLOCK..]);
        io.write(out_fd, &pt)?;
        total_out += pt.len() as u64;
    }
    io.close(in_fd)?;
    io.close(out_fd)?;
    Ok((total_in, total_out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::efile::regular_fixture;

    fn key() -> [u8; KEY_SIZE] {
        let mut k = [0u8; KEY_SIZE];
        for (i, b) in k.iter_mut().enumerate() {
            *b = (i * 13 + 7) as u8;
        }
        k
    }

    #[test]
    fn encrypt_then_decrypt_restores_the_file() {
        let (fs, disp, funcs) = regular_fixture();
        let io = EnclaveIo::new(&disp, funcs);
        let plaintext: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        fs.put_file("/plain", plaintext.clone());
        let aes = Aes256::new(&key());
        let iv = [7u8; BLOCK];

        let (pin, pout) = encrypt_file(&io, &aes, &iv, "/plain", "/cipher", 1024).unwrap();
        assert_eq!(pin, 10_000);
        assert!(pout > pin, "framing + padding add bytes");
        assert_ne!(fs.file_contents("/cipher").unwrap()[..32], plaintext[..32]);

        let (cin, cout) = decrypt_file(&io, &aes, &iv, "/cipher", "/restored").unwrap();
        assert_eq!(cin, pout);
        assert_eq!(cout, 10_000);
        assert_eq!(fs.file_contents("/restored").unwrap(), plaintext);
    }

    #[test]
    fn empty_file_round_trips() {
        let (fs, disp, funcs) = regular_fixture();
        let io = EnclaveIo::new(&disp, funcs);
        fs.put_file("/plain", Vec::new());
        let aes = Aes256::new(&key());
        let iv = [0u8; BLOCK];
        let (pin, pout) = encrypt_file(&io, &aes, &iv, "/plain", "/cipher", 256).unwrap();
        assert_eq!((pin, pout), (0, 0));
        let (cin, cout) = decrypt_file(&io, &aes, &iv, "/cipher", "/restored").unwrap();
        assert_eq!((cin, cout), (0, 0));
        assert_eq!(fs.file_contents("/restored").unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn wrong_key_fails_or_differs() {
        let (fs, disp, funcs) = regular_fixture();
        let io = EnclaveIo::new(&disp, funcs);
        fs.put_file("/plain", vec![42u8; 500]);
        let iv = [0u8; BLOCK];
        encrypt_file(&io, &Aes256::new(&key()), &iv, "/plain", "/cipher", 128).unwrap();
        let mut k2 = key();
        k2[0] ^= 1;
        match decrypt_file(&io, &Aes256::new(&k2), &iv, "/cipher", "/restored") {
            Err(PipelineError::Cbc(_)) => {}
            Ok(_) => {
                assert_ne!(fs.file_contents("/restored").unwrap(), vec![42u8; 500]);
            }
            Err(e) => panic!("unexpected error {e:?}"),
        }
    }

    #[test]
    fn corrupt_frame_is_rejected() {
        let (fs, disp, funcs) = regular_fixture();
        let io = EnclaveIo::new(&disp, funcs);
        fs.put_file("/cipher", vec![0xff, 0xff, 0xff, 0x7f, 1, 2, 3]);
        let err =
            decrypt_file(&io, &Aes256::new(&key()), &[0u8; BLOCK], "/cipher", "/out").unwrap_err();
        assert_eq!(err, PipelineError::BadFrame);
    }

    #[test]
    fn ocall_mix_is_read_write_heavy() {
        // §V-B: fread/fwrite are called orders of magnitude more often
        // than fopen/fclose.
        let (fs, disp, funcs) = regular_fixture();
        let io = EnclaveIo::new(&disp, funcs);
        fs.put_file("/plain", vec![1u8; 64 * 1024]);
        let aes = Aes256::new(&key());
        let iv = [0u8; BLOCK];
        encrypt_file(&io, &aes, &iv, "/plain", "/cipher", 512).unwrap();
        let (reads, writes, _) = fs.op_counts();
        // 128 chunks of 512 B: >128 reads and 128 writes vs 2 opens.
        assert!(reads >= 128);
        assert!(writes >= 128);
    }
}
