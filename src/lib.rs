//! Umbrella crate for the ZC-SWITCHLESS reproduction.
//!
//! Re-exports the workspace crates under one roof so the examples and
//! integration tests read naturally. See the individual crates for the
//! real APIs:
//!
//! * [`zc_switchless`] — the paper's contribution: adaptive switchless
//!   ocalls (real threads).
//! * [`intel_switchless`] — the Intel SDK switchless baseline.
//! * [`sgx_sim`] — the simulated SGX machine (costs, memory, tlibc,
//!   host filesystem).
//! * [`switchless_core`] — shared vocabulary (requests, states, policy).
//! * [`zc_des`] — the deterministic multi-core simulator behind the
//!   figure reproductions.
//! * [`zc_workloads`] — kissdb, AES-256-CBC file crypto, lmbench
//!   drivers, synthetic benchmarks.

pub use intel_switchless;
pub use sgx_sim;
pub use switchless_core;
pub use zc_des;
pub use zc_switchless;
pub use zc_telemetry;
pub use zc_workloads;
