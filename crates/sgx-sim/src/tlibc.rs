//! Trusted-libc model: Intel's vanilla `memcpy` versus the paper's
//! optimised copy (§IV-F).
//!
//! Intel's tlibc `memcpy` copies *word-by-word* when source and
//! destination are congruent modulo 8, and *byte-by-byte* otherwise —
//! which is why unaligned ocall buffers plateau around 0.4 GB/s in the
//! paper's Fig. 7. The paper's fix uses the hardware copy instruction
//! `rep movsb` (Intel optimisation manual §3.7.6.1).
//!
//! We reproduce both behaviours:
//!
//! * [`memcpy_vanilla`] mirrors tlibc's structure. The inner loops use
//!   `read_volatile`/`write_volatile` so LLVM cannot rewrite them into
//!   SIMD/`memcpy` — exactly one load+store per iteration, like the
//!   original compiled C.
//! * [`memcpy_zc`] delegates to `ptr::copy_nonoverlapping`, which lowers
//!   to the platform's optimal copy (`rep movsb` / SIMD) — the same
//!   effect as the paper's Listing 1.

use serde::{Deserialize, Serialize};

/// Which `memcpy` implementation crosses the enclave boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum MemcpyKind {
    /// Intel tlibc behaviour: word copy if `src ≡ dst (mod 8)`, byte copy
    /// otherwise.
    Vanilla,
    /// ZC-SWITCHLESS optimised copy (`rep movsb`-equivalent).
    #[default]
    Zc,
}

impl MemcpyKind {
    /// Copy `src` into `dst` using this implementation.
    ///
    /// # Panics
    ///
    /// Panics if `dst.len() != src.len()`.
    pub fn copy(self, dst: &mut [u8], src: &[u8]) {
        match self {
            MemcpyKind::Vanilla => memcpy_vanilla(dst, src),
            MemcpyKind::Zc => memcpy_zc(dst, src),
        }
    }
}

/// Intel tlibc-style `memcpy`: word-by-word for congruent buffers,
/// byte-by-byte otherwise.
///
/// # Panics
///
/// Panics if `dst.len() != src.len()`.
pub fn memcpy_vanilla(dst: &mut [u8], src: &[u8]) {
    assert_eq!(
        dst.len(),
        src.len(),
        "memcpy length mismatch: dst {} vs src {}",
        dst.len(),
        src.len()
    );
    let n = src.len();
    if n == 0 {
        return;
    }
    let d = dst.as_mut_ptr();
    let s = src.as_ptr();
    // tlibc: word copy only possible when both pointers can be aligned to
    // the word size simultaneously, i.e. congruent mod 8.
    if (d as usize) % 8 == (s as usize) % 8 {
        unsafe { copy_congruent_words(d, s, n) }
    } else {
        unsafe { copy_bytes_volatile(d, s, n) }
    }
}

/// Word-by-word volatile copy for congruent pointers: byte prefix up to
/// the first 8-byte boundary, `u64` body, byte tail.
///
/// # Safety
///
/// `d` and `s` must be valid for `n` bytes and non-overlapping, with
/// `d % 8 == s % 8`.
unsafe fn copy_congruent_words(d: *mut u8, s: *const u8, n: usize) {
    let mut i = 0usize;
    let misalign = (s as usize) % 8;
    if misalign != 0 {
        let prefix = (8 - misalign).min(n);
        while i < prefix {
            d.add(i).write_volatile(s.add(i).read_volatile());
            i += 1;
        }
    }
    while i + 8 <= n {
        let w = (s.add(i) as *const u64).read_volatile();
        (d.add(i) as *mut u64).write_volatile(w);
        i += 8;
    }
    while i < n {
        d.add(i).write_volatile(s.add(i).read_volatile());
        i += 1;
    }
}

/// Byte-by-byte volatile copy (the tlibc unaligned slow path).
///
/// # Safety
///
/// `d` and `s` must be valid for `n` bytes and non-overlapping.
unsafe fn copy_bytes_volatile(d: *mut u8, s: *const u8, n: usize) {
    for i in 0..n {
        d.add(i).write_volatile(s.add(i).read_volatile());
    }
}

/// ZC-SWITCHLESS optimised `memcpy`: hardware copy, alignment-oblivious.
///
/// # Panics
///
/// Panics if `dst.len() != src.len()`.
pub fn memcpy_zc(dst: &mut [u8], src: &[u8]) {
    assert_eq!(
        dst.len(),
        src.len(),
        "memcpy length mismatch: dst {} vs src {}",
        dst.len(),
        src.len()
    );
    // Slices never overlap (&mut aliasing rules), so the nonoverlapping
    // intrinsic — which lowers to rep movsb / SIMD — is sound.
    unsafe {
        std::ptr::copy_nonoverlapping(src.as_ptr(), dst.as_mut_ptr(), src.len());
    }
}

/// tlibc-style `memset` (volatile byte stores, mirroring the SDK's
/// non-vectorised loop).
pub fn memset_vanilla(dst: &mut [u8], value: u8) {
    let d = dst.as_mut_ptr();
    for i in 0..dst.len() {
        unsafe { d.add(i).write_volatile(value) };
    }
}

/// Optimised `memset` (`rep stosb`-equivalent via the write intrinsic).
pub fn memset_zc(dst: &mut [u8], value: u8) {
    unsafe { std::ptr::write_bytes(dst.as_mut_ptr(), value, dst.len()) };
}

/// tlibc-style `memcmp`: byte-by-byte volatile compare (no SIMD), early
/// exit on the first difference. Returns `<0`, `0` or `>0` like C.
#[must_use]
pub fn memcmp_vanilla(a: &[u8], b: &[u8]) -> i32 {
    let n = a.len().min(b.len());
    let (pa, pb) = (a.as_ptr(), b.as_ptr());
    for i in 0..n {
        let (x, y) = unsafe { (pa.add(i).read_volatile(), pb.add(i).read_volatile()) };
        if x != y {
            return i32::from(x) - i32::from(y);
        }
    }
    // C memcmp compares exactly n bytes; for the slice API we order by
    // length when the common prefix matches.
    (a.len() as i64 - b.len() as i64).clamp(-1, 1) as i32
}

/// Optimised `memcmp` (the compiler's vectorised slice comparison).
#[must_use]
pub fn memcmp_zc(a: &[u8], b: &[u8]) -> i32 {
    match a.cmp(b) {
        std::cmp::Ordering::Less => -1,
        std::cmp::Ordering::Equal => 0,
        std::cmp::Ordering::Greater => 1,
    }
}

/// tlibc-style `memmove`: byte-by-byte volatile copy choosing direction
/// by overlap, for a single buffer with potentially overlapping `src`
/// and `dst` ranges.
///
/// # Panics
///
/// Panics if either range exceeds the buffer.
pub fn memmove_vanilla(buf: &mut [u8], src: usize, dst: usize, len: usize) {
    assert!(
        src + len <= buf.len() && dst + len <= buf.len(),
        "memmove out of range"
    );
    let p = buf.as_mut_ptr();
    unsafe {
        if dst < src {
            for i in 0..len {
                p.add(dst + i)
                    .write_volatile(p.add(src + i).read_volatile());
            }
        } else {
            for i in (0..len).rev() {
                p.add(dst + i)
                    .write_volatile(p.add(src + i).read_volatile());
            }
        }
    }
}

/// Optimised `memmove` (`ptr::copy`, overlap-safe).
///
/// # Panics
///
/// Panics if either range exceeds the buffer.
pub fn memmove_zc(buf: &mut [u8], src: usize, dst: usize, len: usize) {
    assert!(
        src + len <= buf.len() && dst + len <= buf.len(),
        "memmove out of range"
    );
    unsafe { std::ptr::copy(buf.as_ptr().add(src), buf.as_mut_ptr().add(dst), len) };
}

/// tlibc-style `strlen` over a NUL-terminated buffer (volatile byte
/// scan). Returns the index of the first NUL, or `buf.len()`.
#[must_use]
pub fn strlen_vanilla(buf: &[u8]) -> usize {
    let p = buf.as_ptr();
    for i in 0..buf.len() {
        if unsafe { p.add(i).read_volatile() } == 0 {
            return i;
        }
    }
    buf.len()
}

/// Optimised `strlen` (the vectorised iterator search).
#[must_use]
pub fn strlen_zc(buf: &[u8]) -> usize {
    buf.iter().position(|&b| b == 0).unwrap_or(buf.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern(n: usize) -> Vec<u8> {
        (0..n).map(|i| (i * 31 + 7) as u8).collect()
    }

    /// Build `(dst, src)` pairs with controlled `mod 8` phases inside
    /// over-allocated buffers.
    fn with_phases(n: usize, dphase: usize, sphase: usize, f: impl FnOnce(&mut [u8], &[u8])) {
        let src_buf = {
            let mut b = vec![0u8; n + 16];
            let off = (8 - (b.as_ptr() as usize) % 8) % 8 + sphase;
            b[off..off + n].copy_from_slice(&pattern(n));
            (b, off)
        };
        let mut dst_buf = vec![0u8; n + 16];
        let doff = (8 - (dst_buf.as_ptr() as usize) % 8) % 8 + dphase;
        let (sb, soff) = src_buf;
        let src = &sb[soff..soff + n];
        f(&mut dst_buf[doff..doff + n], src);
        assert_eq!(&dst_buf[doff..doff + n], src, "copy corrupted data");
    }

    #[test]
    fn vanilla_congruent_copies_correctly() {
        for n in [0, 1, 7, 8, 9, 63, 64, 65, 1000] {
            for phase in 0..8 {
                with_phases(n, phase, phase, memcpy_vanilla);
            }
        }
    }

    #[test]
    fn vanilla_incongruent_copies_correctly() {
        for n in [1, 8, 17, 255, 1024] {
            with_phases(n, 0, 3, memcpy_vanilla);
            with_phases(n, 5, 2, memcpy_vanilla);
        }
    }

    #[test]
    fn zc_copies_correctly_any_alignment() {
        for n in [0, 1, 9, 4096] {
            for (dp, sp) in [(0, 0), (1, 5), (3, 3), (7, 0)] {
                with_phases(n, dp, sp, memcpy_zc);
            }
        }
    }

    #[test]
    fn kind_dispatch() {
        let src = pattern(100);
        let mut d1 = vec![0u8; 100];
        let mut d2 = vec![0u8; 100];
        MemcpyKind::Vanilla.copy(&mut d1, &src);
        MemcpyKind::Zc.copy(&mut d2, &src);
        assert_eq!(d1, src);
        assert_eq!(d2, src);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn vanilla_length_mismatch_panics() {
        memcpy_vanilla(&mut [0u8; 2], &[1u8; 3]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn zc_length_mismatch_panics() {
        memcpy_zc(&mut [0u8; 4], &[1u8; 3]);
    }

    #[test]
    fn memset_fills() {
        let mut b = vec![0u8; 37];
        memset_vanilla(&mut b, 0xAB);
        assert!(b.iter().all(|&x| x == 0xAB));
        memset_vanilla(&mut [], 1); // empty is fine
    }

    #[test]
    fn default_kind_is_zc() {
        assert_eq!(MemcpyKind::default(), MemcpyKind::Zc);
    }

    #[test]
    fn memset_variants_agree() {
        let mut a = vec![1u8; 100];
        let mut b = vec![2u8; 100];
        memset_vanilla(&mut a, 0x5A);
        memset_zc(&mut b, 0x5A);
        assert_eq!(a, b);
    }

    #[test]
    fn memcmp_variants_agree() {
        let cases: [(&[u8], &[u8]); 6] = [
            (b"abc", b"abc"),
            (b"abc", b"abd"),
            (b"abd", b"abc"),
            (b"ab", b"abc"),
            (b"abc", b"ab"),
            (b"", b""),
        ];
        for (a, b) in cases {
            assert_eq!(
                memcmp_vanilla(a, b).signum(),
                memcmp_zc(a, b).signum(),
                "memcmp({a:?}, {b:?})"
            );
        }
    }

    #[test]
    fn memmove_variants_agree_on_overlap() {
        for (src, dst, len) in [(0usize, 4usize, 8usize), (4, 0, 8), (2, 3, 6), (3, 2, 6)] {
            let base: Vec<u8> = (0..16).collect();
            let mut a = base.clone();
            let mut b = base.clone();
            memmove_vanilla(&mut a, src, dst, len);
            memmove_zc(&mut b, src, dst, len);
            assert_eq!(a, b, "memmove src={src} dst={dst} len={len}");
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn memmove_bounds_checked() {
        memmove_vanilla(&mut [0u8; 4], 2, 0, 4);
    }

    #[test]
    fn strlen_variants_agree() {
        assert_eq!(strlen_vanilla(b"hello\0world"), 5);
        assert_eq!(strlen_zc(b"hello\0world"), 5);
        assert_eq!(strlen_vanilla(b"no nul"), 6);
        assert_eq!(strlen_zc(b"no nul"), 6);
        assert_eq!(strlen_vanilla(b""), 0);
        assert_eq!(strlen_zc(b""), 0);
    }
}
