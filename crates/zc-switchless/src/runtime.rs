//! Public API of the ZC-SWITCHLESS runtime.

use crate::buffer::{SchedCommand, WorkerBuffer};
use crate::{caller, scheduler, supervise, worker};
use parking_lot::{Mutex, RwLock};
use sgx_sim::{CpuAccounting, CycleClock, Enclave, MemcpyKind, RegularOcall};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use switchless_core::stats::WorkerResidency;
use switchless_core::{
    CallPath, CallStats, DrainReport, FaultInjector, OcallDispatcher, OcallRequest, OcallTable,
    OverloadPlane, OverloadSnapshot, RecoveryPlane, RecoverySnapshot, Supervisor, SwitchlessError,
    TransitionLog, ZcConfig,
};

/// Busy-wait loops yield to the OS scheduler after this many pauses
/// (keeps the protocol live when the host has fewer cores than the
/// modelled machine; a no-op cost-wise on idle multicore hosts).
pub const YIELD_EVERY: u32 = 64;

/// State shared between callers, workers, the scheduler and the
/// supervisor.
///
/// Worker slots hold swappable `Arc<WorkerBuffer>`s: the supervisor
/// *respawns* a failed slot by installing a fresh buffer (and thread)
/// while the poisoned old buffer stays with whatever thread still
/// references it.
#[derive(Debug)]
pub(crate) struct Shared {
    pub(crate) config: ZcConfig,
    pub(crate) table: Arc<OcallTable>,
    pub(crate) workers: Vec<RwLock<Arc<WorkerBuffer>>>,
    pub(crate) fallback: RegularOcall,
    pub(crate) enclave: Enclave,
    pub(crate) stats: Arc<CallStats>,
    pub(crate) clock: CycleClock,
    pub(crate) memcpy: MemcpyKind,
    pub(crate) running: AtomicBool,
    pub(crate) active_workers: AtomicUsize,
    /// Externally imposed ceiling on the scheduler's worker count
    /// (fleet bulkhead): the scheduler clamps every step to this cap, so
    /// a fleet allocator can shrink or grow a shard's share of the
    /// global budget without touching the shard's own argmin policy.
    /// Takes effect at the next scheduler step (≤ one quantum).
    pub(crate) worker_cap: AtomicUsize,
    pub(crate) decisions: AtomicU64,
    /// Latest completed configuration-phase decision, kept so an
    /// external allocator can read the per-worker-count fallback probes
    /// (`F_i`) this shard measured, without requiring telemetry.
    pub(crate) last_decision: Mutex<Option<switchless_core::policy::DecisionRecord>>,
    pub(crate) rotor: AtomicUsize,
    /// Monotonic per-call sequence source: every switchless attempt is
    /// stamped with a fresh tag so the guard can reject stale/replayed
    /// replies.
    pub(crate) seq: AtomicU64,
    pub(crate) residency: Mutex<WorkerResidency>,
    pub(crate) accounting: Option<Arc<CpuAccounting>>,
    pub(crate) faults: Option<Arc<FaultInjector>>,
    /// Self-healing policy state; `Some` iff `config.supervise` is set.
    pub(crate) supervisor: Option<Mutex<Supervisor>>,
    /// Overload-control plane; `Some` iff `config.overload` is set.
    /// Callers funnel admission through it and drive its breaker at
    /// their would-fallback points (see `caller`).
    pub(crate) overload: Option<OverloadPlane>,
    /// Enclave-restart recovery plane; `Some` iff `config.recovery` is
    /// set. Sequence tags then come from the plane, so journal entries
    /// and reply guards agree on the same tag space (see `caller`).
    pub(crate) recovery: Option<RecoveryPlane>,
    /// Raised by callers when the supervisor policy escalates from slot
    /// respawn to a whole-enclave restart; consumed by the supervisor
    /// thread, which performs the restart.
    pub(crate) pending_enclave_restart: AtomicBool,
    /// Monotonic enclave incarnation, used as the worker-thread
    /// generation tag for post-restart spawns.
    pub(crate) enclave_generation: AtomicU64,
    /// TransitionLog attached via `install_transition_log`, kept so
    /// respawned buffers inherit the same recorder.
    pub(crate) transition_log: Mutex<Option<Arc<TransitionLog>>>,
    /// Worker thread handles, tagged with their slot index. Shared with
    /// the supervisor thread, which pushes respawned generations.
    pub(crate) worker_handles: Mutex<Vec<(usize, JoinHandle<()>)>>,
    #[cfg(feature = "telemetry")]
    pub(crate) telemetry: Option<Arc<zc_telemetry::Telemetry>>,
}

impl Shared {
    /// Current buffer of worker slot `i` (respawns swap it).
    #[inline]
    pub(crate) fn worker(&self, i: usize) -> Arc<WorkerBuffer> {
        Arc::clone(&self.workers[i].read())
    }

    /// Next per-call sequence tag (starts at 1, so the zero a fresh
    /// reply struct carries never matches a live call). With recovery
    /// on, the plane owns the counter so journal entries share it.
    #[inline]
    pub(crate) fn next_seq(&self) -> u64 {
        match &self.recovery {
            Some(plane) => plane.next_seq(),
            None => self.seq.fetch_add(1, Ordering::Relaxed).wrapping_add(1),
        }
    }

    /// Spawn a worker thread for slot `index` serving buffer `buf`
    /// (generation 0 at startup, >0 for supervisor respawns).
    pub(crate) fn spawn_worker(
        self: &Arc<Self>,
        index: usize,
        generation: u64,
        buf: Arc<WorkerBuffer>,
    ) {
        let sh = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name(format!("zc-worker-{index}-g{generation}"))
            .spawn(move || worker::worker_loop(&sh, index, &buf))
            .expect("failed to spawn zc worker");
        self.worker_handles.lock().push((index, handle));
    }
}

#[cfg(feature = "telemetry")]
impl Shared {
    /// Record one event stamped with the runtime clock, attributed to
    /// the calling (enclave application) thread. One branch when no hub
    /// is installed; the clock is only read when one is.
    #[inline]
    pub(crate) fn telemetry_caller_event(&self, event: zc_telemetry::Event) {
        if let Some(t) = &self.telemetry {
            t.record(self.clock.now_cycles(), t.caller_origin(), event);
        }
    }

    /// Record one event stamped with the runtime clock from an explicit
    /// origin (worker / scheduler).
    #[inline]
    pub(crate) fn telemetry_event(&self, origin: zc_telemetry::Origin, event: zc_telemetry::Event) {
        if let Some(t) = &self.telemetry {
            t.record(self.clock.now_cycles(), origin, event);
        }
    }
}

/// Whole-enclave restart, driven by the one thread that won the loss
/// detection race (`RecoveryPlane::begin_crash`).
///
/// Fence first: every buffer of the dead incarnation is poisoned and
/// told to exit, so no old-generation worker can touch a request again
/// (crashed threads have already exited; stalled ones retire on wake
/// and are joined — or abandoned — at shutdown). The restart cost is
/// then paid on the clock, a fresh buffer + thread generation is
/// installed, the supervisor's per-slot ledgers are wiped (the
/// blacklist deliberately survives — poison request shapes outlive the
/// enclave), and the plane reopens under a new epoch. Blocked callers
/// observe the epoch change and reconcile their own calls against the
/// journal (see `caller::recover_call`).
pub(crate) fn enclave_restart(shared: &Arc<Shared>) {
    let plane = shared
        .recovery
        .as_ref()
        .expect("enclave restart without a recovery plane");
    for w in &shared.workers {
        let w = w.read();
        w.poison();
        w.post_command(SchedCommand::Exit);
        w.unpark();
    }
    plane.begin_restart();
    shared
        .clock
        .advance_cycles(plane.params().restart_cycles.max(1));
    let generation = shared.enclave_generation.fetch_add(1, Ordering::AcqRel) + 1;
    for (i, slot) in shared.workers.iter().enumerate() {
        let fresh = Arc::new(WorkerBuffer::new(shared.config.pool_bytes));
        if let Some(log) = shared.transition_log.lock().clone() {
            fresh.set_recorder(log);
        }
        #[cfg(feature = "telemetry")]
        if let Some(hub) = &shared.telemetry {
            fresh.set_tracer(crate::buffer::TransitionTracer::new(
                Arc::clone(hub),
                shared.clock.clone(),
                i as u32,
            ));
        }
        *slot.write() = Arc::clone(&fresh);
        shared.spawn_worker(i, generation, fresh);
    }
    scheduler::set_active_workers(shared, shared.active_workers.load(Ordering::Acquire));
    if let Some(sup) = &shared.supervisor {
        sup.lock().note_enclave_restart();
    }
    plane.complete_restart();
    plane.resume();
}

/// The ZC-SWITCHLESS runtime: adaptive switchless ocalls with zero
/// workload-specific configuration.
///
/// Start with [`ZcRuntime::start`]; issue calls through the
/// [`OcallDispatcher`] impl from any number of enclave threads; the
/// embedded scheduler resizes the worker pool every quantum. Threads are
/// joined on [`shutdown`](ZcRuntime::shutdown) or drop.
#[derive(Debug)]
pub struct ZcRuntime {
    shared: Arc<Shared>,
    scheduler_handle: Mutex<Option<JoinHandle<()>>>,
    supervisor_handle: Mutex<Option<JoinHandle<()>>>,
}

impl ZcRuntime {
    /// Start the runtime: spawns `config.max_workers()` worker threads
    /// (the scheduler activates `config.initial_workers` of them) plus
    /// the scheduler thread.
    ///
    /// # Errors
    ///
    /// Returns [`SwitchlessError::InvalidConfig`] if the machine model
    /// yields zero maximum workers.
    pub fn start(
        config: ZcConfig,
        table: Arc<OcallTable>,
        enclave: Enclave,
    ) -> Result<Self, SwitchlessError> {
        Self::start_with_accounting(config, table, enclave, None)
    }

    /// Start a runtime serving **switchless ecalls**: the symmetric
    /// host→enclave case the paper notes its techniques apply to equally
    /// (§II). Workers model *trusted* threads inside the enclave serving
    /// requests posted by untrusted callers; the fallback path pays a
    /// regular ecall transition.
    ///
    /// # Errors
    ///
    /// Same conditions as [`start`](ZcRuntime::start).
    pub fn start_ecalls(
        config: ZcConfig,
        table: Arc<OcallTable>,
        enclave: Enclave,
    ) -> Result<Self, SwitchlessError> {
        Self::start_inner(
            config,
            table,
            enclave,
            None,
            true,
            None,
            #[cfg(feature = "telemetry")]
            None,
        )
    }

    /// [`start`](ZcRuntime::start) with a telemetry hub: the scheduler
    /// traces phase starts and argmin decisions (with their `F_i`/`U_i`
    /// inputs), workers trace state-machine edges and faults, callers
    /// trace routed-call spans and pool reallocations, and the runtime
    /// registers a metrics collector publishing its [`CallStats`],
    /// residency and scheduler gauges into the hub's registry.
    ///
    /// `faults` may additionally inject deterministic faults (as in
    /// [`start_with_faults`](ZcRuntime::start_with_faults)); injections
    /// are traced as fault events.
    ///
    /// # Errors
    ///
    /// Same conditions as [`start`](ZcRuntime::start).
    #[cfg(feature = "telemetry")]
    pub fn start_with_telemetry(
        config: ZcConfig,
        table: Arc<OcallTable>,
        enclave: Enclave,
        telemetry: Arc<zc_telemetry::Telemetry>,
        faults: Option<Arc<FaultInjector>>,
    ) -> Result<Self, SwitchlessError> {
        Self::start_inner(config, table, enclave, None, false, faults, Some(telemetry))
    }

    /// [`start`](ZcRuntime::start) with a [`FaultInjector`]: workers,
    /// callers and the fallback engine consult `faults` at their
    /// instrumented sites, exercising the graceful-degradation paths
    /// (poisoned-worker quarantine, pool-exhaustion retry, transition
    /// retry, drain-with-timeout).
    ///
    /// # Errors
    ///
    /// Same conditions as [`start`](ZcRuntime::start).
    pub fn start_with_faults(
        config: ZcConfig,
        table: Arc<OcallTable>,
        enclave: Enclave,
        faults: Arc<FaultInjector>,
    ) -> Result<Self, SwitchlessError> {
        Self::start_inner(
            config,
            table,
            enclave,
            None,
            false,
            Some(faults),
            #[cfg(feature = "telemetry")]
            None,
        )
    }

    /// [`start`](ZcRuntime::start) with CPU accounting: workers and the
    /// scheduler register meters (busy while spinning/executing, idle
    /// while parked/sleeping).
    pub fn start_with_accounting(
        config: ZcConfig,
        table: Arc<OcallTable>,
        enclave: Enclave,
        accounting: Option<Arc<CpuAccounting>>,
    ) -> Result<Self, SwitchlessError> {
        Self::start_inner(
            config,
            table,
            enclave,
            accounting,
            false,
            None,
            #[cfg(feature = "telemetry")]
            None,
        )
    }

    fn start_inner(
        config: ZcConfig,
        table: Arc<OcallTable>,
        enclave: Enclave,
        accounting: Option<Arc<CpuAccounting>>,
        ecalls: bool,
        faults: Option<Arc<FaultInjector>>,
        #[cfg(feature = "telemetry")] telemetry: Option<Arc<zc_telemetry::Telemetry>>,
    ) -> Result<Self, SwitchlessError> {
        let max = config.max_workers();
        if max == 0 {
            return Err(SwitchlessError::InvalidConfig(
                "machine model yields zero maximum workers".into(),
            ));
        }
        let stats = Arc::new(CallStats::new());
        let mut fallback =
            RegularOcall::new(Arc::clone(&table), enclave.clone()).with_stats(Arc::clone(&stats));
        if ecalls {
            fallback = fallback.as_ecalls();
        }
        if let Some(f) = &faults {
            fallback = fallback.with_faults(Arc::clone(f));
        }
        let workers = (0..max)
            .map(|_| RwLock::new(Arc::new(WorkerBuffer::new(config.pool_bytes))))
            .collect();
        let shared = Arc::new(Shared {
            clock: enclave.clock(),
            workers,
            fallback,
            enclave,
            stats,
            table,
            memcpy: MemcpyKind::Zc,
            running: AtomicBool::new(true),
            active_workers: AtomicUsize::new(config.initial_workers.min(max)),
            worker_cap: AtomicUsize::new(max),
            decisions: AtomicU64::new(0),
            last_decision: Mutex::new(None),
            rotor: AtomicUsize::new(0),
            seq: AtomicU64::new(0),
            residency: Mutex::new(WorkerResidency::new(max)),
            accounting,
            faults,
            supervisor: config
                .supervise
                .map(|params| Mutex::new(Supervisor::new(max, params))),
            overload: config.overload.map(OverloadPlane::new),
            recovery: config.recovery.map(RecoveryPlane::new),
            pending_enclave_restart: AtomicBool::new(false),
            enclave_generation: AtomicU64::new(0),
            transition_log: Mutex::new(None),
            worker_handles: Mutex::new(Vec::with_capacity(max)),
            #[cfg(feature = "telemetry")]
            telemetry,
            config,
        });
        #[cfg(feature = "telemetry")]
        if let Some(hub) = &shared.telemetry {
            // Trace worker state-machine edges alongside any
            // TransitionLog recorder (the tracer sees edges made by
            // whichever thread performed the CAS, attributed to the
            // buffer's worker index).
            for (i, w) in shared.workers.iter().enumerate() {
                w.read().set_tracer(crate::buffer::TransitionTracer::new(
                    Arc::clone(hub),
                    shared.clock.clone(),
                    i as u32,
                ));
            }
            // One collector per runtime: publishes the CallStats block
            // from a single snapshot (no torn totals) plus scheduler
            // gauges into the hub's registry.
            let weak = Arc::downgrade(&shared);
            hub.metrics().register_collector(move || {
                use zc_telemetry::MetricValue;
                let Some(sh) = weak.upgrade() else {
                    return Vec::new();
                };
                let s = sh.stats.snapshot();
                let mean_milli = (sh.residency.lock().mean_workers() * 1000.0) as u64;
                let mut out = vec![
                    (
                        "zc_calls_total{path=\"switchless\"}".into(),
                        MetricValue::Counter(s.switchless),
                    ),
                    (
                        "zc_calls_total{path=\"fallback\"}".into(),
                        MetricValue::Counter(s.fallback),
                    ),
                    (
                        "zc_calls_total{path=\"regular\"}".into(),
                        MetricValue::Counter(s.regular),
                    ),
                    (
                        "zc_pool_reallocs_total".into(),
                        MetricValue::Counter(s.pool_reallocs),
                    ),
                    (
                        "zc_enclave_transitions_total".into(),
                        MetricValue::Counter(s.transitions()),
                    ),
                    (
                        "zc_scheduler_decisions_total".into(),
                        MetricValue::Counter(sh.decisions.load(Ordering::Acquire)),
                    ),
                    (
                        "zc_active_workers".into(),
                        MetricValue::Gauge(sh.active_workers.load(Ordering::Acquire) as u64),
                    ),
                    (
                        "zc_poisoned_workers".into(),
                        MetricValue::Gauge(
                            sh.workers.iter().filter(|w| w.read().is_poisoned()).count() as u64,
                        ),
                    ),
                    (
                        "zc_residency_mean_workers_milli".into(),
                        MetricValue::Gauge(mean_milli),
                    ),
                    (
                        "zc_calls_issued_total".into(),
                        MetricValue::Counter(s.issued),
                    ),
                    (
                        "zc_watchdog_cancels_total".into(),
                        MetricValue::Counter(s.cancelled),
                    ),
                    (
                        "zc_guard_violations_total".into(),
                        MetricValue::Counter(s.guard_violations),
                    ),
                    (
                        "zc_reply_truncations_total".into(),
                        MetricValue::Counter(s.reply_truncations),
                    ),
                ];
                if let Some(sup) = &sh.supervisor {
                    let sup = sup.lock();
                    out.push((
                        "zc_respawns_total".into(),
                        MetricValue::Counter(sup.respawns()),
                    ));
                    out.push(("zc_heals_total".into(), MetricValue::Counter(sup.heals())));
                    out.push((
                        "zc_blacklisted_funcs".into(),
                        MetricValue::Gauge(sup.blacklisted().len() as u64),
                    ));
                }
                if let Some(plane) = &sh.recovery {
                    let r = plane.snapshot();
                    out.push((
                        "zc_enclave_crashes_total".into(),
                        MetricValue::Counter(r.crashes),
                    ));
                    out.push((
                        "zc_journal_replays_total".into(),
                        MetricValue::Counter(r.replayed),
                    ));
                    out.push((
                        "zc_call_redeliveries_total".into(),
                        MetricValue::Counter(r.redelivered),
                    ));
                    out.push((
                        "zc_calls_refused_total".into(),
                        MetricValue::Counter(r.refused_non_idempotent),
                    ));
                    out.push(("zc_recovery_epoch".into(), MetricValue::Gauge(r.epoch)));
                }
                if let Some(plane) = &sh.overload {
                    let o = plane.snapshot();
                    out.push(("zc_offered_total".into(), MetricValue::Counter(o.offered)));
                    out.push(("zc_admitted_total".into(), MetricValue::Counter(o.admitted)));
                    for r in switchless_core::ShedReason::ALL {
                        out.push((
                            format!("zc_shed_total{{reason=\"{}\"}}", r.name()),
                            MetricValue::Counter(o.shed_for(r)),
                        ));
                    }
                    out.push((
                        "zc_breaker_state".into(),
                        MetricValue::Gauge(u64::from(o.breaker_state as u8)),
                    ));
                    out.push((
                        "zc_breaker_trips_total".into(),
                        MetricValue::Counter(o.breaker_trips),
                    ));
                    out.push((
                        "zc_brownout_level".into(),
                        MetricValue::Gauge(u64::from(o.brownout_level)),
                    ));
                    out.push(("zc_inflight_calls".into(), MetricValue::Gauge(o.inflight)));
                }
                out
            });
        }
        // Initial activation before any thread runs: first
        // `initial_workers` active, rest deactivated.
        scheduler::set_active_workers(&shared, shared.active_workers.load(Ordering::Relaxed));

        for i in 0..max {
            let buf = shared.worker(i);
            shared.spawn_worker(i, 0, buf);
        }
        let sh = Arc::clone(&shared);
        let scheduler_handle = std::thread::Builder::new()
            .name("zc-scheduler".into())
            .spawn(move || scheduler::scheduler_loop(&sh))
            .expect("failed to spawn zc scheduler");
        let supervisor_handle = shared.supervisor.is_some().then(|| {
            let sh = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("zc-supervisor".into())
                .spawn(move || supervise::supervise_loop(&sh))
                .expect("failed to spawn zc supervisor")
        });
        Ok(ZcRuntime {
            shared,
            scheduler_handle: Mutex::new(Some(scheduler_handle)),
            supervisor_handle: Mutex::new(supervisor_handle),
        })
    }

    /// Shared call statistics (switchless / fallback / pool reallocs).
    #[must_use]
    pub fn stats(&self) -> &Arc<CallStats> {
        &self.shared.stats
    }

    /// Configuration the runtime was started with.
    #[must_use]
    pub fn config(&self) -> &ZcConfig {
        &self.shared.config
    }

    /// The runtime's shared cycle clock (inherited from the enclave;
    /// virtual when the enclave was built with `Enclave::new_virtual`).
    #[must_use]
    pub fn clock(&self) -> CycleClock {
        self.shared.clock.clone()
    }

    /// Worker count chosen by the scheduler for the current step.
    #[must_use]
    pub fn active_workers(&self) -> usize {
        self.shared.active_workers.load(Ordering::Acquire)
    }

    /// Completed scheduler decisions (configuration phases).
    #[must_use]
    pub fn scheduler_decisions(&self) -> u64 {
        self.shared.decisions.load(Ordering::Acquire)
    }

    /// Latest completed configuration-phase decision, with its
    /// per-worker-count fallback probes (`F_i`) and costs. `None` until
    /// the first configuration phase completes. A fleet allocator reads
    /// this to weigh the shard's marginal benefit of extra workers.
    #[must_use]
    pub fn last_decision(&self) -> Option<switchless_core::policy::DecisionRecord> {
        self.shared.last_decision.lock().clone()
    }

    /// Impose a ceiling on the scheduler's worker count (fleet
    /// bulkhead). The cap is clamped to `1..=max_workers` and applied by
    /// the scheduler at its next step (≤ one quantum later); the
    /// shard-local argmin keeps running underneath and is free to pick
    /// fewer workers than the cap.
    pub fn set_worker_cap(&self, cap: usize) {
        let max = self.shared.config.max_workers();
        self.shared
            .worker_cap
            .store(cap.clamp(1, max), Ordering::Release);
    }

    /// The current externally imposed worker-count ceiling.
    #[must_use]
    pub fn worker_cap(&self) -> usize {
        self.shared.worker_cap.load(Ordering::Acquire)
    }

    /// Workers currently parked in the `Paused` state (quiesced: not
    /// spinning, holding no call). A fleet migration waits for a donor
    /// shard's worker count to drop — observed here — before crediting
    /// the freed budget to the receiving shard, so a moving worker never
    /// serves two shards at once.
    #[must_use]
    pub fn paused_workers(&self) -> usize {
        self.shared
            .workers
            .iter()
            .filter(|w| w.read().state() == Ok(switchless_core::WorkerState::Paused))
            .count()
    }

    /// Snapshot of the worker-count residency histogram (paper §V-B).
    #[must_use]
    pub fn residency(&self) -> WorkerResidency {
        self.shared.residency.lock().clone()
    }

    /// Attach a fresh [`TransitionLog`] to every worker buffer, recording
    /// each successful status transition from this point on (test
    /// instrumentation; first installation wins per worker).
    pub fn install_transition_log(&self) -> Arc<TransitionLog> {
        let log = Arc::new(TransitionLog::new());
        *self.shared.transition_log.lock() = Some(Arc::clone(&log));
        for w in &self.shared.workers {
            w.read().set_recorder(Arc::clone(&log));
        }
        log
    }

    /// Workers whose *current* buffer is quarantined (poisoned). With
    /// supervision on, this drops back to zero once failed slots have
    /// been respawned onto fresh buffers.
    #[must_use]
    pub fn poisoned_workers(&self) -> usize {
        self.shared
            .workers
            .iter()
            .filter(|w| w.read().is_poisoned())
            .count()
    }

    /// Snapshot of the supervisor's policy state (health ledger,
    /// blacklist, respawn/heal totals). `None` when supervision is off.
    #[must_use]
    pub fn supervisor_state(&self) -> Option<Supervisor> {
        self.shared.supervisor.as_ref().map(|s| s.lock().clone())
    }

    /// Snapshot of the overload plane's counters and machine states
    /// (offered/admitted/shed, breaker, brownout). `None` when overload
    /// control is off. Once traffic has quiesced the counters conserve
    /// exactly: `completed + shed_total == offered`.
    #[must_use]
    pub fn overload_snapshot(&self) -> Option<OverloadSnapshot> {
        self.shared.overload.as_ref().map(OverloadPlane::snapshot)
    }

    /// Snapshot of the recovery plane's counters and phase (crashes,
    /// replays, redeliveries, refused non-idempotent calls, journal
    /// occupancy). `None` when recovery is off. Once traffic has
    /// quiesced, `offered == completed + shed + refused_non_idempotent`
    /// holds exactly (see `OverloadSnapshot::conserves_with`).
    #[must_use]
    pub fn recovery_snapshot(&self) -> Option<RecoverySnapshot> {
        self.shared.recovery.as_ref().map(RecoveryPlane::snapshot)
    }

    /// Stop the scheduler and workers and join them. Idempotent; also
    /// runs on drop. In-flight calls complete first. Delegates to
    /// [`shutdown_with_timeout`](ZcRuntime::shutdown_with_timeout) with a
    /// generous drain budget, so even a wedged worker cannot hang
    /// shutdown forever.
    pub fn shutdown(&self) {
        let _ = self.shutdown_with_timeout(Duration::from_secs(30));
    }

    /// Stop the runtime, draining workers for at most `timeout` of
    /// modelled time. Workers still alive at the deadline (e.g. wedged by
    /// an injected hang) are *abandoned* — detached rather than joined —
    /// so shutdown always completes. On a virtual clock the deadline
    /// advances logically and no wall-clock time is slept.
    pub fn shutdown_with_timeout(&self, timeout: Duration) -> DrainReport {
        self.shared.running.store(false, Ordering::Release);
        if let Some(h) = self.scheduler_handle.lock().take() {
            let _ = h.join();
        }
        // Join the supervisor before posting Exit: no thread may respawn
        // a worker after the drain has started.
        if let Some(h) = self.supervisor_handle.lock().take() {
            let _ = h.join();
        }
        for w in &self.shared.workers {
            let w = w.read();
            w.post_command(SchedCommand::Exit);
            w.unpark();
        }
        let clock = &self.shared.clock;
        let deadline = clock
            .now_cycles()
            .saturating_add(clock.duration_to_cycles(timeout));
        let mut handles = self.shared.worker_handles.lock();
        let mut report = DrainReport::default();
        loop {
            let mut still_running = Vec::new();
            for (slot, h) in handles.drain(..) {
                if h.is_finished() {
                    let _ = h.join();
                    report.drained += 1;
                } else {
                    still_running.push((slot, h));
                }
            }
            if still_running.is_empty() {
                break;
            }
            if clock.now_cycles() >= deadline {
                report.abandoned = still_running.len();
                // A wedged worker is given up *loudly*: one event per
                // abandoned slot, then detach — dropping the handles
                // leaves the threads to die with the process instead of
                // wedging shutdown.
                for (_slot, _h) in &still_running {
                    #[cfg(feature = "telemetry")]
                    self.shared
                        .telemetry_caller_event(zc_telemetry::Event::WorkerAbandoned {
                            worker: *_slot as u32,
                        });
                }
                drop(still_running);
                break;
            }
            *handles = still_running;
            for w in &self.shared.workers {
                w.read().unpark();
            }
            clock.sleep(Duration::from_millis(1));
        }
        #[cfg(feature = "telemetry")]
        self.shared
            .telemetry_caller_event(zc_telemetry::Event::Drain {
                drained: report.drained as u64,
                abandoned: report.abandoned as u64,
            });
        report
    }
}

impl Drop for ZcRuntime {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl OcallDispatcher for ZcRuntime {
    fn dispatch(
        &self,
        req: &OcallRequest,
        payload_in: &[u8],
        payload_out: &mut Vec<u8>,
    ) -> Result<(i64, CallPath), SwitchlessError> {
        caller::dispatch(&self.shared, req, payload_in, payload_out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use switchless_core::{CpuSpec, FuncId, MAX_OCALL_ARGS};

    fn table() -> (Arc<OcallTable>, FuncId, FuncId) {
        let mut t = OcallTable::new();
        let echo = t.register(
            "echo",
            |_: &[u64; MAX_OCALL_ARGS], pin: &[u8], pout: &mut Vec<u8>| {
                pout.extend_from_slice(pin);
                pin.len() as i64
            },
        );
        let add = t.register(
            "add",
            |args: &[u64; MAX_OCALL_ARGS], _: &[u8], _: &mut Vec<u8>| (args[0] + args[1]) as i64,
        );
        (Arc::new(t), echo, add)
    }

    /// Small machine (2 workers max) with a fast quantum so scheduler
    /// activity is visible in short tests.
    fn test_config() -> ZcConfig {
        let mut cpu = CpuSpec::paper_machine();
        cpu.logical_cpus = 4; // max 2 workers
        ZcConfig::for_cpu(cpu)
            .with_quantum_ms(5)
            .with_initial_workers(1)
    }

    fn enclave(cfg: &ZcConfig) -> Enclave {
        Enclave::new(cfg.cpu)
    }

    #[test]
    fn calls_complete_correctly() {
        let (t, echo, add) = table();
        let cfg = test_config();
        let rt = ZcRuntime::start(cfg, t, enclave(&cfg)).unwrap();
        let mut out = Vec::new();
        for i in 0..30u64 {
            let payload = vec![i as u8; 32];
            let (ret, path) = rt
                .dispatch(&OcallRequest::new(echo, &[]), &payload, &mut out)
                .unwrap();
            assert_eq!(ret, 32);
            assert_eq!(out, payload);
            assert!(matches!(path, CallPath::Switchless | CallPath::Fallback));
            let (ret, _) = rt
                .dispatch(&OcallRequest::new(add, &[i, 1]), &[], &mut out)
                .unwrap();
            assert_eq!(ret, (i + 1) as i64);
        }
        let snap = rt.stats().snapshot();
        assert_eq!(snap.total_calls(), 60);
        assert_eq!(snap.regular, 0, "zc has no statically-regular path");
        rt.shutdown();
    }

    #[test]
    fn any_function_is_a_switchless_candidate() {
        // Unlike Intel, no function set is configured: with an active
        // worker available, calls go switchless.
        let (t, echo, _) = table();
        let cfg = test_config().with_quantum_ms(1000); // scheduler holds initial count
        let rt = ZcRuntime::start(cfg, t, enclave(&cfg)).unwrap();
        let mut out = Vec::new();
        let mut switchless = 0;
        for _ in 0..50 {
            let (_, path) = rt
                .dispatch(&OcallRequest::new(echo, &[]), b"p", &mut out)
                .unwrap();
            if path == CallPath::Switchless {
                switchless += 1;
            }
        }
        assert!(switchless > 0, "at least some calls must go switchless");
        rt.shutdown();
    }

    #[test]
    fn oversized_payload_falls_back() {
        let (t, echo, _) = table();
        let mut cfg = test_config();
        cfg = cfg.with_pool_bytes(256);
        let rt = ZcRuntime::start(cfg, t, enclave(&cfg)).unwrap();
        let big = vec![7u8; 1024];
        let mut out = Vec::new();
        let (ret, path) = rt
            .dispatch(&OcallRequest::new(echo, &[]), &big, &mut out)
            .unwrap();
        assert_eq!(ret, 1024);
        assert_eq!(out, big);
        assert_eq!(
            path,
            CallPath::Fallback,
            "payload larger than pool must fall back"
        );
        rt.shutdown();
    }

    #[test]
    fn pool_exhaustion_reallocates_and_still_completes() {
        let (t, echo, _) = table();
        let cfg = test_config().with_pool_bytes(256).with_quantum_ms(1000);
        let rt = ZcRuntime::start(cfg, t, enclave(&cfg)).unwrap();
        let payload = vec![1u8; 200];
        let mut out = Vec::new();
        let mut switchless_calls = 0;
        for _ in 0..20 {
            let (ret, path) = rt
                .dispatch(&OcallRequest::new(echo, &[]), &payload, &mut out)
                .unwrap();
            assert_eq!(ret, 200);
            assert_eq!(out, payload);
            if path == CallPath::Switchless {
                switchless_calls += 1;
            }
        }
        let snap = rt.stats().snapshot();
        if switchless_calls >= 2 {
            assert!(
                snap.pool_reallocs > 0,
                "repeated 200 B payloads in a 256 B pool must trigger reallocs \
                 (switchless={switchless_calls})"
            );
        }
        rt.shutdown();
    }

    #[test]
    fn dispatch_after_shutdown_errors() {
        let (t, echo, _) = table();
        let cfg = test_config();
        let rt = ZcRuntime::start(cfg, t, enclave(&cfg)).unwrap();
        rt.shutdown();
        let mut out = Vec::new();
        assert_eq!(
            rt.dispatch(&OcallRequest::new(echo, &[]), &[], &mut out)
                .unwrap_err(),
            SwitchlessError::RuntimeStopped
        );
    }

    #[test]
    fn shutdown_is_idempotent() {
        let (t, _, _) = table();
        let cfg = test_config();
        let rt = ZcRuntime::start(cfg, t, enclave(&cfg)).unwrap();
        rt.shutdown();
        rt.shutdown();
        drop(rt);
    }

    #[test]
    fn scheduler_makes_decisions_and_records_residency() {
        // Virtual clock: scheduler quanta advance logical time instantly,
        // so configuration phases complete deterministically without the
        // test betting on wall-clock timing.
        let (t, echo, _) = table();
        let cfg = test_config(); // 5 ms quantum
        let rt = ZcRuntime::start(cfg, t, Enclave::new_virtual(cfg.cpu)).unwrap();
        // Generate load until the scheduler has completed a decision
        // (wall-clock bound is only a failure backstop, never slept on).
        let mut out = Vec::new();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        while rt.scheduler_decisions() < 1 {
            assert!(
                std::time::Instant::now() < deadline,
                "no scheduler decision"
            );
            let _ = rt
                .dispatch(&OcallRequest::new(echo, &[]), b"load", &mut out)
                .unwrap();
        }
        assert!(rt.scheduler_decisions() >= 1);
        let res = rt.residency();
        assert!(res.total_cycles() > 0, "residency must be recorded");
        assert!(rt.active_workers() <= rt.config().max_workers());
        rt.shutdown();
    }

    #[test]
    fn concurrent_callers_are_linearizable() {
        let (t, echo, _) = table();
        let cfg = test_config();
        let rt = Arc::new(ZcRuntime::start(cfg, t, enclave(&cfg)).unwrap());
        let mut handles = Vec::new();
        for c in 0..4u8 {
            let rt = Arc::clone(&rt);
            handles.push(std::thread::spawn(move || {
                let mut out = Vec::new();
                for i in 0..25u8 {
                    let payload = vec![c.wrapping_mul(25).wrapping_add(i); 24];
                    let (ret, _) = rt
                        .dispatch(&OcallRequest::new(echo, &[]), &payload, &mut out)
                        .unwrap();
                    assert_eq!(ret, 24);
                    assert_eq!(out, payload, "caller {c} got another caller's payload");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(rt.stats().snapshot().total_calls(), 100);
        rt.shutdown();
    }

    #[test]
    fn supervisor_respawns_crashed_worker_and_slot_heals() {
        use switchless_core::{FaultInjector, FaultPlan, SuperviseParams};
        let (t, echo, _) = table();
        let cfg0 = test_config();
        let params = SuperviseParams::for_cpu(cfg0.cpu)
            .with_backoff_cycles(1_000, 8_000)
            .with_probation_cycles(1_000)
            // Generous deadline: no spurious cancels while idle spinners
            // race the virtual clock forward.
            .with_watchdog_cycles(u64::MAX / 2);
        let cfg = cfg0.with_initial_workers(2).with_supervise_params(params);
        let faults = Arc::new(FaultInjector::new(FaultPlan::new().crash_worker_at(2)));
        let rt = ZcRuntime::start_with_faults(
            cfg,
            t,
            Enclave::new_virtual(cfg.cpu),
            Arc::clone(&faults),
        )
        .unwrap();
        let mut out = Vec::new();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        loop {
            rt.dispatch(&OcallRequest::new(echo, &[]), b"x", &mut out)
                .unwrap();
            let sup = rt.supervisor_state().expect("supervision is on");
            if sup.respawns() >= 1 && sup.heals() >= 1 && rt.poisoned_workers() == 0 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "supervisor never recovered: respawns={} heals={} poisoned={}",
                sup.respawns(),
                sup.heals(),
                rt.poisoned_workers()
            );
        }
        assert_eq!(faults.counts().crashes, 1);
        let report = rt.shutdown_with_timeout(Duration::from_secs(5));
        assert_eq!(report.abandoned, 0, "a crashed thread exits and joins");
        assert!(
            report.drained >= 3,
            "max workers plus the respawned generation must join: {report:?}"
        );
    }

    #[test]
    fn overload_admission_sheds_typed_and_conserves() {
        use switchless_core::{OverloadParams, ShedReason};
        let (t, echo, _) = table();
        // Two burst tokens, a refill period far beyond the test's
        // virtual-time span: the third call must shed RateLimited.
        let cfg = test_config().with_quantum_ms(1000);
        let cfg =
            cfg.with_overload_params(OverloadParams::for_cpu(&cfg.cpu).with_bucket(2, 1 << 40));
        let rt = ZcRuntime::start(cfg, t, enclave(&cfg)).unwrap();
        let mut out = Vec::new();
        let mut completed = 0u64;
        let mut shed = 0u64;
        for _ in 0..10 {
            match rt.dispatch(&OcallRequest::new(echo, &[]), b"x", &mut out) {
                Ok(_) => completed += 1,
                Err(SwitchlessError::Overloaded { reason }) => {
                    assert_eq!(reason, ShedReason::RateLimited);
                    shed += 1;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert_eq!(completed, 2, "exactly the two burst tokens complete");
        assert_eq!(shed, 8);
        let snap = rt.overload_snapshot().expect("overload is on");
        assert_eq!(snap.offered, 10);
        assert_eq!(snap.admitted, 2);
        assert_eq!(snap.shed_for(ShedReason::RateLimited), 8);
        assert_eq!(snap.inflight, 0, "all guards released");
        assert!(snap.conserves(rt.stats().snapshot().total_calls()));
        rt.shutdown();
    }
    #[test]
    fn expired_deadline_sheds_before_any_work() {
        use switchless_core::{OverloadParams, ShedReason};
        let (t, echo, _) = table();
        let cfg = test_config();
        let cfg = cfg.with_overload_params(OverloadParams::for_cpu(&cfg.cpu));
        let rt = ZcRuntime::start(cfg, t, enclave(&cfg)).unwrap();
        let mut out = Vec::new();
        // A deadline already in the past on arrival is shed, first.
        // (Cycle 1, not 0: deadline_cycles == 0 means "no deadline".)
        let req = OcallRequest::new(echo, &[]).with_deadline_at(1);
        let err = rt.dispatch(&req, b"late", &mut out).unwrap_err();
        assert_eq!(
            err,
            SwitchlessError::Overloaded {
                reason: ShedReason::DeadlineExpired
            }
        );
        assert_eq!(rt.stats().snapshot().total_calls(), 0, "no work performed");
        // A live deadline sails through.
        let live = OcallRequest::new(echo, &[]).with_deadline_at(u64::MAX);
        rt.dispatch(&live, b"ok", &mut out).unwrap();
        rt.shutdown();
    }

    #[test]
    fn fallback_storm_opens_breaker_and_sheds() {
        use switchless_core::fault::{FaultInjector, FaultPlan};
        use switchless_core::{BreakerParams, OverloadParams, ShedReason};
        let (t, echo, _) = table();
        // Crash the only active worker (no supervisor, so no respawn;
        // slot 1 is deactivated by initial_workers(1) and pauses
        // itself): every call after the crash re-route finds no idle
        // worker and hits the breaker-guarded would-fallback point. The
        // crash re-route is a safety path — it completes the call and
        // does NOT feed the breaker; only the storm of no-idle
        // fallbacks does, so with a threshold of 3 the breaker opens
        // after calls 1..=3 and sheds the rest.
        let cfg = test_config().with_quantum_ms(10_000);
        let cfg = cfg.with_overload_params(OverloadParams::for_cpu(&cfg.cpu).with_breaker(
            BreakerParams {
                failure_threshold: 3,
                window_cycles: 1 << 40,
                open_cycles: 1 << 40,
                probe_successes: 1,
            },
        ));
        let faults = Arc::new(FaultInjector::new(FaultPlan::new().crash_worker_at(0)));
        let rt = ZcRuntime::start_with_faults(cfg, t, enclave(&cfg), faults).unwrap();
        // Wait for the deactivated slot to park itself, so the storm
        // below can never race a still-Unused spare worker.
        {
            use switchless_core::WorkerState;
            let deadline = std::time::Instant::now() + Duration::from_secs(10);
            while rt.shared.worker(1).state() != Ok(WorkerState::Paused) {
                assert!(
                    std::time::Instant::now() < deadline,
                    "deactivated worker never paused"
                );
                std::thread::yield_now();
            }
        }
        let mut out = Vec::new();
        let mut fallbacks = 0u64;
        let mut breaker_sheds = 0u64;
        for _ in 0..10 {
            match rt.dispatch(&OcallRequest::new(echo, &[]), b"s", &mut out) {
                Ok((_, CallPath::Fallback)) => fallbacks += 1,
                Ok((_, p)) => panic!("unexpected path {p:?} with all workers down"),
                Err(SwitchlessError::Overloaded { reason }) => {
                    assert_eq!(reason, ShedReason::BreakerOpen);
                    breaker_sheds += 1;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert_eq!(
            fallbacks, 4,
            "one crash re-route plus the three storm fallbacks that trip the breaker"
        );
        assert_eq!(breaker_sheds, 6, "the rest of the storm is shed");
        let snap = rt.overload_snapshot().unwrap();
        assert_eq!(snap.breaker_trips, 1);
        assert_eq!(snap.shed_for(ShedReason::BreakerOpen), 6);
        assert!(snap.conserves(rt.stats().snapshot().total_calls()));
        rt.shutdown();
    }

    #[test]
    fn accounting_registers_workers_and_scheduler() {
        let (t, echo, _add) = table();
        let cfg = test_config();
        let acc = Arc::new(CpuAccounting::new());
        let rt = ZcRuntime::start_with_accounting(
            cfg,
            t,
            Enclave::new_virtual(cfg.cpu),
            Some(Arc::clone(&acc)),
        )
        .unwrap();
        // A couple of real calls instead of a wall-clock sleep: all
        // threads are registered at spawn, before any call completes.
        let mut out = Vec::new();
        for _ in 0..3 {
            let _ = rt
                .dispatch(&OcallRequest::new(echo, &[]), b"acct", &mut out)
                .unwrap();
        }
        rt.shutdown();
        let names: Vec<String> = acc.per_thread().into_iter().map(|(n, _, _)| n).collect();
        assert!(names.iter().any(|n| n == "zc-scheduler"));
        assert!(names.iter().filter(|n| n.starts_with("zc-worker-")).count() >= 2);
    }
}
