//! Pure scheduler mathematics of ZC-SWITCHLESS (paper §IV-A).
//!
//! The scheduler's objective is to minimise *wasted CPU cycles* over each
//! interval of `T` cycles:
//!
//! ```text
//! U = F · T_es + M · T
//! ```
//!
//! where `F` is the number of fallback (non-switchless) calls, `T_es` the
//! enclave-transition cost and `M` the number of active worker threads
//! (each active worker pins exactly one busy-waiting thread — either the
//! worker itself while idle, or the enclave caller while the worker runs).
//!
//! The scheduler alternates two phases:
//!
//! * a **scheduling phase** of one quantum `Q` (10 ms) with a fixed worker
//!   count `M`;
//! * a **configuration phase** of `max_workers + 1` micro-quanta of
//!   `µ · Q` cycles each (`µ = 1/100`), trying `i = 0, 1, …, max_workers`
//!   workers and recording the fallback count `F_i` of each; it then keeps
//!   `M' = argmin_i U_i` where `U_i = F_i·T_es + i·µ·Q·CPU_FREQ` (with `Q`
//!   expressed in cycles this is simply `F_i·T_es + i·µQ`).
//!
//! Everything here is side-effect-free so the identical argmin drives the
//! real-thread scheduler (`zc-switchless`) and the discrete-event model
//! (`zc-des`), and is directly unit- and property-testable.

use serde::{Deserialize, Serialize};

/// Default fallback weight (see [`PolicyParams::fallback_weight`]).
pub const DEFAULT_FALLBACK_WEIGHT: u64 = 8;

/// Parameters of the ZC scheduler policy, all in cycles of the modelled
/// machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PolicyParams {
    /// Enclave transition cost `T_es` in cycles.
    pub t_es_cycles: u64,
    /// Scheduling-phase quantum `Q` in cycles (paper: 10 ms).
    pub quantum_cycles: u64,
    /// Inverse of the micro-quantum fraction `µ` (paper: 100, i.e.
    /// `µ = 1/100`).
    pub mu_inverse: u64,
    /// Maximum worker count tried (paper: `N/2` for `N` logical CPUs).
    pub max_workers: usize,
    /// Cycles one fallback is charged in the argmin, as a multiple of
    /// `T_es`.
    ///
    /// **Reproduction note** (see `DESIGN.md` §5): with the paper's
    /// literal objective (`weight = 1`), a worker is only justified above
    /// `µQ / T_es ≈ 28` fallbacks per 100 µs probe — ~280 k fallbacks/s —
    /// far beyond the call rates of the paper's own kissdb and lmbench
    /// benchmarks, where the published system demonstrably *does* enable
    /// workers. The paper's implementation therefore values a fallback at
    /// more than one bare transition (a fallback also stalls the caller
    /// and inflates call latency). The default of 8 reproduces the
    /// paper's operating points; set 1 for the literal formula
    /// (ablation `ablation_quantum` sweeps this).
    pub fallback_weight: u64,
}

impl PolicyParams {
    /// Parameters from a CPU spec using the paper's constants
    /// (`Q` = 10 ms, `µ` = 1/100, `max = N/2`).
    #[must_use]
    pub fn from_cpu(cpu: &crate::cpu::CpuSpec) -> Self {
        PolicyParams {
            t_es_cycles: cpu.t_es_cycles,
            quantum_cycles: cpu.quantum_cycles(10),
            mu_inverse: 100,
            max_workers: cpu.zc_max_workers(),
            fallback_weight: DEFAULT_FALLBACK_WEIGHT,
        }
    }

    /// Duration of one configuration micro-quantum, `µ · Q`, in cycles.
    #[must_use]
    pub fn micro_quantum_cycles(&self) -> u64 {
        (self.quantum_cycles / self.mu_inverse).max(1)
    }

    /// Worker counts probed during one configuration phase:
    /// `0, 1, …, max_workers`.
    pub fn probe_plan(&self) -> impl Iterator<Item = usize> + '_ {
        0..=self.max_workers
    }
}

/// Wasted cycles `U = F·T_es + M·T` over an interval of `interval_cycles`.
#[must_use]
pub fn wasted_cycles(
    fallbacks: u64,
    t_es_cycles: u64,
    workers: usize,
    interval_cycles: u64,
) -> u64 {
    fallbacks
        .saturating_mul(t_es_cycles)
        .saturating_add((workers as u64).saturating_mul(interval_cycles))
}

/// Fallback count observed while running one micro-quantum with a given
/// worker count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MicroQuantumReport {
    /// Worker count active during the micro-quantum.
    pub workers: usize,
    /// Calls that fell back to regular ocalls during the micro-quantum.
    pub fallbacks: u64,
}

/// Pick the worker count minimising `U_i = F_i·T_es + i·µQ` from the
/// configuration-phase reports. Ties break towards *fewer* workers (less
/// CPU pinned for equal waste). An empty slice yields `0`.
#[must_use]
pub fn choose_workers(
    reports: &[MicroQuantumReport],
    t_es_cycles: u64,
    micro_quantum_cycles: u64,
) -> usize {
    choose_workers_weighted(reports, t_es_cycles, micro_quantum_cycles, 1)
}

/// [`choose_workers`] with a fallback weight (see
/// [`PolicyParams::fallback_weight`]): minimises
/// `U_i = weight·F_i·T_es + i·µQ`.
#[must_use]
pub fn choose_workers_weighted(
    reports: &[MicroQuantumReport],
    t_es_cycles: u64,
    micro_quantum_cycles: u64,
    fallback_weight: u64,
) -> usize {
    reports
        .iter()
        .map(|r| {
            (
                wasted_cycles(
                    r.fallbacks.saturating_mul(fallback_weight.max(1)),
                    t_es_cycles,
                    r.workers,
                    micro_quantum_cycles,
                ),
                r.workers,
            )
        })
        .min()
        .map_or(0, |(_, w)| w)
}

/// The full record of one completed configuration phase: the measured
/// per-count fallback reports `F_i`, the derived costs
/// `U_i = weight·F_i·T_es + i·µQ`, and the argmin.
///
/// Kept by [`SchedulerPolicy`] after every decision so observability
/// layers can explain *why* a worker count was chosen, not just what
/// it was.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DecisionRecord {
    /// The argmin worker count the scheduler switched to.
    pub chosen_workers: usize,
    /// One report per probed worker count, in probe order (`F_i`).
    pub probes: Vec<MicroQuantumReport>,
    /// Weighted wasted-cycle cost per probe, same order (`U_i`).
    pub costs: Vec<u64>,
}

/// What the scheduler should do next: set a worker count and let the
/// system run for a duration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PolicyStep {
    /// Scheduling phase: run with `workers` active workers for one full
    /// quantum.
    Schedule {
        /// Worker count for this quantum.
        workers: usize,
        /// Phase duration in cycles.
        duration_cycles: u64,
    },
    /// Configuration micro-quantum: probe `workers` workers, recording the
    /// fallback count for the argmin.
    Probe {
        /// Worker count probed.
        workers: usize,
        /// Micro-quantum duration in cycles.
        duration_cycles: u64,
    },
}

impl PolicyStep {
    /// Worker count requested by this step.
    #[must_use]
    pub fn workers(&self) -> usize {
        match *self {
            PolicyStep::Schedule { workers, .. } | PolicyStep::Probe { workers, .. } => workers,
        }
    }

    /// Step duration in cycles.
    #[must_use]
    pub fn duration_cycles(&self) -> u64 {
        match *self {
            PolicyStep::Schedule {
                duration_cycles, ..
            }
            | PolicyStep::Probe {
                duration_cycles, ..
            } => duration_cycles,
        }
    }
}

#[derive(Debug, Clone)]
enum Phase {
    /// Currently in a scheduling phase with the chosen worker count.
    Scheduling,
    /// Configuration phase; the next probe index is stored along with the
    /// reports accumulated so far.
    Configuring {
        next_probe: usize,
        reports: Vec<MicroQuantumReport>,
    },
}

/// Steppable, side-effect-free driver of the ZC scheduler phase cycle.
///
/// The owning scheduler (real thread or simulated) repeatedly calls
/// [`SchedulerPolicy::next`] with the fallback count observed during the
/// step it just finished, and executes the returned [`PolicyStep`]:
///
/// ```
/// use switchless_core::policy::{PolicyParams, PolicyStep, SchedulerPolicy};
/// use switchless_core::cpu::CpuSpec;
///
/// let params = PolicyParams::from_cpu(&CpuSpec::paper_machine());
/// let mut policy = SchedulerPolicy::new(params, 4);
/// // First step is a scheduling phase with the initial worker count.
/// let step = policy.next(0);
/// assert_eq!(step, PolicyStep::Schedule { workers: 4, duration_cycles: params.quantum_cycles });
/// // Then max_workers+1 probes...
/// for i in 0..=params.max_workers {
///     let step = policy.next(/* fallbacks seen in previous step */ 10);
///     assert_eq!(step.workers(), i);
/// }
/// // ...after which the argmin worker count is scheduled again.
/// let step = policy.next(0);
/// assert!(matches!(step, PolicyStep::Schedule { .. }));
/// ```
#[derive(Debug, Clone)]
pub struct SchedulerPolicy {
    params: PolicyParams,
    phase: Phase,
    current_workers: usize,
    /// `None` until the first call to `next`.
    started: bool,
    decisions: u64,
    last_decision: Option<DecisionRecord>,
}

impl SchedulerPolicy {
    /// Create a policy starting with a scheduling phase of
    /// `initial_workers` (clamped to `params.max_workers`).
    #[must_use]
    pub fn new(params: PolicyParams, initial_workers: usize) -> Self {
        SchedulerPolicy {
            params,
            phase: Phase::Scheduling,
            current_workers: initial_workers.min(params.max_workers),
            started: false,
            decisions: 0,
            last_decision: None,
        }
    }

    /// Parameters this policy was built with.
    #[must_use]
    pub fn params(&self) -> &PolicyParams {
        &self.params
    }

    /// Worker count most recently chosen for a scheduling phase.
    #[must_use]
    pub fn current_workers(&self) -> usize {
        self.current_workers
    }

    /// Number of completed configuration phases (argmin decisions).
    #[must_use]
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// The most recent completed decision with its `F_i`/`U_i` inputs,
    /// or `None` before the first configuration phase finishes.
    #[must_use]
    pub fn last_decision(&self) -> Option<&DecisionRecord> {
        self.last_decision.as_ref()
    }

    /// Advance the phase machine.
    ///
    /// `fallbacks_in_last_step` is the number of fallback calls observed
    /// while executing the *previously returned* step (ignored for the
    /// very first call and after scheduling phases, recorded for probes).
    pub fn next(&mut self, fallbacks_in_last_step: u64) -> PolicyStep {
        let mq = self.params.micro_quantum_cycles();
        if !self.started {
            self.started = true;
            return PolicyStep::Schedule {
                workers: self.current_workers,
                duration_cycles: self.params.quantum_cycles,
            };
        }
        match &mut self.phase {
            Phase::Scheduling => {
                // Scheduling quantum finished: begin the configuration
                // phase with the first probe (0 workers).
                self.phase = Phase::Configuring {
                    next_probe: 1,
                    reports: Vec::with_capacity(self.params.max_workers + 1),
                };
                PolicyStep::Probe {
                    workers: 0,
                    duration_cycles: mq,
                }
            }
            Phase::Configuring {
                next_probe,
                reports,
            } => {
                // Record the fallbacks of the probe that just completed.
                reports.push(MicroQuantumReport {
                    workers: *next_probe - 1,
                    fallbacks: fallbacks_in_last_step,
                });
                if *next_probe <= self.params.max_workers {
                    let w = *next_probe;
                    *next_probe += 1;
                    PolicyStep::Probe {
                        workers: w,
                        duration_cycles: mq,
                    }
                } else {
                    // All probes done: pick argmin and start scheduling.
                    let weight = self.params.fallback_weight;
                    self.current_workers =
                        choose_workers_weighted(reports, self.params.t_es_cycles, mq, weight);
                    let costs = reports
                        .iter()
                        .map(|r| {
                            wasted_cycles(
                                r.fallbacks.saturating_mul(weight.max(1)),
                                self.params.t_es_cycles,
                                r.workers,
                                mq,
                            )
                        })
                        .collect();
                    self.last_decision = Some(DecisionRecord {
                        chosen_workers: self.current_workers,
                        probes: std::mem::take(reports),
                        costs,
                    });
                    self.decisions += 1;
                    self.phase = Phase::Scheduling;
                    PolicyStep::Schedule {
                        workers: self.current_workers,
                        duration_cycles: self.params.quantum_cycles,
                    }
                }
            }
        }
    }
}

/// One detected scheduler convergence: the argmin moved off its settled
/// worker count and re-settled on a new one.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConvergenceRecord {
    /// Worker count the scheduler was settled on before the shift.
    pub from_workers: u32,
    /// Worker count it re-settled on.
    pub to_workers: u32,
    /// Argmin decisions from the first deviating one through the
    /// confirming one, inclusive.
    pub decisions: u32,
    /// Cycles from the first deviating decision to the confirming one —
    /// the paper's "time to converge after a load shift".
    pub settle_cycles: u64,
}

#[derive(Debug, Clone, Copy)]
struct PendingShift {
    from: usize,
    to: usize,
    start_cycles: u64,
    decisions: u32,
}

/// Detects scheduler convergence from the stream of argmin decisions.
///
/// Feed every completed configuration-phase decision in order via
/// [`observe`](ConvergenceTracker::observe). The tracker considers the
/// scheduler *settled* on a count once two consecutive decisions agree
/// on it; a decision deviating from the settled count opens a shift,
/// and the first repeated count thereafter closes it, yielding a
/// [`ConvergenceRecord`] with the settle time. A deviation that
/// immediately returns to the settled count is discarded as probe noise.
///
/// Pure and side-effect-free, so the identical trajectory logic serves
/// the real scheduler thread and the DES scheduler actor.
#[derive(Debug, Clone, Default)]
pub struct ConvergenceTracker {
    settled: Option<usize>,
    pending: Option<PendingShift>,
}

impl ConvergenceTracker {
    /// Fresh tracker: the first observed decision becomes the baseline.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Worker count the scheduler is currently settled on, if any.
    #[must_use]
    pub fn settled_workers(&self) -> Option<usize> {
        self.settled
    }

    /// True while a shift is open (argmin moved, not yet re-settled).
    #[must_use]
    pub fn shifting(&self) -> bool {
        self.pending.is_some()
    }

    /// Record one argmin decision taken at `now_cycles`. Returns the
    /// completed [`ConvergenceRecord`] when this decision confirms a new
    /// settled count after a shift.
    pub fn observe(&mut self, chosen_workers: usize, now_cycles: u64) -> Option<ConvergenceRecord> {
        let settled = match self.settled {
            None => {
                self.settled = Some(chosen_workers);
                return None;
            }
            Some(s) => s,
        };
        match self.pending {
            None => {
                if chosen_workers != settled {
                    self.pending = Some(PendingShift {
                        from: settled,
                        to: chosen_workers,
                        start_cycles: now_cycles,
                        decisions: 1,
                    });
                }
                None
            }
            Some(ref mut p) => {
                p.decisions += 1;
                if chosen_workers == p.to {
                    let rec = ConvergenceRecord {
                        from_workers: p.from as u32,
                        to_workers: chosen_workers as u32,
                        decisions: p.decisions,
                        settle_cycles: now_cycles.saturating_sub(p.start_cycles),
                    };
                    self.settled = Some(chosen_workers);
                    self.pending = None;
                    Some(rec)
                } else if chosen_workers == p.from {
                    // Bounced straight back: probe noise, not a shift.
                    self.pending = None;
                    None
                } else {
                    // Still hunting: re-anchor on the newest candidate.
                    p.to = chosen_workers;
                    None
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::CpuSpec;

    fn params() -> PolicyParams {
        PolicyParams::from_cpu(&CpuSpec::paper_machine())
    }

    #[test]
    fn paper_constants() {
        let p = params();
        assert_eq!(p.quantum_cycles, 38_000_000); // 10 ms at 3.8 GHz
        assert_eq!(p.mu_inverse, 100);
        assert_eq!(p.micro_quantum_cycles(), 380_000);
        assert_eq!(p.max_workers, 4);
        assert_eq!(p.probe_plan().collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn wasted_cycles_formula() {
        // U = F*T_es + M*T
        assert_eq!(wasted_cycles(10, 13_500, 2, 1_000_000), 135_000 + 2_000_000);
        assert_eq!(wasted_cycles(0, 13_500, 0, 1_000_000), 0);
    }

    #[test]
    fn wasted_cycles_saturates() {
        assert_eq!(wasted_cycles(u64::MAX, 2, 1, u64::MAX), u64::MAX);
    }

    #[test]
    fn choose_workers_prefers_fewer_on_tie() {
        // Zero fallbacks everywhere: 0 workers waste least.
        let reports: Vec<_> = (0..=4)
            .map(|w| MicroQuantumReport {
                workers: w,
                fallbacks: 0,
            })
            .collect();
        assert_eq!(choose_workers(&reports, 13_500, 380_000), 0);
    }

    #[test]
    fn choose_workers_balances_fallbacks_against_worker_cost() {
        // One extra worker costs 380_000 cycles per micro-quantum; each
        // avoided fallback saves 13_500. Going from 1 to 2 workers must
        // avoid >28.1 fallbacks to pay off.
        let mq = 380_000;
        let tes = 13_500;
        let reports = vec![
            MicroQuantumReport {
                workers: 0,
                fallbacks: 100,
            },
            MicroQuantumReport {
                workers: 1,
                fallbacks: 40,
            },
            MicroQuantumReport {
                workers: 2,
                fallbacks: 5,
            },
        ];
        // U_0 = 1_350_000; U_1 = 540_000 + 380_000 = 920_000;
        // U_2 = 67_500 + 760_000 = 827_500 -> choose 2.
        assert_eq!(choose_workers(&reports, tes, mq), 2);
    }

    #[test]
    fn choose_workers_empty_is_zero() {
        assert_eq!(choose_workers(&[], 13_500, 380_000), 0);
    }

    #[test]
    fn policy_phase_sequence_matches_paper() {
        let p = params();
        let mut policy = SchedulerPolicy::new(p, 4);
        let s0 = policy.next(0);
        assert_eq!(
            s0,
            PolicyStep::Schedule {
                workers: 4,
                duration_cycles: p.quantum_cycles
            }
        );
        // N/2 + 1 = 5 probes with 0..=4 workers.
        for expect in 0..=4usize {
            let s = policy.next(0);
            assert_eq!(
                s,
                PolicyStep::Probe {
                    workers: expect,
                    duration_cycles: p.micro_quantum_cycles()
                }
            );
        }
        // All-zero fallbacks -> argmin picks 0 workers.
        let s = policy.next(0);
        assert_eq!(
            s,
            PolicyStep::Schedule {
                workers: 0,
                duration_cycles: p.quantum_cycles
            }
        );
        assert_eq!(policy.decisions(), 1);
    }

    #[test]
    fn policy_uses_probe_fallbacks_for_decision() {
        let p = params();
        let mut policy = SchedulerPolicy::new(p, 0);
        policy.next(0); // initial schedule
        policy.next(999); // finish schedule (ignored), start probe 0
                          // Feed fallbacks such that 3 workers is optimal:
                          // heavy fallbacks until w=3, then zero.
        let fb = [10_000u64, 5_000, 2_000, 0, 0];
        // We are now executing probe 0; report its fallbacks when asking
        // for the next step.
        for &f in &fb[..4] {
            policy.next(f);
        }
        let decision = policy.next(fb[4]);
        // U_0 = 10000*13500 = 135M; U_1 = 5000*13500+0.38M = 67.9M;
        // U_2 = 27M + 0.76M = 27.76M; U_3 = 1.14M; U_4 = 1.52M -> 3.
        assert_eq!(
            decision,
            PolicyStep::Schedule {
                workers: 3,
                duration_cycles: p.quantum_cycles
            }
        );
        assert_eq!(policy.current_workers(), 3);
    }

    #[test]
    fn decision_record_keeps_probe_inputs_and_costs() {
        let p = params();
        let mut policy = SchedulerPolicy::new(p, 0);
        assert!(policy.last_decision().is_none());
        policy.next(0); // initial schedule
        policy.next(0); // probe 0 begins
        let fb = [10_000u64, 5_000, 2_000, 0, 0];
        for &f in &fb[..4] {
            policy.next(f);
        }
        policy.next(fb[4]); // decision
        let d = policy.last_decision().expect("decision recorded");
        assert_eq!(d.chosen_workers, 3);
        assert_eq!(d.probes.len(), 5);
        assert_eq!(d.costs.len(), 5);
        assert_eq!(
            d.probes[0],
            MicroQuantumReport {
                workers: 0,
                fallbacks: 10_000
            }
        );
        // U_i consistency: cost equals the weighted formula per probe,
        // and the argmin of the published costs is the chosen count.
        for (i, r) in d.probes.iter().enumerate() {
            assert_eq!(
                d.costs[i],
                wasted_cycles(
                    r.fallbacks * DEFAULT_FALLBACK_WEIGHT,
                    p.t_es_cycles,
                    r.workers,
                    p.micro_quantum_cycles()
                )
            );
        }
        let argmin = d
            .costs
            .iter()
            .enumerate()
            .min_by_key(|(i, c)| (**c, *i))
            .map(|(i, _)| i)
            .unwrap();
        assert_eq!(argmin, d.chosen_workers);
    }

    #[test]
    fn initial_workers_clamped_to_max() {
        let p = params();
        let mut policy = SchedulerPolicy::new(p, 100);
        assert_eq!(policy.next(0).workers(), 4);
    }

    #[test]
    fn step_accessors() {
        let s = PolicyStep::Probe {
            workers: 3,
            duration_cycles: 99,
        };
        assert_eq!(s.workers(), 3);
        assert_eq!(s.duration_cycles(), 99);
    }

    #[test]
    fn convergence_detects_load_shift() {
        let mut t = ConvergenceTracker::new();
        // Steady at 1 worker.
        assert_eq!(t.observe(1, 0), None);
        assert_eq!(t.observe(1, 100), None);
        assert_eq!(t.settled_workers(), Some(1));
        // Load shift: argmin hunts 3 -> 4 -> 4.
        assert_eq!(t.observe(3, 200), None);
        assert!(t.shifting());
        assert_eq!(t.observe(4, 300), None);
        let rec = t.observe(4, 500).expect("converged");
        assert_eq!(
            rec,
            ConvergenceRecord {
                from_workers: 1,
                to_workers: 4,
                decisions: 3,
                settle_cycles: 300,
            }
        );
        assert_eq!(t.settled_workers(), Some(4));
        assert!(!t.shifting());
    }

    #[test]
    fn convergence_ignores_probe_noise() {
        let mut t = ConvergenceTracker::new();
        t.observe(2, 0);
        t.observe(2, 10);
        // One-decision blip back to the settled count: no record.
        assert_eq!(t.observe(3, 20), None);
        assert_eq!(t.observe(2, 30), None);
        assert!(!t.shifting());
        assert_eq!(t.settled_workers(), Some(2));
        // Steady stream never emits records.
        for i in 0..10 {
            assert_eq!(t.observe(2, 40 + i), None);
        }
    }

    #[test]
    fn micro_quantum_never_zero() {
        let p = PolicyParams {
            t_es_cycles: 1,
            quantum_cycles: 10,
            mu_inverse: 100,
            max_workers: 1,
            fallback_weight: 1,
        };
        assert_eq!(p.micro_quantum_cycles(), 1);
    }
}
