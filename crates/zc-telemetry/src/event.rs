//! Typed trace events and their origins.

use switchless_core::overload::{BreakerState, ShedReason};
use switchless_core::policy::DecisionRecord;
use switchless_core::{CallPath, GuardKind, WorkerState};

/// Which scheduler phase a step belongs to (paper §IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhaseKind {
    /// A full scheduling quantum Q at the chosen worker count.
    Schedule,
    /// One micro-quantum of the configuration phase probing a count.
    Probe,
}

impl PhaseKind {
    /// Stable lowercase name used by the exporters.
    pub fn name(self) -> &'static str {
        match self {
            PhaseKind::Schedule => "schedule",
            PhaseKind::Probe => "probe",
        }
    }
}

/// The kind of injected or observed fault an event reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// A worker thread crashed (poisoned its buffer and exited).
    WorkerCrash,
    /// A worker stalled for an injected number of cycles.
    WorkerStall,
    /// A worker hung (parked forever, still poisoned).
    WorkerHang,
    /// A pool allocation was forced to fail (injected exhaustion).
    PoolExhaustion,
    /// A CAS state transition was forced to fail.
    TransitionFailure,
    /// Injected clock skew was applied to a caller.
    ClockSkew,
    /// The whole enclave stalled for an injected number of cycles
    /// (all in-flight calls frozen, no loss).
    EnclaveStall,
}

impl FaultKind {
    /// Stable lowercase name used by the exporters.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::WorkerCrash => "worker_crash",
            FaultKind::WorkerStall => "worker_stall",
            FaultKind::WorkerHang => "worker_hang",
            FaultKind::PoolExhaustion => "pool_exhaustion",
            FaultKind::TransitionFailure => "transition_failure",
            FaultKind::ClockSkew => "clock_skew",
            FaultKind::EnclaveStall => "enclave_stall",
        }
    }
}

/// Who recorded an event.
///
/// Identity is supplied by the recording site: workers and the
/// scheduler know their own index/role; application (caller) threads
/// get a small per-hub id from [`crate::Tracer::caller_origin`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Origin {
    /// An application thread issuing ocalls, numbered per hub in first-
    /// event order.
    Caller(u32),
    /// An untrusted worker thread (or simulated worker), by index.
    Worker(u32),
    /// The scheduler thread (or simulated scheduler actor).
    Scheduler,
    /// The DES kernel / harness itself.
    Sim,
}

impl Origin {
    /// Human-readable label, e.g. `caller-3`, `worker-0`, `scheduler`.
    pub fn label(&self) -> String {
        match self {
            Origin::Caller(i) => format!("caller-{i}"),
            Origin::Worker(i) => format!("worker-{i}"),
            Origin::Scheduler => "scheduler".to_string(),
            Origin::Sim => "sim".to_string(),
        }
    }

    /// Stable synthetic thread id for the Chrome trace exporter.
    pub(crate) fn tid(&self) -> u64 {
        match self {
            Origin::Scheduler => 1,
            Origin::Sim => 2,
            Origin::Caller(i) => 100 + u64::from(*i),
            Origin::Worker(i) => 1000 + u64::from(*i),
        }
    }
}

/// One typed trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// The scheduler started a phase step at `workers` active workers.
    PhaseStart {
        /// Schedule quantum or configuration micro-quantum.
        kind: PhaseKind,
        /// Worker count held during the step.
        workers: u32,
        /// Planned step length in cycles.
        duration_cycles: u64,
    },
    /// A completed configuration phase chose a worker count from the
    /// measured per-count fallback totals `F_i` and costs `U_i`.
    Decision {
        /// The probe reports, costs and argmin (see `DecisionRecord`).
        decision: DecisionRecord,
    },
    /// A worker buffer state-machine edge (same edges as the fault
    /// layer's `TransitionLog`).
    WorkerTransition {
        /// Buffer index the edge happened on.
        worker: u32,
        /// State before the CAS.
        from: WorkerState,
        /// State after the CAS.
        to: WorkerState,
    },
    /// One ocall completed, routed over `path`.
    CallRouted {
        /// Registered function id.
        func: u16,
        /// Switchless / fallback / regular.
        path: CallPath,
        /// Cycle count when the dispatch began.
        start_cycles: u64,
        /// Dispatch latency in cycles.
        duration_cycles: u64,
    },
    /// The per-worker request pool grew to satisfy an allocation.
    PoolRealloc {
        /// Worker buffer whose pool grew.
        worker: u32,
        /// Requested allocation in bytes.
        bytes: u64,
    },
    /// An injected fault fired (see [`FaultKind`]).
    Fault {
        /// Which fault.
        kind: FaultKind,
    },
    /// Shutdown drained the worker pool.
    Drain {
        /// In-flight calls that completed during the drain window.
        drained: u64,
        /// In-flight calls abandoned at the deadline.
        abandoned: u64,
    },
    /// Shutdown gave up on one wedged worker at the drain deadline.
    WorkerAbandoned {
        /// Worker slot whose thread never joined.
        worker: u32,
    },
    /// The supervisor spawned a fresh worker (thread + buffer) for a
    /// failed slot.
    WorkerRespawned {
        /// Worker slot that was respawned.
        worker: u32,
        /// Monotonic per-slot generation (initial spawn = 0).
        generation: u64,
    },
    /// A respawned worker survived its probation window cleanly.
    WorkerHealed {
        /// Worker slot that healed.
        worker: u32,
    },
    /// The caller-side watchdog cancelled an in-flight switchless call
    /// that exceeded its deadline; the call re-routed to a regular
    /// ocall and the worker was marked for recycling.
    WatchdogCancel {
        /// Worker slot the call was cancelled on.
        worker: u32,
        /// Registered function id of the cancelled call.
        func: u16,
        /// Cycles the call had been in flight when cancelled.
        waited_cycles: u64,
    },
    /// The trusted-side guard rejected a host-written value crossing
    /// the shared-memory boundary; the call re-routed via fallback and
    /// the worker slot was quarantined.
    GuardViolation {
        /// Worker slot whose shared words failed validation.
        worker: u32,
        /// Which guard rule was broken.
        kind: GuardKind,
    },
    /// A poison request shape was pinned to the regular-ocall path
    /// after killing too many workers.
    Blacklisted {
        /// Registered function id of the poison shape.
        func: u16,
        /// `log2` payload-size bucket of the poison shape.
        shape: u8,
    },
    /// Per-phase cycle breakdown of one completed call (emitted by the
    /// phase profiler; phases in [`crate::profile::Phase::ALL`] order:
    /// reserve, copy_in, signal, wait, execute, copy_out). The six
    /// entries sum to the call's total latency by construction.
    CallPhases {
        /// Registered function id.
        func: u16,
        /// Switchless / fallback / regular.
        path: CallPath,
        /// Cycles charged to each phase, pipeline order.
        phases: [u64; 6],
    },
    /// The scheduler's argmin settled on a new worker count after a
    /// load shift (see `switchless_core::policy::ConvergenceTracker`).
    Converged {
        /// Worker count before the shift.
        from_workers: u32,
        /// Worker count the argmin settled on.
        to_workers: u32,
        /// Scheduling decisions taken between shift and convergence.
        decisions: u32,
        /// Cycles from the first deviating decision to convergence.
        settle_cycles: u64,
    },
    /// The overload-control plane refused a call instead of queueing
    /// it (see `switchless_core::overload`). The caller observed a
    /// typed `Overloaded` error; no work was performed.
    CallShed {
        /// Registered function id of the shed call.
        func: u16,
        /// Which admission check shed it.
        reason: ShedReason,
    },
    /// The fallback-storm circuit breaker walked one edge of its state
    /// machine (Closed→Open on a storm, Open→HalfOpen at probation,
    /// HalfOpen→Closed/Open on probe outcome).
    BreakerTransition {
        /// State before the edge.
        from: BreakerState,
        /// State after the edge.
        to: BreakerState,
    },
    /// The brownout ladder moved one rung (raised under queue growth,
    /// lowered inside the hysteresis band).
    BrownoutShift {
        /// Ladder level before the shift.
        from_level: u8,
        /// Ladder level after the shift.
        to_level: u8,
    },
    /// The enclave died and the recovery plane began a restart cycle
    /// (see `switchless_core::recovery`). Emitted once per loss by the
    /// caller that won the detection race.
    EnclaveCrash {
        /// Recovery epoch *before* the restart (the epoch the lost
        /// calls were posted under).
        epoch: u64,
    },
    /// Post-restart reconciliation replayed an idempotent in-flight
    /// call from its journaled intent (re-executed exactly once).
    JournalReplay {
        /// Sequence tag of the replayed call.
        seq: u64,
    },
    /// Post-restart reconciliation redelivered a journaled result
    /// without re-executing: the crash landed between completion and
    /// reply delivery.
    CallRedelivered {
        /// Sequence tag of the redelivered call.
        seq: u64,
    },
    /// Post-restart reconciliation refused a non-idempotent in-flight
    /// call; the caller observed `EnclaveLost`.
    CallRefused {
        /// Sequence tag of the refused call.
        seq: u64,
    },
    /// The fleet allocator re-divided the global worker budget and this
    /// tenant shard's cap moved (quiesce-and-migrate: donors shrink
    /// before receivers grow). One event per tenant whose cap changed.
    FleetRebalance {
        /// Tenant the new cap applies to.
        tenant: String,
        /// Allocator verdict for the interval (`healthy` … `faulty`).
        verdict: &'static str,
        /// Worker cap before the decision.
        cap_before: u32,
        /// Worker cap after the decision.
        cap_after: u32,
    },
    /// Free-form marker (phase labels in examples/benches).
    Marker {
        /// Static label.
        label: &'static str,
    },
}

impl Event {
    /// Stable lowercase event-kind name used by the exporters.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Event::PhaseStart { .. } => "phase_start",
            Event::Decision { .. } => "decision",
            Event::WorkerTransition { .. } => "worker_transition",
            Event::CallRouted { .. } => "call_routed",
            Event::PoolRealloc { .. } => "pool_realloc",
            Event::Fault { .. } => "fault",
            Event::Drain { .. } => "drain",
            Event::WorkerAbandoned { .. } => "worker_abandoned",
            Event::WorkerRespawned { .. } => "worker_respawned",
            Event::WorkerHealed { .. } => "worker_healed",
            Event::WatchdogCancel { .. } => "watchdog_cancel",
            Event::GuardViolation { .. } => "guard_violation",
            Event::Blacklisted { .. } => "blacklisted",
            Event::CallPhases { .. } => "call_phases",
            Event::Converged { .. } => "converged",
            Event::CallShed { .. } => "call_shed",
            Event::BreakerTransition { .. } => "breaker_transition",
            Event::BrownoutShift { .. } => "brownout_shift",
            Event::EnclaveCrash { .. } => "enclave_crash",
            Event::JournalReplay { .. } => "journal_replay",
            Event::CallRedelivered { .. } => "call_redelivered",
            Event::CallRefused { .. } => "call_refused",
            Event::FleetRebalance { .. } => "fleet_rebalance",
            Event::Marker { .. } => "marker",
        }
    }
}

/// An event as stored in the ring: payload plus timestamp and origin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecordedEvent {
    /// Caller-provided cycle timestamp (CycleClock or DES kernel time).
    pub t_cycles: u64,
    /// Recording thread/actor.
    pub origin: Origin,
    /// The payload.
    pub event: Event,
}
