//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind the parking_lot API surface this
//! workspace uses: `Mutex::lock()` returning a guard directly (no
//! `Result`), `RwLock::{read, write}`, and `Condvar::{wait, notify_one,
//! notify_all}` where `wait` takes `&mut MutexGuard`. Poisoning is
//! deliberately swallowed (`PoisonError::into_inner`) to match
//! parking_lot semantics: a panic while holding a lock does not wedge
//! every later acquisition — which the runtimes rely on when a worker
//! thread is crashed by the fault injector mid-call.

use std::sync::PoisonError;

/// Non-poisoning mutex with the `parking_lot::Mutex` API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
///
/// Holds the std guard in an `Option` so [`Condvar::wait`] can move it
/// out and back through `std`'s by-value wait API.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the data (no locking needed).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

/// Non-poisoning reader-writer lock with the `parking_lot::RwLock` API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access. Never poisons.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access. Never poisons.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Condition variable with the `parking_lot::Condvar` API (`wait` takes
/// the guard by `&mut`).
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing `guard`'s mutex while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard already waiting");
        let inner = self
            .inner
            .wait(inner)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    /// Blocks until notified or `timeout` elapses. Returns `true` if the
    /// wait timed out (matches `parking_lot`'s `WaitTimeoutResult`).
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard already waiting");
        let (inner, result) = self
            .inner
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Result of [`Condvar::wait_for`].
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn mutex_survives_panic_while_held() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: still lockable after a panicking holder.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn condvar_wait_and_notify() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut ready = lock.lock();
            while !*ready {
                cv.wait(&mut ready);
            }
        });
        std::thread::sleep(Duration::from_millis(10));
        let (lock, cv) = &*pair;
        *lock.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(r.timed_out());
        drop(g);
    }
}
