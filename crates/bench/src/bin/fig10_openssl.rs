//! Fig. 10: OpenSSL-substitute file encryption/decryption — latency and
//! CPU usage for no_sl, i-{fr,fw,frw,foc,frwoc}-{2,4} and zc. Pass
//! `--residency` for the §V-B zc worker-count residency table.
//!
//! Usage: `fig10_openssl [--quick] [--residency]`

use zc_bench::experiments::openssl::{fig10, zc_residency};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let (file_bytes, chunk) = if quick {
        (256 * 1024, 4 * 1024)
    } else {
        (8 * 1024 * 1024, 16 * 1024)
    };
    if args.iter().any(|a| a == "--residency") {
        let t = zc_residency(file_bytes, chunk);
        t.emit(Some(std::path::Path::new("results/fig10_zc_residency.csv")));
        return;
    }
    for workers in [2usize, 4] {
        let t = fig10(file_bytes, chunk, workers);
        t.emit(Some(std::path::Path::new(&format!(
            "results/fig10_openssl_{workers}w.csv"
        ))));
    }
}
